//! Spinor-face and gauge-ghost exchange between domains
//! (Sections VI-B, VI-C; Fig. 3), for any partitioned dimension.
//!
//! Per dslash application each rank, for every open dimension of its
//! [`DecompPlan`],
//!
//! 1. gathers the projected 12 components of every site on its two boundary
//!    slices (a raw copy for T, since `P±4` is diagonal — footnote 3; a
//!    full sender-side projection for X/Y/Z, "it is true in general (for
//!    all directions) that only 12 numbers need be transferred"),
//! 2. sends the last-slice face *forward* on that dimension's ring (it
//!    becomes the receiver's backward ghost) and the first-slice face
//!    *backward*,
//! 3. stores received faces in the spinor field's ghost zone for that
//!    dimension (the temporal end zone, or the X/Y/Z side arrays).
//!
//! The send and receive halves are separate functions so the overlapped
//! strategy can compute the interior volume between them and progress each
//! direction independently (Section VI-D2).
//!
//! Wire format matches the storage precision: f64 or f32 payloads for the
//! float precisions; half precision sends the quantized `i16` components
//! followed by one `f32` normalization per face site — "for half precision
//! the extra normalization constant for each (12 component) spinor is also
//! required" (Section VI-C). The format is identical for every dimension;
//! only face areas and tags differ.

use bytes::Bytes;
use quda_comm::{tags, CommError, Communicator, DecodeError};
use quda_dirac::{gather_face_site, gather_face_site_dim};
use quda_fields::precision::Precision;
use quda_fields::{GaugeFieldCb, SpinorFieldCb};
use quda_lattice::geometry::{LatticeDims, Parity, DIR_T};
use quda_lattice::partition::DecompPlan;
use quda_lattice::stencil::Stencil;
use quda_math::half;
use quda_math::real::Real;
use quda_math::spinor::{HalfSpinor, HALF_SPINOR_REALS};
use quda_math::su3::Su3;
use quda_obs::Phase;

/// Encode a gathered face (one f64 per real, `faces × 12` entries) at the
/// wire precision of `P`.
pub fn encode_face<P: Precision>(values: &[f64]) -> Bytes {
    match (P::NEEDS_NORM, P::STORAGE_BYTES) {
        (false, 8) => quda_comm::pack_f64(values),
        (false, _) => {
            let v32: Vec<f32> = values.iter().map(|&x| x as f32).collect();
            quda_comm::pack_f32(&v32)
        }
        (true, 1) => {
            // Quarter precision: 8-bit components with a shared per-site
            // f32 norm — the wire matches the storage width, like half.
            let sites = values.len() / HALF_SPINOR_REALS;
            let mut ints = Vec::with_capacity(values.len());
            let mut norms = Vec::with_capacity(sites);
            half::quantize_sites8(values, HALF_SPINOR_REALS, &mut ints, &mut norms);
            let mut buf = Vec::with_capacity(values.len() + sites * 4);
            buf.extend(ints.iter().map(|&q| q as u8));
            buf.extend_from_slice(&quda_comm::pack_f32(&norms));
            Bytes::from(buf)
        }
        (true, _) => {
            // Half precision: per-site quantization with a shared norm.
            let sites = values.len() / HALF_SPINOR_REALS;
            let mut ints = Vec::with_capacity(values.len());
            let mut norms = Vec::with_capacity(sites);
            half::quantize_sites16(values, HALF_SPINOR_REALS, &mut ints, &mut norms);
            let mut buf = Vec::with_capacity(ints.len() * 2 + norms.len() * 4);
            buf.extend_from_slice(&quda_comm::pack_i16(&ints));
            buf.extend_from_slice(&quda_comm::pack_f32(&norms));
            Bytes::from(buf)
        }
    }
}

/// Decode a face payload back to f64 values, refilling `out` in place so
/// a steady-state receive loop reuses the scratch buffer's capacity.
///
/// The payload length is validated against what `sites` faces must occupy
/// at precision `P` *before* any slicing, so a short or oversized message —
/// whether from a faulty link or a confused peer — surfaces as a typed
/// [`DecodeError`] instead of a panic. On error `out` is left cleared.
pub fn decode_face_into<P: Precision>(
    bytes: &[u8],
    sites: usize,
    out: &mut Vec<f64>,
) -> Result<(), DecodeError> {
    out.clear();
    let expected = face_wire_bytes::<P>(sites);
    if bytes.len() != expected {
        return Err(DecodeError::Truncated { expected, got: bytes.len() });
    }
    match (P::NEEDS_NORM, P::STORAGE_BYTES) {
        (false, 8) => {
            out.extend(bytes.chunks_exact(8).map(|c| f64::from_le_bytes(quda_comm::le_bytes(c))));
        }
        (false, _) => {
            out.extend(
                bytes.chunks_exact(4).map(|c| f32::from_le_bytes(quda_comm::le_bytes(c)) as f64),
            );
        }
        (true, 1) => {
            let split = sites * HALF_SPINOR_REALS;
            let norms = quda_comm::unpack_f32(&bytes[split..])?;
            let ints: Vec<i8> = bytes[..split].iter().map(|&b| b as i8).collect();
            half::dequantize_sites8(&ints, &norms, HALF_SPINOR_REALS, out);
        }
        (true, _) => {
            let split = sites * HALF_SPINOR_REALS * 2;
            let ints = quda_comm::unpack_i16(&bytes[..split])?;
            let norms = quda_comm::unpack_f32(&bytes[split..])?;
            half::dequantize_sites16(&ints, &norms, HALF_SPINOR_REALS, out);
        }
    }
    Ok(())
}

/// Bytes on the wire for one face at precision `P` (used by traffic
/// accounting and tested against the actual payloads).
pub fn face_wire_bytes<P: Precision>(face_sites: usize) -> usize {
    face_wire_bytes_dyn(P::STORAGE_BYTES, P::NEEDS_NORM, face_sites, 1)
}

/// Runtime-parameterized face sizing — the single definition of the wire
/// format's byte count, shared by the generic exchange path above and the
/// performance model (which works from `PrecisionTag`s, not generics).
///
/// `n_rhs` is the number of right-hand sides riding in one fused message
/// (the batched exchange concatenates the RHS blocks face-by-face, so the
/// payload scales linearly); the classic single-RHS paths pass 1.
pub fn face_wire_bytes_dyn(
    storage_bytes: usize,
    needs_norm: bool,
    face_sites: usize,
    n_rhs: usize,
) -> usize {
    let data = face_sites * n_rhs * HALF_SPINOR_REALS * storage_bytes;
    let norms = if needs_norm { face_sites * n_rhs * 4 } else { 0 };
    data + norms
}

/// Gather both boundary faces of `field` and start the sends (Fig. 3's
/// device-to-host gather + non-blocking message passing).
pub fn send_faces<P: Precision>(
    comm: &mut Communicator,
    field: &SpinorFieldCb<P>,
    basis: &quda_math::gamma::SpinBasis,
    stencil: &Stencil,
    dagger: bool,
) -> Result<(), CommError> {
    let faces = field.face_sites();
    assert!(faces > 0, "field has no ghost end zone");
    let tracer = comm.tracer().clone();
    // Last time-slice → forward neighbor.
    let fwd_wire = {
        let mut gather = tracer.span(Phase::Gather);
        let mut fwd = Vec::with_capacity(faces * HALF_SPINOR_REALS);
        for f in 0..faces {
            let h = gather_face_site(field, basis, stencil, true, f, dagger);
            for r in h.to_reals() {
                fwd.push(r.to_f64());
            }
        }
        let wire = encode_face::<P>(&fwd);
        gather.set_bytes(wire.len() as u64);
        wire
    };
    comm.send(comm.forward(), tags::FACE_T_FWD, fwd_wire)?;
    // First time-slice → backward neighbor.
    let bwd_wire = {
        let mut gather = tracer.span(Phase::Gather);
        let mut bwd = Vec::with_capacity(faces * HALF_SPINOR_REALS);
        for f in 0..faces {
            let h = gather_face_site(field, basis, stencil, false, f, dagger);
            for r in h.to_reals() {
                bwd.push(r.to_f64());
            }
        }
        let wire = encode_face::<P>(&bwd);
        gather.set_bytes(wire.len() as u64);
        wire
    };
    comm.send(comm.backward(), tags::FACE_T_BWD, bwd_wire)
}

/// Receive both faces and store them in the ghost end zone.
pub fn recv_faces<P: Precision>(
    comm: &mut Communicator,
    field: &mut SpinorFieldCb<P>,
) -> Result<(), CommError> {
    let faces = field.face_sites();
    let tracer = comm.tracer().clone();
    // One scratch buffer serves both directions' decodes.
    let mut values = Vec::with_capacity(faces * HALF_SPINOR_REALS);
    // From the backward neighbor: its last slice = our backward ghost.
    let from = comm.backward();
    let payload = {
        let mut wire = tracer.span(Phase::Wire);
        let payload = comm.recv(from, tags::FACE_T_FWD)?;
        wire.set_bytes(payload.len() as u64);
        payload
    };
    {
        let _scatter = tracer.span(Phase::Scatter);
        decode_face_into::<P>(&payload, faces, &mut values).map_err(|error| CommError::Decode {
            from,
            tag: tags::FACE_T_FWD,
            error,
        })?;
        store_ghost(field, true, &values);
    }
    // From the forward neighbor: its first slice = our forward ghost.
    let from = comm.forward();
    let payload = {
        let mut wire = tracer.span(Phase::Wire);
        let payload = comm.recv(from, tags::FACE_T_BWD)?;
        wire.set_bytes(payload.len() as u64);
        payload
    };
    {
        let _scatter = tracer.span(Phase::Scatter);
        decode_face_into::<P>(&payload, faces, &mut values).map_err(|error| CommError::Decode {
            from,
            tag: tags::FACE_T_BWD,
            error,
        })?;
        store_ghost(field, false, &values);
    }
    Ok(())
}

fn store_ghost<P: Precision>(field: &mut SpinorFieldCb<P>, backward: bool, values: &[f64]) {
    let faces = field.face_sites();
    assert_eq!(values.len(), faces * HALF_SPINOR_REALS);
    for f in 0..faces {
        let mut reals = [P::Arith::ZERO; HALF_SPINOR_REALS];
        for (k, r) in reals.iter_mut().enumerate() {
            *r = P::Arith::from_f64(values[f * HALF_SPINOR_REALS + k]);
        }
        let h = HalfSpinor::from_reals(&reals);
        field.set_ghost(backward, f, &h);
    }
}

/// Blocking exchange: send + receive (the no-overlap strategy's
/// communication phase, Section VI-D1).
pub fn exchange_spinor_ghosts<P: Precision>(
    comm: &mut Communicator,
    field: &mut SpinorFieldCb<P>,
    basis: &quda_math::gamma::SpinBasis,
    stencil: &Stencil,
    dagger: bool,
) -> Result<(), CommError> {
    send_faces(comm, field, basis, stencil, dagger)?;
    recv_faces(comm, field)
}

/// Gather both boundary faces of dimension `dim` and start the sends on
/// that dimension's periodic rank ring. `parity` is the checkerboard
/// parity of `field` (the X/Y/Z face enumerations are parity-dependent).
///
/// For `dim = 3` on a `1×1×1×N` plan this produces messages byte-identical
/// to [`send_faces`]: same gather, same wire encoding, same tag values,
/// same destination ranks.
#[allow(clippy::too_many_arguments)]
pub fn send_faces_dim<P: Precision>(
    comm: &mut Communicator,
    field: &SpinorFieldCb<P>,
    basis: &quda_math::gamma::SpinBasis,
    stencil: &Stencil,
    plan: &DecompPlan,
    dim: usize,
    parity: Parity,
    dagger: bool,
) -> Result<(), CommError> {
    let faces = field.face_sites_dim(dim);
    assert!(field.has_ghost_dim(dim), "field has no ghost zone for dim {dim}");
    let rank = comm.rank();
    let tag_fwd = tags::face(dim, true);
    let tag_bwd = tags::face(dim, false);
    let tracer = comm.tracer().clone();
    // Last dim-slice → forward neighbor on this dimension's ring.
    let fwd_wire = {
        let mut gather = tracer.span(Phase::Gather);
        let mut fwd = Vec::with_capacity(faces * HALF_SPINOR_REALS);
        for f in 0..faces {
            let h = gather_face_site_dim(field, basis, stencil, dim, true, f, parity, dagger);
            for r in h.to_reals() {
                fwd.push(r.to_f64());
            }
        }
        let wire = encode_face::<P>(&fwd);
        gather.set_bytes(wire.len() as u64);
        wire
    };
    comm.send(plan.neighbor(rank, dim, true), tag_fwd, fwd_wire)?;
    // First dim-slice → backward neighbor.
    let bwd_wire = {
        let mut gather = tracer.span(Phase::Gather);
        let mut bwd = Vec::with_capacity(faces * HALF_SPINOR_REALS);
        for f in 0..faces {
            let h = gather_face_site_dim(field, basis, stencil, dim, false, f, parity, dagger);
            for r in h.to_reals() {
                bwd.push(r.to_f64());
            }
        }
        let wire = encode_face::<P>(&bwd);
        gather.set_bytes(wire.len() as u64);
        wire
    };
    comm.send(plan.neighbor(rank, dim, false), tag_bwd, bwd_wire)
}

/// Receive both faces of dimension `dim` and store them in that
/// dimension's ghost zone. The wire wait is attributed to the
/// per-dimension phase ([`Phase::wire_dim`]), so a multi-dimensional trace
/// shows each direction's exposed communication separately.
pub fn recv_faces_dim<P: Precision>(
    comm: &mut Communicator,
    field: &mut SpinorFieldCb<P>,
    plan: &DecompPlan,
    dim: usize,
) -> Result<(), CommError> {
    let faces = field.face_sites_dim(dim);
    let rank = comm.rank();
    let tag_fwd = tags::face(dim, true);
    let tag_bwd = tags::face(dim, false);
    let tracer = comm.tracer().clone();
    // One scratch buffer serves both directions' decodes.
    let mut values = Vec::with_capacity(faces * HALF_SPINOR_REALS);
    // From the backward neighbor: its last slice = our backward ghost.
    let from = plan.neighbor(rank, dim, false);
    let payload = {
        let mut wire = tracer.span(Phase::wire_dim(dim));
        let payload = comm.recv(from, tag_fwd)?;
        wire.set_bytes(payload.len() as u64);
        payload
    };
    {
        let _scatter = tracer.span(Phase::Scatter);
        decode_face_into::<P>(&payload, faces, &mut values).map_err(|error| CommError::Decode {
            from,
            tag: tag_fwd,
            error,
        })?;
        store_ghost_dim(field, dim, true, &values);
    }
    // From the forward neighbor: its first slice = our forward ghost.
    let from = plan.neighbor(rank, dim, true);
    let payload = {
        let mut wire = tracer.span(Phase::wire_dim(dim));
        let payload = comm.recv(from, tag_bwd)?;
        wire.set_bytes(payload.len() as u64);
        payload
    };
    {
        let _scatter = tracer.span(Phase::Scatter);
        decode_face_into::<P>(&payload, faces, &mut values).map_err(|error| CommError::Decode {
            from,
            tag: tag_bwd,
            error,
        })?;
        store_ghost_dim(field, dim, false, &values);
    }
    Ok(())
}

fn store_ghost_dim<P: Precision>(
    field: &mut SpinorFieldCb<P>,
    dim: usize,
    backward: bool,
    values: &[f64],
) {
    let faces = field.face_sites_dim(dim);
    assert_eq!(values.len(), faces * HALF_SPINOR_REALS);
    for f in 0..faces {
        let mut reals = [P::Arith::ZERO; HALF_SPINOR_REALS];
        for (k, r) in reals.iter_mut().enumerate() {
            *r = P::Arith::from_f64(values[f * HALF_SPINOR_REALS + k]);
        }
        let h = HalfSpinor::from_reals(&reals);
        field.set_ghost_dim(dim, backward, f, &h);
    }
}

/// Blocking exchange over every partitioned dimension of `plan`, in
/// ascending dimension order: all sends first, then all receives (the
/// no-overlap strategy's communication phase, generalized to a 4-d
/// process grid).
#[allow(clippy::too_many_arguments)]
pub fn exchange_spinor_ghosts_grid<P: Precision>(
    comm: &mut Communicator,
    field: &mut SpinorFieldCb<P>,
    basis: &quda_math::gamma::SpinBasis,
    stencil: &Stencil,
    plan: &DecompPlan,
    parity: Parity,
    dagger: bool,
) -> Result<(), CommError> {
    for dim in plan.active_dims() {
        send_faces_dim(comm, field, basis, stencil, plan, dim, parity, dagger)?;
    }
    for dim in plan.active_dims() {
        recv_faces_dim(comm, field, plan, dim)?;
    }
    Ok(())
}

/// Gather the `dim` boundary faces of every *active* RHS into one fused
/// message per direction and start the sends.
///
/// The RHS blocks are concatenated face-by-face before encoding. Because
/// every wire codec works in independent per-site blocks (plain reals for
/// the float precisions, per-site quantization groups for half/quarter),
/// encoding the concatenation is byte-identical to concatenating the
/// per-RHS encodings — each RHS's decoded ghost values are bit-identical
/// to what a single-RHS exchange would deliver, while the message *count*
/// stays that of one RHS (the batching win: per-message latency and tag
/// traffic amortize across the block).
#[allow(clippy::too_many_arguments)]
pub fn send_faces_dim_multi<P: Precision>(
    comm: &mut Communicator,
    fields: &[SpinorFieldCb<P>],
    active: &[bool],
    basis: &quda_math::gamma::SpinBasis,
    stencil: &Stencil,
    plan: &DecompPlan,
    dim: usize,
    parity: Parity,
    dagger: bool,
) -> Result<(), CommError> {
    assert_eq!(fields.len(), active.len());
    let n_active = active.iter().filter(|&&a| a).count();
    assert!(n_active > 0, "fused send needs at least one active RHS");
    let faces = fields[0].face_sites_dim(dim);
    let rank = comm.rank();
    let tracer = comm.tracer().clone();
    let gather_block = |to_forward: bool| -> Bytes {
        let mut gather = tracer.span(Phase::Gather);
        let mut vals = Vec::with_capacity(n_active * faces * HALF_SPINOR_REALS);
        for (field, _) in fields.iter().zip(active.iter()).filter(|(_, &a)| a) {
            assert!(field.has_ghost_dim(dim), "field has no ghost zone for dim {dim}");
            for f in 0..faces {
                let h =
                    gather_face_site_dim(field, basis, stencil, dim, to_forward, f, parity, dagger);
                for r in h.to_reals() {
                    vals.push(r.to_f64());
                }
            }
        }
        let wire = encode_face::<P>(&vals);
        gather.set_bytes(wire.len() as u64);
        wire
    };
    // Last dim-slices → forward neighbor on this dimension's ring.
    let fwd_wire = gather_block(true);
    comm.send(plan.neighbor(rank, dim, true), tags::face(dim, true), fwd_wire)?;
    // First dim-slices → backward neighbor.
    let bwd_wire = gather_block(false);
    comm.send(plan.neighbor(rank, dim, false), tags::face(dim, false), bwd_wire)
}

/// Receive both fused faces of dimension `dim` and scatter each RHS's
/// segment into that field's ghost zone (the receiving half of
/// [`send_faces_dim_multi`]).
pub fn recv_faces_dim_multi<P: Precision>(
    comm: &mut Communicator,
    fields: &mut [SpinorFieldCb<P>],
    active: &[bool],
    plan: &DecompPlan,
    dim: usize,
) -> Result<(), CommError> {
    assert_eq!(fields.len(), active.len());
    let n_active = active.iter().filter(|&&a| a).count();
    assert!(n_active > 0, "fused receive needs at least one active RHS");
    let faces = fields[0].face_sites_dim(dim);
    let rank = comm.rank();
    let tag_fwd = tags::face(dim, true);
    let tag_bwd = tags::face(dim, false);
    let tracer = comm.tracer().clone();
    // One fused scratch buffer serves both directions' decodes.
    let mut values = Vec::with_capacity(n_active * faces * HALF_SPINOR_REALS);
    let seg = faces * HALF_SPINOR_REALS;
    // From the backward neighbor: its last slices = our backward ghosts.
    let from = plan.neighbor(rank, dim, false);
    let payload = {
        let mut wire = tracer.span(Phase::wire_dim(dim));
        let payload = comm.recv(from, tag_fwd)?;
        wire.set_bytes(payload.len() as u64);
        payload
    };
    {
        let _scatter = tracer.span(Phase::Scatter);
        decode_face_into::<P>(&payload, n_active * faces, &mut values)
            .map_err(|error| CommError::Decode { from, tag: tag_fwd, error })?;
        for (k, (field, _)) in fields.iter_mut().zip(active.iter()).filter(|(_, &a)| a).enumerate()
        {
            store_ghost_dim(field, dim, true, &values[k * seg..(k + 1) * seg]);
        }
    }
    // From the forward neighbor: its first slices = our forward ghosts.
    let from = plan.neighbor(rank, dim, true);
    let payload = {
        let mut wire = tracer.span(Phase::wire_dim(dim));
        let payload = comm.recv(from, tag_bwd)?;
        wire.set_bytes(payload.len() as u64);
        payload
    };
    {
        let _scatter = tracer.span(Phase::Scatter);
        decode_face_into::<P>(&payload, n_active * faces, &mut values)
            .map_err(|error| CommError::Decode { from, tag: tag_bwd, error })?;
        for (k, (field, _)) in fields.iter_mut().zip(active.iter()).filter(|(_, &a)| a).enumerate()
        {
            store_ghost_dim(field, dim, false, &values[k * seg..(k + 1) * seg]);
        }
    }
    Ok(())
}

/// Blocking fused exchange over every partitioned dimension of `plan` for
/// a whole RHS block: all sends first, then all receives — the batched
/// analog of [`exchange_spinor_ghosts_grid`], with one message per
/// `(dimension, direction)` regardless of the batch size.
#[allow(clippy::too_many_arguments)]
pub fn exchange_spinor_ghosts_grid_multi<P: Precision>(
    comm: &mut Communicator,
    fields: &mut [SpinorFieldCb<P>],
    active: &[bool],
    basis: &quda_math::gamma::SpinBasis,
    stencil: &Stencil,
    plan: &DecompPlan,
    parity: Parity,
    dagger: bool,
) -> Result<(), CommError> {
    for dim in plan.active_dims() {
        send_faces_dim_multi(comm, fields, active, basis, stencil, plan, dim, parity, dagger)?;
    }
    for dim in plan.active_dims() {
        recv_faces_dim_multi(comm, fields, active, plan, dim)?;
    }
    Ok(())
}

/// One-time exchange of the gauge ghost slice at program initialization
/// (Section VI-B: "since the link matrices are constant throughout the
/// execution of the linear solver, we transfer the adjoining link matrices
/// in the program initialization").
///
/// Each rank sends, per parity, the temporal links of its *last* time-slice
/// forward; the receiver hides them in the pad region of its own gauge
/// arrays.
pub fn exchange_gauge_ghosts<P: Precision>(
    comm: &mut Communicator,
    gauge: &mut GaugeFieldCb<P>,
    dims: LatticeDims,
) -> Result<(), CommError> {
    let half_vs = dims.half_spatial_volume();
    let mut flat = Vec::with_capacity(half_vs * 18);
    for parity in [Parity::Even, Parity::Odd] {
        let tag = tags::gauge(parity.as_usize());
        flat.clear();
        for face in 0..half_vs {
            let cb = (dims.t - 1) * half_vs + face;
            let u: Su3<f64> = gauge.link(parity, DIR_T, cb).cast();
            for i in 0..3 {
                for j in 0..3 {
                    flat.push(u.m[i][j].re);
                    flat.push(u.m[i][j].im);
                }
            }
        }
        comm.send(comm.forward(), tag, quda_comm::pack_f64(&flat))?;
        let from = comm.backward();
        let recv = quda_comm::unpack_f64(&comm.recv(from, tag)?)
            .map_err(|error| CommError::Decode { from, tag, error })?;
        if recv.len() != half_vs * 18 {
            return Err(CommError::SizeMismatch { expected: half_vs * 18, got: recv.len() });
        }
        for face in 0..half_vs {
            let mut u = Su3::zero();
            let base = face * 18;
            let mut k = 0;
            for i in 0..3 {
                for j in 0..3 {
                    u.m[i][j] = quda_math::complex::C64::new(recv[base + k], recv[base + k + 1]);
                    k += 2;
                }
            }
            gauge.set_ghost_link(parity, DIR_T, face, &u);
        }
    }
    Ok(())
}

/// One-time exchange of the gauge ghost slices for every partitioned
/// dimension of `plan` (Section VI-B, generalized): per open dimension and
/// parity, each rank sends the `U_dim` links of its *last* dim-slice
/// forward on that dimension's ring; the receiver stores them in the
/// per-dimension ghost-link store consumed by the backward hop of the
/// dslash.
///
/// For a `1×1×1×N` plan the wire traffic is identical to
/// [`exchange_gauge_ghosts`]: same link enumeration, same 18-f64 packing,
/// same tag values, same destinations.
pub fn exchange_gauge_ghosts_grid<P: Precision>(
    comm: &mut Communicator,
    gauge: &mut GaugeFieldCb<P>,
    plan: &DecompPlan,
) -> Result<(), CommError> {
    let dims = plan.local_dims();
    let rank = comm.rank();
    let max_faces =
        plan.active_dims().map(|d| Stencil::face_sites_dim(&dims, d)).max().unwrap_or(0);
    let mut flat = Vec::with_capacity(max_faces * 18);
    for dim in plan.active_dims() {
        let faces = Stencil::face_sites_dim(&dims, dim);
        let to = plan.neighbor(rank, dim, true);
        let from = plan.neighbor(rank, dim, false);
        for parity in [Parity::Even, Parity::Odd] {
            let tag = tags::gauge_dim(dim, parity.as_usize());
            flat.clear();
            for face in 0..faces {
                let c = Stencil::face_coord(&dims, dim, parity, dims.extent(dim) - 1, face);
                let u: Su3<f64> = gauge.link(parity, dim, dims.cb_index(c)).cast();
                for i in 0..3 {
                    for j in 0..3 {
                        flat.push(u.m[i][j].re);
                        flat.push(u.m[i][j].im);
                    }
                }
            }
            comm.send(to, tag, quda_comm::pack_f64(&flat))?;
            let recv = quda_comm::unpack_f64(&comm.recv(from, tag)?)
                .map_err(|error| CommError::Decode { from, tag, error })?;
            if recv.len() != faces * 18 {
                return Err(CommError::SizeMismatch { expected: faces * 18, got: recv.len() });
            }
            for face in 0..faces {
                let mut u = Su3::zero();
                let base = face * 18;
                let mut k = 0;
                for i in 0..3 {
                    for j in 0..3 {
                        u.m[i][j] =
                            quda_math::complex::C64::new(recv[base + k], recv[base + k + 1]);
                        k += 2;
                    }
                }
                gauge.set_ghost_link_dim(parity, dim, face, &u);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::gauge_gen::random_spinor_field;
    use quda_fields::precision::{Double, Half, Single};
    use quda_math::gamma::{GammaBasis, SpinBasis};

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 2, 4)
    }

    #[test]
    fn wire_bytes_match_payloads() {
        let d = dims();
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let stencil = Stencil::new(d, true);
        let host = random_spinor_field(d, 3);
        macro_rules! check {
            ($p:ty) => {{
                let mut world = quda_comm::comm_world(1);
                let mut comm = world.pop().unwrap();
                let mut f = SpinorFieldCb::<$p>::new(d, true);
                f.upload(&host, Parity::Odd);
                send_faces(&mut comm, &f, &basis, &stencil, false).unwrap();
                let per_face = face_wire_bytes::<$p>(f.face_sites()) as u64;
                assert_eq!(comm.sent_bytes(), 2 * per_face);
                recv_faces(&mut comm, &mut f).unwrap(); // self-exchange drains the queue
            }};
        }
        check!(Double);
        check!(Single);
        check!(Half);
    }

    #[test]
    fn self_exchange_matches_periodic_wrap() {
        // On a 1-rank world the exchange must reproduce periodic boundary
        // data: backward ghost = own last slice, forward ghost = own first
        // slice (raw projected components).
        let d = dims();
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let stencil = Stencil::new(d, true);
        let host = random_spinor_field(d, 9);
        let mut world = quda_comm::comm_world(1);
        let mut comm = world.pop().unwrap();
        let mut f = SpinorFieldCb::<Double>::new(d, true);
        f.upload(&host, Parity::Odd);
        exchange_spinor_ghosts(&mut comm, &mut f, &basis, &stencil, false).unwrap();
        let faces = f.face_sites();
        for face in 0..faces {
            let expect_b = gather_face_site(&f, &basis, &stencil, true, face, false);
            assert_eq!(f.get_ghost(true, face), expect_b, "backward ghost face {face}");
            let expect_f = gather_face_site(&f, &basis, &stencil, false, face, false);
            assert_eq!(f.get_ghost(false, face), expect_f, "forward ghost face {face}");
        }
    }

    #[test]
    fn two_rank_exchange_crosses_domains() {
        let d = dims();
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let stencil = Stencil::new(d, true);
        let world = quda_comm::comm_world(2);
        let hosts = [random_spinor_field(d, 1), random_spinor_field(d, 2)];
        let handles: Vec<_> = world
            .into_iter()
            .zip(hosts.clone())
            .map(|(mut comm, host)| {
                let basis = basis.clone();
                let stencil = stencil.clone();
                std::thread::spawn(move || {
                    let mut f = SpinorFieldCb::<Double>::new(d, true);
                    f.upload(&host, Parity::Odd);
                    exchange_spinor_ghosts(&mut comm, &mut f, &basis, &stencil, false).unwrap();
                    (comm.rank(), f)
                })
            })
            .collect();
        let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_by_key(|(r, _)| *r);
        // Rank 0's forward ghost must equal rank 1's first-slice gather.
        let mut f1 = SpinorFieldCb::<Double>::new(d, true);
        f1.upload(&hosts[1], Parity::Odd);
        let faces = f1.face_sites();
        for face in 0..faces {
            let expect = gather_face_site(&f1, &basis, &stencil, false, face, false);
            assert_eq!(results[0].1.get_ghost(false, face), expect);
        }
        // Rank 1's backward ghost = rank 0's last-slice gather.
        let mut f0 = SpinorFieldCb::<Double>::new(d, true);
        f0.upload(&hosts[0], Parity::Odd);
        for face in 0..faces {
            let expect = gather_face_site(&f0, &basis, &stencil, true, face, false);
            assert_eq!(results[1].1.get_ghost(true, face), expect);
        }
    }

    #[test]
    fn half_precision_exchange_bounded_error() {
        let d = dims();
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let stencil = Stencil::new(d, true);
        let host = random_spinor_field(d, 4);
        let mut world = quda_comm::comm_world(1);
        let mut comm = world.pop().unwrap();
        let mut f = SpinorFieldCb::<Half>::new(d, true);
        f.upload(&host, Parity::Odd);
        exchange_spinor_ghosts(&mut comm, &mut f, &basis, &stencil, false).unwrap();
        for face in 0..f.face_sites() {
            let expect = gather_face_site(&f, &basis, &stencil, true, face, false);
            let got = f.get_ghost(true, face);
            for i in 0..2 {
                for c in 0..3 {
                    let err = (got.h[i].c[c].re - expect.h[i].c[c].re).abs();
                    assert!(err < 2e-4, "face {face} err {err}");
                }
            }
        }
    }

    #[test]
    fn fused_multi_rhs_exchange_bit_identical_to_sequential() {
        // The fused batched exchange must leave every active RHS's ghost
        // zone bit-identical to what a single-RHS exchange delivers, at
        // every wire precision, while sending one message per direction.
        fn check<P: Precision>() {
            let d = dims();
            let open = [false, false, false, true];
            let basis = SpinBasis::new(GammaBasis::NonRelativistic);
            let stencil = Stencil::new(d, true);
            let plan = DecompPlan::new(d, [1, 1, 1, 1]);
            let n = 4;
            let mut fused: Vec<SpinorFieldCb<P>> = (0..n)
                .map(|r| {
                    let mut f = SpinorFieldCb::<P>::new_open(d, open);
                    f.upload(&random_spinor_field(d, 60 + r as u64), Parity::Odd);
                    f
                })
                .collect();
            let mut active = vec![true; n];
            active[1] = false;
            let mut world = quda_comm::comm_world(1);
            let mut comm = world.pop().unwrap();
            let before = comm.sent_messages();
            send_faces_dim_multi(
                &mut comm,
                &fused,
                &active,
                &basis,
                &stencil,
                &plan,
                3,
                Parity::Odd,
                false,
            )
            .unwrap();
            recv_faces_dim_multi(&mut comm, &mut fused, &active, &plan, 3).unwrap();
            assert_eq!(comm.sent_messages() - before, 2, "one fused message per direction");
            for r in 0..n {
                if !active[r] {
                    continue;
                }
                let mut single = SpinorFieldCb::<P>::new_open(d, open);
                single.upload(&random_spinor_field(d, 60 + r as u64), Parity::Odd);
                send_faces_dim(&mut comm, &single, &basis, &stencil, &plan, 3, Parity::Odd, false)
                    .unwrap();
                recv_faces_dim(&mut comm, &mut single, &plan, 3).unwrap();
                for face in 0..single.face_sites_dim(3) {
                    for backward in [true, false] {
                        assert_eq!(
                            fused[r].get_ghost_dim(3, backward, face),
                            single.get_ghost_dim(3, backward, face),
                            "rhs={r} backward={backward} face={face}"
                        );
                    }
                }
            }
        }
        check::<Double>();
        check::<Single>();
        check::<Half>();
        check::<quda_fields::precision::Quarter>();
    }

    #[test]
    fn fused_wire_bytes_match_rhs_scaled_sizing() {
        // The fused payload must match `face_wire_bytes_dyn(.., n_rhs)` —
        // the single source of truth the ghost-sizing lint enforces.
        let d = dims();
        let open = [false, false, false, true];
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let stencil = Stencil::new(d, true);
        let plan = DecompPlan::new(d, [1, 1, 1, 1]);
        let n = 3;
        let mut fields: Vec<SpinorFieldCb<Half>> = (0..n)
            .map(|r| {
                let mut f = SpinorFieldCb::<Half>::new_open(d, open);
                f.upload(&random_spinor_field(d, 80 + r as u64), Parity::Odd);
                f
            })
            .collect();
        let active = vec![true; n];
        let mut world = quda_comm::comm_world(1);
        let mut comm = world.pop().unwrap();
        let before = comm.sent_bytes();
        send_faces_dim_multi(
            &mut comm,
            &fields,
            &active,
            &basis,
            &stencil,
            &plan,
            3,
            Parity::Odd,
            false,
        )
        .unwrap();
        let faces = fields[0].face_sites_dim(3);
        let expect = face_wire_bytes_dyn(Half::STORAGE_BYTES, Half::NEEDS_NORM, faces, n) as u64;
        assert_eq!(comm.sent_bytes() - before, 2 * expect);
        recv_faces_dim_multi(&mut comm, &mut fields, &active, &plan, 3).unwrap();
    }

    #[test]
    fn gauge_ghost_self_exchange_is_periodic() {
        let d = dims();
        let cfg = quda_fields::gauge_gen::weak_field(d, 0.2, 5);
        let mut gauge = GaugeFieldCb::<Single>::new(d, true);
        gauge.upload(&cfg);
        let mut world = quda_comm::comm_world(1);
        let mut comm = world.pop().unwrap();
        exchange_gauge_ghosts(&mut comm, &mut gauge, d).unwrap();
        let half_vs = d.half_spatial_volume();
        for p in [Parity::Even, Parity::Odd] {
            for face in 0..half_vs {
                let cb_last = (d.t - 1) * half_vs + face;
                let expect: Su3<f64> = gauge.link(p, DIR_T, cb_last).cast();
                let got: Su3<f64> = gauge.ghost_link(p, DIR_T, face).cast();
                assert!((got - expect).norm_sqr() < 1e-10);
            }
        }
    }

    #[test]
    fn grid_t_exchange_is_byte_identical_to_legacy() {
        // On a 1×1×1×1 plan the T-dimension grid path must reproduce the
        // legacy 1-d exchange exactly: same ghost contents, same bytes on
        // the wire, same message count.
        let d = dims();
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let stencil = Stencil::new(d, true);
        let plan = DecompPlan::new(d, [1, 1, 1, 1]);
        let host = random_spinor_field(d, 12);
        let mut world = quda_comm::comm_world(1);
        let mut comm = world.pop().unwrap();
        let mut f_legacy = SpinorFieldCb::<Double>::new(d, true);
        f_legacy.upload(&host, Parity::Odd);
        let mut f_grid = SpinorFieldCb::<Double>::new_open(d, [false, false, false, true]);
        f_grid.upload(&host, Parity::Odd);
        exchange_spinor_ghosts(&mut comm, &mut f_legacy, &basis, &stencil, false).unwrap();
        let legacy_bytes = comm.sent_bytes();
        let legacy_msgs = comm.sent_messages();
        send_faces_dim(&mut comm, &f_grid, &basis, &stencil, &plan, 3, Parity::Odd, false).unwrap();
        recv_faces_dim(&mut comm, &mut f_grid, &plan, 3).unwrap();
        assert_eq!(comm.sent_bytes(), 2 * legacy_bytes);
        assert_eq!(comm.sent_messages(), 2 * legacy_msgs);
        for face in 0..f_legacy.face_sites() {
            for backward in [true, false] {
                assert_eq!(
                    f_legacy.get_ghost(backward, face),
                    f_grid.get_ghost_dim(3, backward, face),
                    "backward={backward} face={face}"
                );
            }
        }
    }

    #[test]
    fn grid_x_self_exchange_matches_projected_wrap() {
        // Single-rank X exchange loops the messages back: the backward
        // ghost must equal the projection of the own last X-slice, the
        // forward ghost that of the first X-slice.
        let d = dims();
        let open = [true, false, false, false];
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let stencil = Stencil::with_open(d, open);
        let plan = DecompPlan::new(d, [1, 1, 1, 1]);
        let host = random_spinor_field(d, 21);
        let mut world = quda_comm::comm_world(1);
        let mut comm = world.pop().unwrap();
        let mut f = SpinorFieldCb::<Double>::new_open(d, open);
        f.upload(&host, Parity::Odd);
        for dagger in [false, true] {
            send_faces_dim(&mut comm, &f, &basis, &stencil, &plan, 0, Parity::Odd, dagger).unwrap();
            recv_faces_dim(&mut comm, &mut f, &plan, 0).unwrap();
            for face in 0..f.face_sites_dim(0) {
                let eb =
                    gather_face_site_dim(&f, &basis, &stencil, 0, true, face, Parity::Odd, dagger);
                assert_eq!(f.get_ghost_dim(0, true, face), eb, "bwd ghost face {face}");
                let ef =
                    gather_face_site_dim(&f, &basis, &stencil, 0, false, face, Parity::Odd, dagger);
                assert_eq!(f.get_ghost_dim(0, false, face), ef, "fwd ghost face {face}");
            }
        }
    }

    #[test]
    fn grid_two_rank_x_exchange_crosses_domains() {
        let gd = LatticeDims::new(8, 4, 2, 4);
        let plan = DecompPlan::new(gd, [2, 1, 1, 1]);
        let d = plan.local_dims();
        let basis = SpinBasis::new(GammaBasis::NonRelativistic);
        let stencil = Stencil::with_open(d, plan.open_dims());
        let hosts = [random_spinor_field(d, 31), random_spinor_field(d, 32)];
        let world = quda_comm::comm_world(2);
        let handles: Vec<_> = world
            .into_iter()
            .zip(hosts.clone())
            .map(|(mut comm, host)| {
                let basis = basis.clone();
                let stencil = stencil.clone();
                std::thread::spawn(move || {
                    let mut f = SpinorFieldCb::<Double>::new_open(d, plan.open_dims());
                    f.upload(&host, Parity::Odd);
                    exchange_spinor_ghosts_grid(
                        &mut comm,
                        &mut f,
                        &basis,
                        &stencil,
                        &plan,
                        Parity::Odd,
                        false,
                    )
                    .unwrap();
                    (comm.rank(), f)
                })
            })
            .collect();
        let mut results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_by_key(|(r, _)| *r);
        // Rank 0's forward X ghost must equal rank 1's first-slice
        // projection (already projected on the sender for X).
        let mut f1 = SpinorFieldCb::<Double>::new_open(d, plan.open_dims());
        f1.upload(&hosts[1], Parity::Odd);
        for face in 0..f1.face_sites_dim(0) {
            let expect =
                gather_face_site_dim(&f1, &basis, &stencil, 0, false, face, Parity::Odd, false);
            assert_eq!(results[0].1.get_ghost_dim(0, false, face), expect);
        }
        // Rank 1's backward X ghost = rank 0's last-slice projection.
        let mut f0 = SpinorFieldCb::<Double>::new_open(d, plan.open_dims());
        f0.upload(&hosts[0], Parity::Odd);
        for face in 0..f0.face_sites_dim(0) {
            let expect =
                gather_face_site_dim(&f0, &basis, &stencil, 0, true, face, Parity::Odd, false);
            assert_eq!(results[1].1.get_ghost_dim(0, true, face), expect);
        }
    }

    #[test]
    fn grid_gauge_exchange_two_rank_z() {
        // Two Z-ranks holding *identical* local configs: the received ghost
        // links must equal each rank's own last Z-slice links (periodic
        // wrap of a translation-invariant world).
        let gd = LatticeDims::new(4, 4, 4, 4);
        let plan = DecompPlan::new(gd, [1, 1, 2, 1]);
        let d = plan.local_dims();
        let cfg = quda_fields::gauge_gen::weak_field(d, 0.2, 8);
        let world = quda_comm::comm_world(2);
        let handles: Vec<_> = world
            .into_iter()
            .map(|mut comm| {
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let mut gauge = GaugeFieldCb::<Double>::new(d, true);
                    gauge.upload(&cfg);
                    exchange_gauge_ghosts_grid(&mut comm, &mut gauge, &plan).unwrap();
                    gauge
                })
            })
            .collect();
        let faces = Stencil::face_sites_dim(&d, 2);
        for h in handles {
            let gauge = h.join().unwrap();
            for p in [Parity::Even, Parity::Odd] {
                for face in 0..faces {
                    let c = Stencil::face_coord(&d, 2, p, d.z - 1, face);
                    let expect: Su3<f64> = gauge.link(p, 2, d.cb_index(c)).cast();
                    let got: Su3<f64> = gauge.ghost_link_dim(p, 2, face).cast();
                    assert!((got - expect).norm_sqr() < 1e-20, "parity {p:?} face {face}");
                }
            }
        }
    }
}
