//! # quda-multigpu
//!
//! The paper's primary contribution: parallelization of the QUDA solvers
//! over multiple GPUs by slicing the time dimension (Section VI).
//!
//! * [`slice`](mod@slice) — scatter/gather of global fields to time-slice domains,
//!   including the globally-correct clover term;
//! * [`ghost`] — spinor-face and gauge-ghost exchange (Figs. 2, 3);
//! * [`rank_op`] — the per-rank operator with the no-overlap and overlapped
//!   communication strategies (Section VI-D) and globalized reductions
//!   (Section VI-E);
//! * [`driver`] — thread-per-GPU solve driver covering every precision mode
//!   of Section VII-A;
//! * [`perf`] — the calibrated performance model that regenerates the
//!   paper's weak/strong scaling figures on the simulated "9g" cluster;
//! * [`multidim`] — the future-work extension: a 2-d (Z,T) process-grid
//!   model quantifying when multi-dimensional decomposition wins.

#![warn(missing_docs)]
// The no-panic invariant (xtask lint rule `no-panic`), also machine-checked
// at compile time: a panicking rank hangs its peers mid-allreduce.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod driver;
pub mod ghost;
pub mod multidim;
pub mod perf;
pub mod rank_op;
pub mod slice;

pub use driver::{
    solve_full_parallel, solve_full_parallel_chaos, solve_full_parallel_traced,
    verify_full_solution, ChaosSpec, CommHealth, ParallelSolveSpec, PrecisionMode, SolverKind,
    TracedSolve,
};
pub use ghost::{exchange_gauge_ghosts, exchange_spinor_ghosts, face_wire_bytes};
pub use multidim::{best_grid, sustained_gflops_2d, ProcessGrid};
pub use perf::{evaluate, min_gpus, solver_memory_per_gpu, PerfInput, PerfReport};
pub use rank_op::{CommStrategy, ParallelWilsonCloverOp};
pub use slice::{gather_spinor, local_clover, slice_config, slice_spinor};
