//! # quda-multigpu
//!
//! The paper's primary contribution: parallelization of the QUDA solvers
//! over multiple GPUs by slicing the time dimension (Section VI).
//!
//! * [`slice`](mod@slice) — scatter/gather of global fields to process-grid
//!   domains, including the globally-correct clover term;
//! * [`ghost`] — dimension-generic spinor-face and gauge-ghost exchange
//!   (Figs. 2, 3) over any [`DecompPlan`](quda_lattice::partition::DecompPlan)
//!   process grid, with the legacy time-slice entry points as the
//!   `1×1×1×N` special case;
//! * [`rank_op`] — the per-rank operator with the no-overlap and overlapped
//!   communication strategies (Section VI-D), per-direction interior/face
//!   scheduling, and globalized reductions (Section VI-E);
//! * [`driver`] — thread-per-GPU solve driver covering every precision mode
//!   of Section VII-A, over either a [`ParallelSolveSpec`] (1-d temporal)
//!   or a [`GridSolveSpec`] (4-d process grid);
//! * [`perf`] — the calibrated performance model that regenerates the
//!   paper's weak/strong scaling figures on the simulated "9g" cluster;
//! * [`multidim`] — the future-work extension: a 4-d (X,Y,Z,T) process-grid
//!   model quantifying when multi-dimensional decomposition wins,
//!   cross-checked against the real exchange driver.

#![warn(missing_docs)]
// The no-panic invariant (xtask lint rule `no-panic`), also machine-checked
// at compile time: a panicking rank hangs its peers mid-allreduce.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod driver;
pub mod ghost;
pub mod multidim;
pub mod perf;
pub mod rank_op;
pub mod reshard;
pub mod slice;

pub use driver::{
    solve_full_grid, solve_full_grid_chaos, solve_full_grid_elastic, solve_full_grid_multi,
    solve_full_grid_traced, solve_full_parallel, solve_full_parallel_chaos,
    solve_full_parallel_elastic, solve_full_parallel_multi, solve_full_parallel_traced,
    verify_full_solution, ChaosSpec, CommHealth, ElasticPolicy, ElasticSolve, GridSolveSpec,
    MultiSolve, ParallelSolveSpec, PrecisionMode, RecoveryEvent, RecoveryReport, SolverKind,
    TracedSolve,
};
pub use ghost::{
    decode_face_into, encode_face, exchange_gauge_ghosts, exchange_gauge_ghosts_grid,
    exchange_spinor_ghosts, exchange_spinor_ghosts_grid, exchange_spinor_ghosts_grid_multi,
    face_wire_bytes, face_wire_bytes_dyn,
};
pub use multidim::{best_grid, sustained_gflops_grid, ProcessGrid};
pub use perf::{evaluate, min_gpus, solver_memory_per_gpu, PerfInput, PerfReport};
pub use rank_op::{CommStrategy, ParallelWilsonCloverOp};
pub use reshard::{CheckpointStore, GlobalCheckpoint, ReshardError, StoreStats};
pub use slice::{
    gather_spinor, gather_spinor_grid, local_clover, local_clover_grid, slice_config,
    slice_config_grid, slice_spinor, slice_spinor_grid,
};
