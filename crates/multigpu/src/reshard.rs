//! Checkpoint collection and re-sharding for elastic recovery (DESIGN.md
//! §12).
//!
//! Every rank of an elastic solve deposits its serialized
//! [`SolverCheckpoint`] into a world-shared [`CheckpointStore`] — the
//! stand-in for node-local NVRAM or a burst buffer on a real cluster. When
//! a rank dies, the supervisor asks the store for the newest *globally
//! consistent* snapshot ([`CheckpointStore::take_global`]): checkpoints are
//! taken at collectively decided boundaries, so rank epochs can skew by at
//! most one, and keeping the last two per rank guarantees the epoch
//! `min(max epoch per rank)` exists everywhere. The per-rank pieces are
//! validated (checksum first — a corrupt buffer is a typed error, never a
//! panic), gathered to a global field pair, and handed back as a
//! [`GlobalCheckpoint`] that can be re-sharded onto *any*
//! [`DecompPlan`]-compatible replacement world via
//! [`GlobalCheckpoint::reshard`].

use crate::slice::{gather_spinor_grid, slice_spinor_grid};
use quda_fields::host::HostSpinorField;
use quda_fields::precision::Precision;
use quda_fields::SpinorFieldCb;
use quda_lattice::geometry::Parity;
use quda_lattice::partition::DecompPlan;
use quda_solvers::checkpoint::{CheckpointCounters, CheckpointError, SolverCheckpoint};
use std::fmt;
use std::sync::Mutex;

/// Why a globally consistent checkpoint could not be assembled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReshardError {
    /// A rank never deposited any checkpoint.
    MissingRank(usize),
    /// The consistent epoch has been evicted from a rank's ring — only
    /// possible if the skew-≤-1 invariant was violated.
    EpochUnavailable {
        /// Rank whose ring no longer holds the epoch.
        rank: usize,
        /// The globally consistent epoch that was requested.
        epoch: u64,
    },
    /// A deposited buffer failed validation (checksum, format, geometry).
    Corrupt {
        /// Rank whose buffer was rejected.
        rank: usize,
        /// The typed validation failure.
        error: CheckpointError,
    },
    /// A rank's counters disagree with rank 0's at the same epoch —
    /// checkpoints were not taken at a collective boundary.
    Inconsistent {
        /// First disagreeing rank.
        rank: usize,
    },
}

impl fmt::Display for ReshardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReshardError::MissingRank(r) => write!(f, "rank {r} never deposited a checkpoint"),
            ReshardError::EpochUnavailable { rank, epoch } => {
                write!(f, "rank {rank} no longer holds checkpoint epoch {epoch}")
            }
            ReshardError::Corrupt { rank, error } => {
                write!(f, "rank {rank} checkpoint rejected: {error}")
            }
            ReshardError::Inconsistent { rank } => {
                write!(f, "rank {rank} counters disagree at the consistent epoch")
            }
        }
    }
}

impl std::error::Error for ReshardError {}

/// One deposited checkpoint: its epoch plus the serialized wire bytes.
#[derive(Clone, Debug)]
struct Deposit {
    epoch: u64,
    bytes: Vec<u8>,
}

/// Per-rank ring of the last [`CheckpointStore::RING`] deposits.
#[derive(Clone, Debug, Default)]
struct RankRing {
    slots: Vec<Deposit>,
}

impl RankRing {
    fn push(&mut self, d: Deposit, ring: usize) {
        self.slots.push(d);
        if self.slots.len() > ring {
            self.slots.remove(0);
        }
    }

    fn latest_epoch(&self) -> Option<u64> {
        self.slots.iter().map(|d| d.epoch).max()
    }

    fn at_epoch(&self, epoch: u64) -> Option<&Deposit> {
        self.slots.iter().find(|d| d.epoch == epoch)
    }
}

/// Aggregate checkpoint-activity counters of a [`CheckpointStore`]
/// (telemetry for [`InvertReport`](quda_obs) surfacing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Checkpoints deposited across all ranks and incarnations.
    pub checkpoints_taken: u64,
    /// Serialized bytes written across all deposits.
    pub bytes_written: u64,
}

/// World-shared, thread-safe checkpoint storage: one ring of recent
/// serialized snapshots per rank.
#[derive(Debug)]
pub struct CheckpointStore {
    inner: Mutex<StoreInner>,
    n_ranks: usize,
}

#[derive(Debug)]
struct StoreInner {
    rings: Vec<RankRing>,
    stats: StoreStats,
}

impl CheckpointStore {
    /// Snapshots retained per rank. Two suffices: collective checkpoint
    /// boundaries bound the epoch skew between any two live ranks to one.
    pub const RING: usize = 2;

    /// An empty store for an `n_ranks`-rank world.
    pub fn new(n_ranks: usize) -> CheckpointStore {
        CheckpointStore {
            inner: Mutex::new(StoreInner {
                rings: vec![RankRing::default(); n_ranks],
                stats: StoreStats::default(),
            }),
            n_ranks,
        }
    }

    /// Number of ranks the store was sized for.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Deposit one rank's serialized checkpoint at `epoch`, evicting the
    /// oldest retained snapshot beyond [`CheckpointStore::RING`].
    pub fn deposit(&self, rank: usize, epoch: u64, bytes: Vec<u8>) {
        // A poisoned store mutex means a peer rank panicked mid-deposit;
        // the snapshot rings are append-only so the data is still sound.
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        inner.stats.checkpoints_taken += 1;
        inner.stats.bytes_written += bytes.len() as u64;
        if let Some(ring) = inner.rings.get_mut(rank) {
            ring.push(Deposit { epoch, bytes }, Self::RING);
        }
    }

    /// Aggregate deposit counters.
    pub fn stats(&self) -> StoreStats {
        match self.inner.lock() {
            Ok(g) => g.stats,
            Err(p) => p.into_inner().stats,
        }
    }

    /// Assemble the newest globally consistent snapshot: the largest epoch
    /// every rank has deposited, validated rank by rank and gathered to
    /// global fields over `plan`.
    /// On success the rings are pruned to the consistent epoch, so deposits
    /// from the dead incarnation can never alias a replacement world's
    /// (re-numbered) epochs at a later recovery.
    pub fn take_global<H: Precision>(
        &self,
        plan: &DecompPlan,
    ) -> Result<GlobalCheckpoint, ReshardError> {
        let mut inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        // Consistent epoch: min over ranks of each rank's newest epoch.
        let mut epoch = u64::MAX;
        for (rank, ring) in inner.rings.iter().enumerate() {
            let latest = ring.latest_epoch().ok_or(ReshardError::MissingRank(rank))?;
            epoch = epoch.min(latest);
        }
        let mut counters: Option<CheckpointCounters> = None;
        let mut open = [false; 4];
        let mut locals_x = Vec::with_capacity(self.n_ranks);
        let mut locals_r = Vec::with_capacity(self.n_ranks);
        let mut all_have_r = true;
        for (rank, ring) in inner.rings.iter().enumerate() {
            let dep = ring.at_epoch(epoch).ok_or(ReshardError::EpochUnavailable { rank, epoch })?;
            let ck = SolverCheckpoint::from_bytes(&dep.bytes)
                .map_err(|error| ReshardError::Corrupt { rank, error })?;
            match counters {
                None => {
                    counters = Some(ck.counters);
                    open = ck.open();
                }
                // Checkpoints are cut at collectively decided boundaries,
                // so every rank's scalar state must agree bit-for-bit.
                Some(c) if c != ck.counters => {
                    return Err(ReshardError::Inconsistent { rank });
                }
                Some(_) => {}
            }
            let mut x = SpinorFieldCb::<H>::new_open(ck.dims(), ck.open());
            ck.restore_x(&mut x).map_err(|error| ReshardError::Corrupt { rank, error })?;
            let mut x_host = HostSpinorField::zero(ck.dims());
            x.download(&mut x_host, Parity::Odd);
            locals_x.push(x_host);
            if ck.has_residual() {
                let mut r = SpinorFieldCb::<H>::new_open(ck.dims(), ck.open());
                ck.restore_r(&mut r).map_err(|error| ReshardError::Corrupt { rank, error })?;
                let mut r_host = HostSpinorField::zero(ck.dims());
                r.download(&mut r_host, Parity::Odd);
                locals_r.push(r_host);
            } else {
                all_have_r = false;
            }
        }
        for ring in &mut inner.rings {
            ring.slots.retain(|d| d.epoch == epoch);
        }
        Ok(GlobalCheckpoint {
            epoch,
            counters: counters.unwrap_or_default(),
            open,
            x: gather_spinor_grid(&locals_x, plan),
            r: if all_have_r && locals_r.len() == self.n_ranks {
                Some(gather_spinor_grid(&locals_r, plan))
            } else {
                None
            },
        })
    }
}

/// A decomposition-independent solver snapshot: global (odd-parity) fields
/// plus the rank-identical counters, ready to be sliced onto any compatible
/// replacement world.
#[derive(Clone, Debug)]
pub struct GlobalCheckpoint {
    /// The globally consistent checkpoint epoch this was assembled from.
    pub epoch: u64,
    /// Rank-identical scalar solver state at that epoch.
    pub counters: CheckpointCounters,
    /// Ghost-zone configuration the original ranks ran with (uniform across
    /// ranks of a plan, and re-used so a re-sharded piece matches the
    /// replacement operator's allocation exactly).
    pub open: [bool; 4],
    /// Global iterate (odd-parity sites populated).
    pub x: HostSpinorField,
    /// Global true residual, when the checkpointing solver carries one.
    pub r: Option<HostSpinorField>,
}

impl GlobalCheckpoint {
    /// Slice this rank's share out of the global snapshot and repackage it
    /// as a [`SolverCheckpoint`] for the replacement world's solver.
    pub fn reshard<H: Precision>(&self, plan: &DecompPlan, rank: usize) -> SolverCheckpoint {
        let local_x = slice_spinor_grid(&self.x, plan, rank);
        let mut x = SpinorFieldCb::<H>::new_open(plan.local_dims(), self.open);
        x.upload(&local_x, Parity::Odd);
        let r = self.r.as_ref().map(|r_global| {
            let local_r = slice_spinor_grid(r_global, plan, rank);
            let mut r = SpinorFieldCb::<H>::new_open(plan.local_dims(), self.open);
            r.upload(&local_r, Parity::Odd);
            r
        });
        SolverCheckpoint::capture(self.counters, &x, r.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::gauge_gen::random_spinor_field;
    use quda_fields::precision::Double;
    use quda_lattice::geometry::LatticeDims;

    fn plan2() -> DecompPlan {
        DecompPlan::new(LatticeDims::new(4, 4, 2, 8), [1, 1, 1, 2])
    }

    fn local_ck(plan: &DecompPlan, global: &HostSpinorField, rank: usize, epoch: u64) -> Vec<u8> {
        let local = slice_spinor_grid(global, plan, rank);
        let mut x = SpinorFieldCb::<Double>::new_open(plan.local_dims(), plan.open_dims());
        x.upload(&local, Parity::Odd);
        let counters = CheckpointCounters { epoch, iterations: epoch * 10, ..Default::default() };
        SolverCheckpoint::capture(counters, &x, Some(&x)).to_bytes()
    }

    #[test]
    fn take_global_round_trips_through_reshard() {
        let plan = plan2();
        let global = random_spinor_field(plan.global(), 7);
        let store = CheckpointStore::new(2);
        for rank in 0..2 {
            store.deposit(rank, 1, local_ck(&plan, &global, rank, 1));
        }
        let ck = store.take_global::<Double>(&plan).expect("consistent checkpoint");
        assert_eq!(ck.epoch, 1);
        assert!(ck.r.is_some());
        // Odd sites of the gathered iterate match the original global field.
        let d = plan.global();
        for cb in 0..d.half_volume() {
            assert_eq!(
                ck.x.get_cb(Parity::Odd, cb).s[0].c[0].re,
                global.get_cb(Parity::Odd, cb).s[0].c[0].re
            );
        }
        // Re-shard onto a different compatible decomposition.
        let fine = DecompPlan::new(plan.global(), [1, 1, 1, 2]);
        let piece = ck.reshard::<Double>(&fine, 1);
        assert_eq!(piece.counters.epoch, 1);
        assert!(piece.has_residual());
        let mut back = SpinorFieldCb::<Double>::new_open(fine.local_dims(), ck.open);
        piece.restore_x(&mut back).expect("restore re-sharded piece");
    }

    #[test]
    fn consistent_epoch_is_min_of_latest_with_skew() {
        let plan = plan2();
        let global = random_spinor_field(plan.global(), 9);
        let store = CheckpointStore::new(2);
        // Rank 0 is one epoch ahead (the maximum legal skew).
        store.deposit(0, 1, local_ck(&plan, &global, 0, 1));
        store.deposit(0, 2, local_ck(&plan, &global, 0, 2));
        store.deposit(1, 1, local_ck(&plan, &global, 1, 1));
        let ck = store.take_global::<Double>(&plan).expect("epoch 1 everywhere");
        assert_eq!(ck.epoch, 1);
        assert_eq!(ck.counters.iterations, 10);
    }

    #[test]
    fn ring_evicts_beyond_two_and_missing_rank_is_typed() {
        let plan = plan2();
        let global = random_spinor_field(plan.global(), 11);
        let store = CheckpointStore::new(2);
        for epoch in 1..=4 {
            store.deposit(0, epoch, local_ck(&plan, &global, 0, epoch));
        }
        // Rank 1 never deposited.
        assert!(matches!(store.take_global::<Double>(&plan), Err(ReshardError::MissingRank(1))));
        // Rank 1 far behind: epoch 1 evicted from rank 0's ring.
        store.deposit(1, 1, local_ck(&plan, &global, 1, 1));
        assert!(matches!(
            store.take_global::<Double>(&plan),
            Err(ReshardError::EpochUnavailable { rank: 0, epoch: 1 })
        ));
        assert_eq!(store.stats().checkpoints_taken, 5);
        assert!(store.stats().bytes_written > 0);
    }

    #[test]
    fn corrupt_deposit_is_typed_not_a_panic() {
        let plan = plan2();
        let global = random_spinor_field(plan.global(), 13);
        let store = CheckpointStore::new(2);
        let mut bad = local_ck(&plan, &global, 0, 1);
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        store.deposit(0, 1, bad);
        store.deposit(1, 1, local_ck(&plan, &global, 1, 1));
        match store.take_global::<Double>(&plan) {
            Err(ReshardError::Corrupt { rank: 0, error: CheckpointError::BadChecksum { .. } }) => {}
            other => panic!("expected a typed checksum rejection, got {other:?}"),
        }
    }
}
