//! The per-rank parallel Wilson-clover operator (Section VI).
//!
//! Each rank owns one domain of a [`DecompPlan`] process grid (the paper's
//! `T/N` time-slice being the `1×1×1×N` special case), a [`WilsonCloverOp`]
//! built on the local volume with an *open* boundary in every partitioned
//! dimension, and a [`Communicator`]. Every hopping-term application
//! exchanges the spinor faces of each open dimension first — either
//! blocking ([`CommStrategy::NoOverlap`]) or split around the interior
//! kernel ([`CommStrategy::Overlap`], the three-stream scheme of Section
//! VI-D2, with each direction's receive and exterior update progressing
//! independently). Reductions are globalized through the communicator
//! (Section VI-E).

use crate::ghost::{
    exchange_gauge_ghosts_grid, exchange_spinor_ghosts_grid, exchange_spinor_ghosts_grid_multi,
    recv_faces_dim, recv_faces_dim_multi, send_faces_dim, send_faces_dim_multi,
};
use crate::slice::{local_clover_grid, slice_config_grid};
use quda_comm::{CommError, CommStats, Communicator};
use quda_dirac::clover_apply::{
    clover_apply_cb, clover_apply_cb_multi, clover_axpy_cb, clover_axpy_cb_multi,
};
use quda_dirac::dslash::{dslash_cb, dslash_cb_multi, DslashRegion, MAX_RHS_BATCH};
use quda_dirac::{WilsonCloverOp, WilsonParams, INNER_PARITY, SOLVE_PARITY};
use quda_fields::host::GaugeConfig;
use quda_fields::precision::Precision;
use quda_fields::SpinorFieldCb;
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::partition::{DecompPlan, TimePartition};
use quda_math::complex::C64;
use quda_math::real::Real;
use quda_obs::{Phase, Tracer};
use quda_solvers::operator::{LinearOperator, OpFault};

/// Communication strategy for the face exchange (Section VI-D).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CommStrategy {
    /// Communicate up front, then run one kernel over the whole volume.
    NoOverlap,
    /// Start sends, compute the interior, receive, finish the faces.
    Overlap,
}

/// A rank's share of the parallelized even-odd Wilson-clover operator.
pub struct ParallelWilsonCloverOp<P: Precision> {
    /// The local single-device operator (open temporal boundary).
    pub op: WilsonCloverOp<P>,
    /// This rank's communicator endpoint.
    pub comm: Communicator,
    /// Face-exchange strategy.
    pub strategy: CommStrategy,
    /// Whether the lattice is actually split (more than one rank).
    pub partitioned: bool,
    /// The process-grid plan this rank belongs to.
    pub plan: DecompPlan,
    tmp1: SpinorFieldCb<P>,
    tmp2: SpinorFieldCb<P>,
    // Per-RHS scratch for the batched application, grown on demand to the
    // largest batch seen so steady-state sweeps never allocate.
    tmp1s: Vec<SpinorFieldCb<P>>,
    tmp2s: Vec<SpinorFieldCb<P>>,
    /// Face exchanges performed (2 per operator application).
    pub exchange_count: u64,
    // First communication error seen; once set the operator is *poisoned*:
    // applies no-op, reductions return NaN, and the solver's fault poll
    // surfaces the error (DESIGN.md §7).
    fault: Option<CommError>,
}

/// Apply the hopping term with the face exchange appropriate to the
/// strategy, iterating the plan's partitioned dimensions. Free function so
/// callers can split borrows across the operator's fields.
#[allow(clippy::too_many_arguments)]
fn dslash_exchanged<P: Precision>(
    comm: &mut Communicator,
    op: &WilsonCloverOp<P>,
    plan: &DecompPlan,
    strategy: CommStrategy,
    partitioned: bool,
    out: &mut SpinorFieldCb<P>,
    input: &mut SpinorFieldCb<P>,
    out_parity: Parity,
    dagger: bool,
) -> Result<u64, CommError> {
    let tracer = comm.tracer().clone();
    if !partitioned {
        let _kernel = tracer.span(Phase::Kernel);
        dslash_cb(
            out,
            &op.gauge,
            input,
            out_parity,
            &op.stencil,
            &op.basis,
            dagger,
            DslashRegion::All,
        );
        return Ok(0);
    }
    // The exchanged operand is the *input* spinor: the opposite parity of
    // the slice being produced (the X/Y/Z face enumerations need it).
    let in_parity = out_parity.other();
    match strategy {
        CommStrategy::NoOverlap => {
            exchange_spinor_ghosts_grid(
                comm,
                input,
                &op.basis,
                &op.stencil,
                plan,
                in_parity,
                dagger,
            )?;
            let _kernel = tracer.span(Phase::Kernel);
            dslash_cb(
                out,
                &op.gauge,
                input,
                out_parity,
                &op.stencil,
                &op.basis,
                dagger,
                DslashRegion::All,
            );
        }
        CommStrategy::Overlap => {
            for dim in plan.active_dims() {
                send_faces_dim(comm, input, &op.basis, &op.stencil, plan, dim, in_parity, dagger)?;
            }
            {
                // Compute running while all faces are in flight — the
                // hidden-communication window the breakdown's overlap
                // efficiency measures.
                let _interior = tracer.span(Phase::Interior);
                dslash_cb(
                    out,
                    &op.gauge,
                    input,
                    out_parity,
                    &op.stencil,
                    &op.basis,
                    dagger,
                    DslashRegion::Interior,
                );
            }
            // Each direction progresses independently: as soon as one
            // dimension's ghosts land, its boundary sites are updated,
            // while the remaining directions are still in flight
            // (ascending-dim order updates every boundary site exactly
            // once — corner sites run with their last-arriving face).
            for dim in plan.active_dims() {
                recv_faces_dim(comm, input, plan, dim)?;
                let _exterior = tracer.span(Phase::exterior_dim(dim));
                dslash_cb(
                    out,
                    &op.gauge,
                    input,
                    out_parity,
                    &op.stencil,
                    &op.basis,
                    dagger,
                    DslashRegion::FacesDim(dim),
                );
            }
        }
    }
    Ok(1)
}

/// Batched analog of [`dslash_exchanged`]: one fused face message per
/// `(dimension, direction)` for the whole RHS block, and one gauge-link
/// decode per `(site, μ)` shared across the block. Per active RHS the
/// result is bit-identical to [`dslash_exchanged`] (same decoded ghost
/// values, same kernel arithmetic).
#[allow(clippy::too_many_arguments)]
fn dslash_exchanged_multi<P: Precision>(
    comm: &mut Communicator,
    op: &WilsonCloverOp<P>,
    plan: &DecompPlan,
    strategy: CommStrategy,
    partitioned: bool,
    outs: &mut [SpinorFieldCb<P>],
    inputs: &mut [SpinorFieldCb<P>],
    active: &[bool],
    out_parity: Parity,
    dagger: bool,
) -> Result<u64, CommError> {
    let tracer = comm.tracer().clone();
    if !partitioned {
        let _kernel = tracer.span(Phase::Kernel);
        dslash_cb_multi(
            outs,
            &op.gauge,
            inputs,
            out_parity,
            &op.stencil,
            &op.basis,
            dagger,
            DslashRegion::All,
            active,
        );
        return Ok(0);
    }
    let in_parity = out_parity.other();
    match strategy {
        CommStrategy::NoOverlap => {
            exchange_spinor_ghosts_grid_multi(
                comm,
                inputs,
                active,
                &op.basis,
                &op.stencil,
                plan,
                in_parity,
                dagger,
            )?;
            let _kernel = tracer.span(Phase::Kernel);
            dslash_cb_multi(
                outs,
                &op.gauge,
                inputs,
                out_parity,
                &op.stencil,
                &op.basis,
                dagger,
                DslashRegion::All,
                active,
            );
        }
        CommStrategy::Overlap => {
            for dim in plan.active_dims() {
                send_faces_dim_multi(
                    comm,
                    inputs,
                    active,
                    &op.basis,
                    &op.stencil,
                    plan,
                    dim,
                    in_parity,
                    dagger,
                )?;
            }
            {
                let _interior = tracer.span(Phase::Interior);
                dslash_cb_multi(
                    outs,
                    &op.gauge,
                    inputs,
                    out_parity,
                    &op.stencil,
                    &op.basis,
                    dagger,
                    DslashRegion::Interior,
                    active,
                );
            }
            for dim in plan.active_dims() {
                recv_faces_dim_multi(comm, inputs, active, plan, dim)?;
                let _exterior = tracer.span(Phase::exterior_dim(dim));
                dslash_cb_multi(
                    outs,
                    &op.gauge,
                    inputs,
                    out_parity,
                    &op.stencil,
                    &op.basis,
                    dagger,
                    DslashRegion::FacesDim(dim),
                    active,
                );
            }
        }
    }
    Ok(1)
}

impl<P: Precision> ParallelWilsonCloverOp<P> {
    /// Build a rank's operator from the global configuration: slices the
    /// gauge field, computes the (globally correct) clover term, uploads at
    /// precision `P`, and performs the one-time gauge ghost exchange.
    ///
    /// Fails with a [`CommError`] when the gauge ghost exchange cannot be
    /// completed (dead peer, timeout, unrecoverable corruption).
    pub fn new(
        global: &GaugeConfig,
        part: TimePartition,
        rank: usize,
        comm: Communicator,
        wilson: WilsonParams,
        strategy: CommStrategy,
    ) -> Result<Self, CommError> {
        Self::new_grid(global, DecompPlan::from_time(&part), rank, comm, wilson, strategy)
    }

    /// Build a rank's operator for an arbitrary [`DecompPlan`] process
    /// grid: slices the gauge field to the rank's sub-block, computes the
    /// globally correct clover term, opens every partitioned dimension of
    /// the local stencil, and performs the one-time gauge ghost exchange on
    /// each open dimension's ring. A `1×1×1×N` plan reproduces
    /// [`ParallelWilsonCloverOp::new`] exactly — including its wire
    /// traffic.
    pub fn new_grid(
        global: &GaugeConfig,
        plan: DecompPlan,
        rank: usize,
        mut comm: Communicator,
        wilson: WilsonParams,
        strategy: CommStrategy,
    ) -> Result<Self, CommError> {
        assert_eq!(comm.rank(), rank);
        assert_eq!(comm.size(), plan.n_ranks());
        let local_cfg = slice_config_grid(global, &plan, rank);
        let clover = local_clover_grid(global, &plan, rank, wilson.c_sw);
        let mut op = WilsonCloverOp::<P>::from_config_open(
            &local_cfg,
            wilson,
            plan.open_dims(),
            Some(clover),
        );
        // No-op on an unpartitioned plan (no active dimensions).
        exchange_gauge_ghosts_grid(&mut comm, &mut op.gauge, &plan)?;
        let tmp1 = op.alloc_spinor();
        let tmp2 = op.alloc_spinor();
        Ok(ParallelWilsonCloverOp {
            op,
            comm,
            strategy,
            partitioned: plan.is_partitioned(),
            plan,
            tmp1,
            tmp2,
            tmp1s: Vec::new(),
            tmp2s: Vec::new(),
            exchange_count: 0,
            fault: None,
        })
    }

    /// Take the communication error that poisoned this operator, if any,
    /// clearing the poisoned state. The parallel driver uses this to turn a
    /// solver abort back into the original typed [`CommError`].
    pub fn take_comm_fault(&mut self) -> Option<CommError> {
        self.fault.take()
    }

    /// The communication error that poisoned this operator, if any.
    pub fn comm_fault(&self) -> Option<&CommError> {
        self.fault.as_ref()
    }

    /// This rank's communication recovery counters.
    pub fn comm_stats(&self) -> CommStats {
        self.comm.stats()
    }

    /// The parallel even-odd preconditioned application
    /// `out = T_oo ψ − ¼ D_oe T_ee⁻¹ D_eo ψ`, with a face exchange before
    /// each hopping term.
    ///
    /// A communication failure does not panic: it poisons the operator (see
    /// [`ParallelWilsonCloverOp::take_comm_fault`]) and the application
    /// becomes a no-op, which the calling solver notices via NaN reductions
    /// and its fault poll.
    pub fn apply_matpc_par(
        &mut self,
        out: &mut SpinorFieldCb<P>,
        input: &mut SpinorFieldCb<P>,
        dagger: bool,
    ) {
        if self.fault.is_some() {
            return;
        }
        if let Err(e) = self.try_apply_matpc_par(out, input, dagger) {
            self.fault = Some(e);
        }
    }

    fn try_apply_matpc_par(
        &mut self,
        out: &mut SpinorFieldCb<P>,
        input: &mut SpinorFieldCb<P>,
        dagger: bool,
    ) -> Result<(), CommError> {
        self.exchange_count += dslash_exchanged(
            &mut self.comm,
            &self.op,
            &self.plan,
            self.strategy,
            self.partitioned,
            &mut self.tmp1,
            input,
            INNER_PARITY,
            dagger,
        )?;
        clover_apply_cb(
            &mut self.tmp2,
            &self.op.clover_inv[INNER_PARITY.as_usize()],
            &self.tmp1,
            &self.op.map,
        );
        self.exchange_count += dslash_exchanged(
            &mut self.comm,
            &self.op,
            &self.plan,
            self.strategy,
            self.partitioned,
            &mut self.tmp1,
            &mut self.tmp2,
            SOLVE_PARITY,
            dagger,
        )?;
        clover_axpy_cb(
            out,
            &self.op.clover[SOLVE_PARITY.as_usize()],
            input,
            P::Arith::from_f64(-0.25),
            &self.tmp1,
            &self.op.map,
        );
        self.op.matpc_count.set(self.op.matpc_count.get() + 1);
        Ok(())
    }

    /// Batched parallel matpc: `outs[r] = M̂ ins[r]` for every active RHS,
    /// with one fused face exchange per hopping term for the whole block.
    ///
    /// Per active RHS the result is bit-identical to
    /// [`ParallelWilsonCloverOp::apply_matpc_par`]; inactive slots are left
    /// untouched. Fault semantics match the single-RHS path: a
    /// communication failure poisons the operator and the application
    /// becomes a no-op.
    pub fn apply_matpc_par_multi(
        &mut self,
        outs: &mut [SpinorFieldCb<P>],
        ins: &mut [SpinorFieldCb<P>],
        active: &[bool],
        dagger: bool,
    ) {
        if self.fault.is_some() {
            return;
        }
        if let Err(e) = self.try_apply_matpc_par_multi(outs, ins, active, dagger) {
            self.fault = Some(e);
        }
    }

    fn try_apply_matpc_par_multi(
        &mut self,
        outs: &mut [SpinorFieldCb<P>],
        ins: &mut [SpinorFieldCb<P>],
        active: &[bool],
        dagger: bool,
    ) -> Result<(), CommError> {
        let n = ins.len();
        assert_eq!(outs.len(), n);
        assert_eq!(active.len(), n);
        assert!(n <= MAX_RHS_BATCH, "batch exceeds MAX_RHS_BATCH");
        let n_active = active.iter().filter(|&&a| a).count();
        if n_active == 0 {
            return Ok(());
        }
        while self.tmp1s.len() < n {
            self.tmp1s.push(self.op.alloc_spinor());
            self.tmp2s.push(self.op.alloc_spinor());
        }
        self.exchange_count += dslash_exchanged_multi(
            &mut self.comm,
            &self.op,
            &self.plan,
            self.strategy,
            self.partitioned,
            &mut self.tmp1s[..n],
            ins,
            active,
            INNER_PARITY,
            dagger,
        )?;
        clover_apply_cb_multi(
            &mut self.tmp2s[..n],
            &self.op.clover_inv[INNER_PARITY.as_usize()],
            &self.tmp1s[..n],
            &self.op.map,
            active,
        );
        self.exchange_count += dslash_exchanged_multi(
            &mut self.comm,
            &self.op,
            &self.plan,
            self.strategy,
            self.partitioned,
            &mut self.tmp1s[..n],
            &mut self.tmp2s[..n],
            active,
            SOLVE_PARITY,
            dagger,
        )?;
        clover_axpy_cb_multi(
            outs,
            &self.op.clover[SOLVE_PARITY.as_usize()],
            ins,
            P::Arith::from_f64(-0.25),
            &self.tmp1s[..n],
            &self.op.map,
            active,
        );
        self.op.matpc_count.set(self.op.matpc_count.get() + n_active as u64);
        Ok(())
    }

    /// Source preparation `b̂_o = b_o + ½ D_oe T_ee⁻¹ b_e` with exchanges.
    pub fn prepare_source_par(
        &mut self,
        out: &mut SpinorFieldCb<P>,
        b_even: &SpinorFieldCb<P>,
        b_odd: &SpinorFieldCb<P>,
    ) -> Result<(), CommError> {
        if let Some(e) = &self.fault {
            return Err(e.clone());
        }
        let _span = self.comm.tracer().span(Phase::Prepare);
        clover_apply_cb(
            &mut self.tmp1,
            &self.op.clover_inv[INNER_PARITY.as_usize()],
            b_even,
            &self.op.map,
        );
        self.exchange_count += dslash_exchanged(
            &mut self.comm,
            &self.op,
            &self.plan,
            self.strategy,
            self.partitioned,
            &mut self.tmp2,
            &mut self.tmp1,
            SOLVE_PARITY,
            false,
        )
        .inspect_err(|e| {
            self.fault = Some(e.clone());
        })?;
        for cb in 0..out.sites() {
            let v = b_odd.get(cb) + self.tmp2.get(cb).scale_re(P::Arith::from_f64(0.5));
            out.set(cb, &v);
        }
        Ok(())
    }

    /// Even-parity reconstruction `x_e = T_ee⁻¹ (b_e + ½ D_eo x_o)`.
    pub fn reconstruct_even_par(
        &mut self,
        x_even: &mut SpinorFieldCb<P>,
        b_even: &SpinorFieldCb<P>,
        x_odd: &mut SpinorFieldCb<P>,
    ) -> Result<(), CommError> {
        if let Some(e) = &self.fault {
            return Err(e.clone());
        }
        let _span = self.comm.tracer().span(Phase::Reconstruct);
        self.exchange_count += dslash_exchanged(
            &mut self.comm,
            &self.op,
            &self.plan,
            self.strategy,
            self.partitioned,
            &mut self.tmp1,
            x_odd,
            INNER_PARITY,
            false,
        )
        .inspect_err(|e| {
            self.fault = Some(e.clone());
        })?;
        for cb in 0..self.tmp1.sites() {
            let v = b_even.get(cb) + self.tmp1.get(cb).scale_re(P::Arith::from_f64(0.5));
            self.tmp1.set(cb, &v);
        }
        clover_apply_cb(
            x_even,
            &self.op.clover_inv[INNER_PARITY.as_usize()],
            &self.tmp1,
            &self.op.map,
        );
        Ok(())
    }
}

impl<P: Precision> LinearOperator<P> for ParallelWilsonCloverOp<P> {
    fn dims(&self) -> LatticeDims {
        self.op.dims
    }

    fn alloc(&self) -> SpinorFieldCb<P> {
        self.op.alloc_spinor()
    }

    fn apply(&mut self, out: &mut SpinorFieldCb<P>, input: &mut SpinorFieldCb<P>) {
        self.apply_matpc_par(out, input, false);
    }

    fn apply_dagger(&mut self, out: &mut SpinorFieldCb<P>, input: &mut SpinorFieldCb<P>) {
        self.apply_matpc_par(out, input, true);
    }

    fn apply_multi(
        &mut self,
        outs: &mut [SpinorFieldCb<P>],
        ins: &mut [SpinorFieldCb<P>],
        active: &[bool],
    ) {
        self.apply_matpc_par_multi(outs, ins, active, false);
    }

    fn apply_dagger_multi(
        &mut self,
        outs: &mut [SpinorFieldCb<P>],
        ins: &mut [SpinorFieldCb<P>],
        active: &[bool],
    ) {
        self.apply_matpc_par_multi(outs, ins, active, true);
    }

    fn flops_per_apply(&self) -> u64 {
        self.op.dims.half_volume() as u64 * quda_dirac::flops::MATPC_FLOPS_PER_SITE
    }

    fn reduce(&mut self, local: f64) -> f64 {
        if self.fault.is_some() {
            return f64::NAN;
        }
        match self.comm.allreduce_sum_f64(local) {
            Ok(v) => v,
            Err(e) => {
                self.fault = Some(e);
                f64::NAN
            }
        }
    }

    fn reduce_c(&mut self, local: C64) -> C64 {
        if self.fault.is_some() {
            return C64::new(f64::NAN, f64::NAN);
        }
        match self.comm.allreduce_vec(&[local.re, local.im]) {
            Ok(v) => C64::new(v[0], v[1]),
            Err(e) => {
                self.fault = Some(e);
                C64::new(f64::NAN, f64::NAN)
            }
        }
    }

    fn reduce_vec(&mut self, locals: &mut [f64]) {
        if self.fault.is_some() {
            locals.fill(f64::NAN);
            return;
        }
        match self.comm.allreduce_vec(locals) {
            Ok(v) => locals.copy_from_slice(&v),
            Err(e) => {
                self.fault = Some(e);
                locals.fill(f64::NAN);
            }
        }
    }

    fn fault(&self) -> Option<OpFault> {
        self.fault.as_ref().map(|e| OpFault { message: e.to_string() })
    }

    fn tracer(&self) -> Tracer {
        self.comm.tracer().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::{gather_spinor, slice_spinor};
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_fields::host::HostSpinorField;
    use quda_fields::precision::Double;

    fn global_setup() -> (GaugeConfig, TimePartition, WilsonParams) {
        let d = LatticeDims::new(4, 4, 2, 8);
        (weak_field(d, 0.15, 11), TimePartition::new(d, 2), WilsonParams { mass: 0.2, c_sw: 1.0 })
    }

    fn parallel_matpc(strategy: CommStrategy, dagger: bool) -> (HostSpinorField, HostSpinorField) {
        let (cfg, part, wp) = global_setup();
        let input = random_spinor_field(part.global, 5);

        // Reference: single-device operator on the full lattice.
        let ref_op = WilsonCloverOp::<Double>::from_config(&cfg, wp);
        let mut x = ref_op.alloc_spinor();
        x.upload(&input, Parity::Odd);
        let mut out = ref_op.alloc_spinor();
        let (mut t1, mut t2) = (ref_op.alloc_spinor(), ref_op.alloc_spinor());
        ref_op.apply_matpc(&mut out, &x, &mut t1, &mut t2, dagger);
        let mut expect = HostSpinorField::zero(part.global);
        out.download(&mut expect, Parity::Odd);

        // Parallel: two rank threads.
        let world = quda_comm::comm_world(part.n_ranks);
        let handles: Vec<_> = world
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let cfg = cfg.clone();
                let input = input.clone();
                std::thread::spawn(move || {
                    let mut op =
                        ParallelWilsonCloverOp::<Double>::new(&cfg, part, rank, comm, wp, strategy)
                            .unwrap();
                    let local_in = slice_spinor(&input, &part, rank);
                    let mut x = op.alloc();
                    x.upload(&local_in, Parity::Odd);
                    let mut out = op.alloc();
                    op.apply_matpc_par(&mut out, &mut x, dagger);
                    let mut host = HostSpinorField::zero(part.local_dims());
                    out.download(&mut host, Parity::Odd);
                    (rank, host)
                })
            })
            .collect();
        let mut locals: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        locals.sort_by_key(|(r, _)| *r);
        let locals: Vec<_> = locals.into_iter().map(|(_, f)| f).collect();
        let got = gather_spinor(&locals, &part);
        (expect, got)
    }

    #[test]
    fn no_overlap_matches_single_device() {
        let (expect, got) = parallel_matpc(CommStrategy::NoOverlap, false);
        let dist = expect.max_site_dist(&got);
        assert!(dist < 1e-12, "max site distance {dist}");
    }

    #[test]
    fn overlap_matches_single_device() {
        let (expect, got) = parallel_matpc(CommStrategy::Overlap, false);
        let dist = expect.max_site_dist(&got);
        assert!(dist < 1e-12, "max site distance {dist}");
    }

    #[test]
    fn dagger_matches_single_device() {
        let (expect, got) = parallel_matpc(CommStrategy::Overlap, true);
        let dist = expect.max_site_dist(&got);
        assert!(dist < 1e-12, "max site distance {dist}");
    }

    fn grid_matpc(
        grid: [usize; 4],
        strategy: CommStrategy,
        dagger: bool,
    ) -> (HostSpinorField, HostSpinorField) {
        let d = LatticeDims::new(4, 4, 4, 8);
        let cfg = weak_field(d, 0.15, 11);
        let wp = WilsonParams { mass: 0.2, c_sw: 1.0 };
        let plan = DecompPlan::new(d, grid);
        let input = random_spinor_field(d, 5);

        // Reference: single-device operator on the full lattice.
        let ref_op = WilsonCloverOp::<Double>::from_config(&cfg, wp);
        let mut x = ref_op.alloc_spinor();
        x.upload(&input, Parity::Odd);
        let mut out = ref_op.alloc_spinor();
        let (mut t1, mut t2) = (ref_op.alloc_spinor(), ref_op.alloc_spinor());
        ref_op.apply_matpc(&mut out, &x, &mut t1, &mut t2, dagger);
        let mut expect = HostSpinorField::zero(d);
        out.download(&mut expect, Parity::Odd);

        // Parallel: one thread per grid domain.
        let world = quda_comm::comm_world(plan.n_ranks());
        let handles: Vec<_> = world
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let cfg = cfg.clone();
                let input = input.clone();
                std::thread::spawn(move || {
                    let mut op = ParallelWilsonCloverOp::<Double>::new_grid(
                        &cfg, plan, rank, comm, wp, strategy,
                    )
                    .unwrap();
                    let local_in = crate::slice::slice_spinor_grid(&input, &plan, rank);
                    let mut x = op.alloc();
                    x.upload(&local_in, Parity::Odd);
                    let mut out = op.alloc();
                    op.apply_matpc_par(&mut out, &mut x, dagger);
                    let mut host = HostSpinorField::zero(plan.local_dims());
                    out.download(&mut host, Parity::Odd);
                    (rank, host)
                })
            })
            .collect();
        let mut locals: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        locals.sort_by_key(|(r, _)| *r);
        let locals: Vec<_> = locals.into_iter().map(|(_, f)| f).collect();
        let got = crate::slice::gather_spinor_grid(&locals, &plan);
        (expect, got)
    }

    #[test]
    fn two_d_grid_matches_single_device() {
        for strategy in [CommStrategy::NoOverlap, CommStrategy::Overlap] {
            let (expect, got) = grid_matpc([1, 1, 2, 2], strategy, false);
            let dist = expect.max_site_dist(&got);
            assert!(dist < 1e-12, "{strategy:?}: max site distance {dist}");
        }
    }

    #[test]
    fn three_d_grid_matches_single_device() {
        let (expect, got) = grid_matpc([2, 1, 2, 2], CommStrategy::Overlap, false);
        let dist = expect.max_site_dist(&got);
        assert!(dist < 1e-12, "max site distance {dist}");
    }

    #[test]
    fn four_d_grid_matches_single_device() {
        for dagger in [false, true] {
            let (expect, got) = grid_matpc([2, 2, 2, 2], CommStrategy::Overlap, dagger);
            let dist = expect.max_site_dist(&got);
            assert!(dist < 1e-12, "dagger={dagger}: max site distance {dist}");
        }
    }

    #[test]
    fn batched_matpc_bit_identical_to_sequential_across_ranks() {
        // A 2-rank batched application must be bit-identical, per RHS, to
        // the single-RHS path — for both strategies, with a masked slot.
        for strategy in [CommStrategy::NoOverlap, CommStrategy::Overlap] {
            let (cfg, part, wp) = global_setup();
            let d = part.local_dims();
            let n = 3;
            let hosts: Vec<HostSpinorField> =
                (0..n).map(|r| random_spinor_field(d, 90 + r as u64)).collect();
            let mut active = vec![true; n];
            active[1] = false;
            let run = |batched: bool| -> Vec<Vec<HostSpinorField>> {
                let world = quda_comm::comm_world(part.n_ranks);
                let handles: Vec<_> = world
                    .into_iter()
                    .enumerate()
                    .map(|(rank, comm)| {
                        let cfg = cfg.clone();
                        let hosts = hosts.clone();
                        let active = active.clone();
                        std::thread::spawn(move || {
                            let mut op = ParallelWilsonCloverOp::<Double>::new(
                                &cfg, part, rank, comm, wp, strategy,
                            )
                            .unwrap();
                            let mut ins: Vec<_> = hosts
                                .iter()
                                .map(|h| {
                                    let mut x = op.alloc();
                                    x.upload(h, Parity::Odd);
                                    x
                                })
                                .collect();
                            let mut outs: Vec<_> = (0..ins.len()).map(|_| op.alloc()).collect();
                            if batched {
                                op.apply_matpc_par_multi(&mut outs, &mut ins, &active, false);
                            } else {
                                for r in 0..ins.len() {
                                    if active[r] {
                                        op.apply_matpc_par(&mut outs[r], &mut ins[r], false);
                                    }
                                }
                            }
                            let downs: Vec<HostSpinorField> = outs
                                .iter()
                                .map(|o| {
                                    let mut h = HostSpinorField::zero(part.local_dims());
                                    o.download(&mut h, Parity::Odd);
                                    h
                                })
                                .collect();
                            (rank, downs)
                        })
                    })
                    .collect();
                let mut locals: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
                locals.sort_by_key(|(r, _)| *r);
                locals.into_iter().map(|(_, f)| f).collect()
            };
            let batched = run(true);
            let sequential = run(false);
            for rank in 0..part.n_ranks {
                for r in 0..n {
                    let dist = batched[rank][r].max_site_dist(&sequential[rank][r]);
                    assert_eq!(
                        dist, 0.0,
                        "{strategy:?} rank={rank} rhs={r}: batched differs from sequential"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_matpc_sends_one_message_set_per_sweep() {
        // The whole point of the fused path: the wire message count of a
        // batch-N application equals that of a batch-1 application.
        let (cfg, part, wp) = global_setup();
        let d = part.local_dims();
        let count_msgs = |n: usize| -> u64 {
            let world = quda_comm::comm_world(part.n_ranks);
            let handles: Vec<_> = world
                .into_iter()
                .enumerate()
                .map(|(rank, comm)| {
                    let cfg = cfg.clone();
                    std::thread::spawn(move || {
                        let mut op = ParallelWilsonCloverOp::<Double>::new(
                            &cfg,
                            part,
                            rank,
                            comm,
                            wp,
                            CommStrategy::NoOverlap,
                        )
                        .unwrap();
                        let before = op.comm.sent_messages();
                        let mut ins: Vec<_> = (0..n)
                            .map(|r| {
                                let mut x = op.alloc();
                                x.upload(&random_spinor_field(d, r as u64), Parity::Odd);
                                x
                            })
                            .collect();
                        let mut outs: Vec<_> = (0..n).map(|_| op.alloc()).collect();
                        let active = vec![true; n];
                        op.apply_matpc_par_multi(&mut outs, &mut ins, &active, false);
                        op.comm.sent_messages() - before
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).max().unwrap()
        };
        assert_eq!(count_msgs(1), count_msgs(4), "message count must not scale with batch size");
    }

    #[test]
    fn reductions_are_global() {
        let (cfg, part, wp) = global_setup();
        let world = quda_comm::comm_world(part.n_ranks);
        let handles: Vec<_> = world
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let mut op = ParallelWilsonCloverOp::<Double>::new(
                        &cfg,
                        part,
                        rank,
                        comm,
                        wp,
                        CommStrategy::NoOverlap,
                    )
                    .unwrap();
                    op.reduce(1.0 + rank as f64)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3.0); // 1 + 2
        }
    }

    #[test]
    fn exchange_counter_tracks_dslashes() {
        let (cfg, part, wp) = global_setup();
        let world = quda_comm::comm_world(part.n_ranks);
        let handles: Vec<_> = world
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let mut op = ParallelWilsonCloverOp::<Double>::new(
                        &cfg,
                        part,
                        rank,
                        comm,
                        wp,
                        CommStrategy::NoOverlap,
                    )
                    .unwrap();
                    let mut x = op.alloc();
                    let mut out = op.alloc();
                    op.apply_matpc_par(&mut out, &mut x, false);
                    op.apply_matpc_par(&mut out, &mut x, false);
                    op.exchange_count
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 4); // 2 dslashes per application
        }
    }
}
