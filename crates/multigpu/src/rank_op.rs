//! The per-rank parallel Wilson-clover operator (Section VI).
//!
//! Each rank owns one domain of a [`DecompPlan`] process grid (the paper's
//! `T/N` time-slice being the `1×1×1×N` special case), a [`WilsonCloverOp`]
//! built on the local volume with an *open* boundary in every partitioned
//! dimension, and a [`Communicator`]. Every hopping-term application
//! exchanges the spinor faces of each open dimension first — either
//! blocking ([`CommStrategy::NoOverlap`]) or split around the interior
//! kernel ([`CommStrategy::Overlap`], the three-stream scheme of Section
//! VI-D2, with each direction's receive and exterior update progressing
//! independently). Reductions are globalized through the communicator
//! (Section VI-E).

use crate::ghost::{
    exchange_gauge_ghosts_grid, exchange_spinor_ghosts_grid, recv_faces_dim, send_faces_dim,
};
use crate::slice::{local_clover_grid, slice_config_grid};
use quda_comm::{CommError, CommStats, Communicator};
use quda_dirac::clover_apply::{clover_apply_cb, clover_axpy_cb};
use quda_dirac::dslash::{dslash_cb, DslashRegion};
use quda_dirac::{WilsonCloverOp, WilsonParams, INNER_PARITY, SOLVE_PARITY};
use quda_fields::host::GaugeConfig;
use quda_fields::precision::Precision;
use quda_fields::SpinorFieldCb;
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::partition::{DecompPlan, TimePartition};
use quda_math::complex::C64;
use quda_math::real::Real;
use quda_obs::{Phase, Tracer};
use quda_solvers::operator::{LinearOperator, OpFault};

/// Communication strategy for the face exchange (Section VI-D).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CommStrategy {
    /// Communicate up front, then run one kernel over the whole volume.
    NoOverlap,
    /// Start sends, compute the interior, receive, finish the faces.
    Overlap,
}

/// A rank's share of the parallelized even-odd Wilson-clover operator.
pub struct ParallelWilsonCloverOp<P: Precision> {
    /// The local single-device operator (open temporal boundary).
    pub op: WilsonCloverOp<P>,
    /// This rank's communicator endpoint.
    pub comm: Communicator,
    /// Face-exchange strategy.
    pub strategy: CommStrategy,
    /// Whether the lattice is actually split (more than one rank).
    pub partitioned: bool,
    /// The process-grid plan this rank belongs to.
    pub plan: DecompPlan,
    tmp1: SpinorFieldCb<P>,
    tmp2: SpinorFieldCb<P>,
    /// Face exchanges performed (2 per operator application).
    pub exchange_count: u64,
    // First communication error seen; once set the operator is *poisoned*:
    // applies no-op, reductions return NaN, and the solver's fault poll
    // surfaces the error (DESIGN.md §7).
    fault: Option<CommError>,
}

/// Apply the hopping term with the face exchange appropriate to the
/// strategy, iterating the plan's partitioned dimensions. Free function so
/// callers can split borrows across the operator's fields.
#[allow(clippy::too_many_arguments)]
fn dslash_exchanged<P: Precision>(
    comm: &mut Communicator,
    op: &WilsonCloverOp<P>,
    plan: &DecompPlan,
    strategy: CommStrategy,
    partitioned: bool,
    out: &mut SpinorFieldCb<P>,
    input: &mut SpinorFieldCb<P>,
    out_parity: Parity,
    dagger: bool,
) -> Result<u64, CommError> {
    let tracer = comm.tracer().clone();
    if !partitioned {
        let _kernel = tracer.span(Phase::Kernel);
        dslash_cb(
            out,
            &op.gauge,
            input,
            out_parity,
            &op.stencil,
            &op.basis,
            dagger,
            DslashRegion::All,
        );
        return Ok(0);
    }
    // The exchanged operand is the *input* spinor: the opposite parity of
    // the slice being produced (the X/Y/Z face enumerations need it).
    let in_parity = out_parity.other();
    match strategy {
        CommStrategy::NoOverlap => {
            exchange_spinor_ghosts_grid(
                comm,
                input,
                &op.basis,
                &op.stencil,
                plan,
                in_parity,
                dagger,
            )?;
            let _kernel = tracer.span(Phase::Kernel);
            dslash_cb(
                out,
                &op.gauge,
                input,
                out_parity,
                &op.stencil,
                &op.basis,
                dagger,
                DslashRegion::All,
            );
        }
        CommStrategy::Overlap => {
            for dim in plan.active_dims() {
                send_faces_dim(comm, input, &op.basis, &op.stencil, plan, dim, in_parity, dagger)?;
            }
            {
                // Compute running while all faces are in flight — the
                // hidden-communication window the breakdown's overlap
                // efficiency measures.
                let _interior = tracer.span(Phase::Interior);
                dslash_cb(
                    out,
                    &op.gauge,
                    input,
                    out_parity,
                    &op.stencil,
                    &op.basis,
                    dagger,
                    DslashRegion::Interior,
                );
            }
            // Each direction progresses independently: as soon as one
            // dimension's ghosts land, its boundary sites are updated,
            // while the remaining directions are still in flight
            // (ascending-dim order updates every boundary site exactly
            // once — corner sites run with their last-arriving face).
            for dim in plan.active_dims() {
                recv_faces_dim(comm, input, plan, dim)?;
                let _exterior = tracer.span(Phase::exterior_dim(dim));
                dslash_cb(
                    out,
                    &op.gauge,
                    input,
                    out_parity,
                    &op.stencil,
                    &op.basis,
                    dagger,
                    DslashRegion::FacesDim(dim),
                );
            }
        }
    }
    Ok(1)
}

impl<P: Precision> ParallelWilsonCloverOp<P> {
    /// Build a rank's operator from the global configuration: slices the
    /// gauge field, computes the (globally correct) clover term, uploads at
    /// precision `P`, and performs the one-time gauge ghost exchange.
    ///
    /// Fails with a [`CommError`] when the gauge ghost exchange cannot be
    /// completed (dead peer, timeout, unrecoverable corruption).
    pub fn new(
        global: &GaugeConfig,
        part: TimePartition,
        rank: usize,
        comm: Communicator,
        wilson: WilsonParams,
        strategy: CommStrategy,
    ) -> Result<Self, CommError> {
        Self::new_grid(global, DecompPlan::from_time(&part), rank, comm, wilson, strategy)
    }

    /// Build a rank's operator for an arbitrary [`DecompPlan`] process
    /// grid: slices the gauge field to the rank's sub-block, computes the
    /// globally correct clover term, opens every partitioned dimension of
    /// the local stencil, and performs the one-time gauge ghost exchange on
    /// each open dimension's ring. A `1×1×1×N` plan reproduces
    /// [`ParallelWilsonCloverOp::new`] exactly — including its wire
    /// traffic.
    pub fn new_grid(
        global: &GaugeConfig,
        plan: DecompPlan,
        rank: usize,
        mut comm: Communicator,
        wilson: WilsonParams,
        strategy: CommStrategy,
    ) -> Result<Self, CommError> {
        assert_eq!(comm.rank(), rank);
        assert_eq!(comm.size(), plan.n_ranks());
        let local_cfg = slice_config_grid(global, &plan, rank);
        let clover = local_clover_grid(global, &plan, rank, wilson.c_sw);
        let mut op = WilsonCloverOp::<P>::from_config_open(
            &local_cfg,
            wilson,
            plan.open_dims(),
            Some(clover),
        );
        // No-op on an unpartitioned plan (no active dimensions).
        exchange_gauge_ghosts_grid(&mut comm, &mut op.gauge, &plan)?;
        let tmp1 = op.alloc_spinor();
        let tmp2 = op.alloc_spinor();
        Ok(ParallelWilsonCloverOp {
            op,
            comm,
            strategy,
            partitioned: plan.is_partitioned(),
            plan,
            tmp1,
            tmp2,
            exchange_count: 0,
            fault: None,
        })
    }

    /// Take the communication error that poisoned this operator, if any,
    /// clearing the poisoned state. The parallel driver uses this to turn a
    /// solver abort back into the original typed [`CommError`].
    pub fn take_comm_fault(&mut self) -> Option<CommError> {
        self.fault.take()
    }

    /// The communication error that poisoned this operator, if any.
    pub fn comm_fault(&self) -> Option<&CommError> {
        self.fault.as_ref()
    }

    /// This rank's communication recovery counters.
    pub fn comm_stats(&self) -> CommStats {
        self.comm.stats()
    }

    /// The parallel even-odd preconditioned application
    /// `out = T_oo ψ − ¼ D_oe T_ee⁻¹ D_eo ψ`, with a face exchange before
    /// each hopping term.
    ///
    /// A communication failure does not panic: it poisons the operator (see
    /// [`ParallelWilsonCloverOp::take_comm_fault`]) and the application
    /// becomes a no-op, which the calling solver notices via NaN reductions
    /// and its fault poll.
    pub fn apply_matpc_par(
        &mut self,
        out: &mut SpinorFieldCb<P>,
        input: &mut SpinorFieldCb<P>,
        dagger: bool,
    ) {
        if self.fault.is_some() {
            return;
        }
        if let Err(e) = self.try_apply_matpc_par(out, input, dagger) {
            self.fault = Some(e);
        }
    }

    fn try_apply_matpc_par(
        &mut self,
        out: &mut SpinorFieldCb<P>,
        input: &mut SpinorFieldCb<P>,
        dagger: bool,
    ) -> Result<(), CommError> {
        self.exchange_count += dslash_exchanged(
            &mut self.comm,
            &self.op,
            &self.plan,
            self.strategy,
            self.partitioned,
            &mut self.tmp1,
            input,
            INNER_PARITY,
            dagger,
        )?;
        clover_apply_cb(
            &mut self.tmp2,
            &self.op.clover_inv[INNER_PARITY.as_usize()],
            &self.tmp1,
            &self.op.map,
        );
        self.exchange_count += dslash_exchanged(
            &mut self.comm,
            &self.op,
            &self.plan,
            self.strategy,
            self.partitioned,
            &mut self.tmp1,
            &mut self.tmp2,
            SOLVE_PARITY,
            dagger,
        )?;
        clover_axpy_cb(
            out,
            &self.op.clover[SOLVE_PARITY.as_usize()],
            input,
            P::Arith::from_f64(-0.25),
            &self.tmp1,
            &self.op.map,
        );
        self.op.matpc_count.set(self.op.matpc_count.get() + 1);
        Ok(())
    }

    /// Source preparation `b̂_o = b_o + ½ D_oe T_ee⁻¹ b_e` with exchanges.
    pub fn prepare_source_par(
        &mut self,
        out: &mut SpinorFieldCb<P>,
        b_even: &SpinorFieldCb<P>,
        b_odd: &SpinorFieldCb<P>,
    ) -> Result<(), CommError> {
        if let Some(e) = &self.fault {
            return Err(e.clone());
        }
        let _span = self.comm.tracer().span(Phase::Prepare);
        clover_apply_cb(
            &mut self.tmp1,
            &self.op.clover_inv[INNER_PARITY.as_usize()],
            b_even,
            &self.op.map,
        );
        self.exchange_count += dslash_exchanged(
            &mut self.comm,
            &self.op,
            &self.plan,
            self.strategy,
            self.partitioned,
            &mut self.tmp2,
            &mut self.tmp1,
            SOLVE_PARITY,
            false,
        )
        .inspect_err(|e| {
            self.fault = Some(e.clone());
        })?;
        for cb in 0..out.sites() {
            let v = b_odd.get(cb) + self.tmp2.get(cb).scale_re(P::Arith::from_f64(0.5));
            out.set(cb, &v);
        }
        Ok(())
    }

    /// Even-parity reconstruction `x_e = T_ee⁻¹ (b_e + ½ D_eo x_o)`.
    pub fn reconstruct_even_par(
        &mut self,
        x_even: &mut SpinorFieldCb<P>,
        b_even: &SpinorFieldCb<P>,
        x_odd: &mut SpinorFieldCb<P>,
    ) -> Result<(), CommError> {
        if let Some(e) = &self.fault {
            return Err(e.clone());
        }
        let _span = self.comm.tracer().span(Phase::Reconstruct);
        self.exchange_count += dslash_exchanged(
            &mut self.comm,
            &self.op,
            &self.plan,
            self.strategy,
            self.partitioned,
            &mut self.tmp1,
            x_odd,
            INNER_PARITY,
            false,
        )
        .inspect_err(|e| {
            self.fault = Some(e.clone());
        })?;
        for cb in 0..self.tmp1.sites() {
            let v = b_even.get(cb) + self.tmp1.get(cb).scale_re(P::Arith::from_f64(0.5));
            self.tmp1.set(cb, &v);
        }
        clover_apply_cb(
            x_even,
            &self.op.clover_inv[INNER_PARITY.as_usize()],
            &self.tmp1,
            &self.op.map,
        );
        Ok(())
    }
}

impl<P: Precision> LinearOperator<P> for ParallelWilsonCloverOp<P> {
    fn dims(&self) -> LatticeDims {
        self.op.dims
    }

    fn alloc(&self) -> SpinorFieldCb<P> {
        self.op.alloc_spinor()
    }

    fn apply(&mut self, out: &mut SpinorFieldCb<P>, input: &mut SpinorFieldCb<P>) {
        self.apply_matpc_par(out, input, false);
    }

    fn apply_dagger(&mut self, out: &mut SpinorFieldCb<P>, input: &mut SpinorFieldCb<P>) {
        self.apply_matpc_par(out, input, true);
    }

    fn flops_per_apply(&self) -> u64 {
        self.op.dims.half_volume() as u64 * quda_dirac::flops::MATPC_FLOPS_PER_SITE
    }

    fn reduce(&mut self, local: f64) -> f64 {
        if self.fault.is_some() {
            return f64::NAN;
        }
        match self.comm.allreduce_sum_f64(local) {
            Ok(v) => v,
            Err(e) => {
                self.fault = Some(e);
                f64::NAN
            }
        }
    }

    fn reduce_c(&mut self, local: C64) -> C64 {
        if self.fault.is_some() {
            return C64::new(f64::NAN, f64::NAN);
        }
        match self.comm.allreduce_vec(&[local.re, local.im]) {
            Ok(v) => C64::new(v[0], v[1]),
            Err(e) => {
                self.fault = Some(e);
                C64::new(f64::NAN, f64::NAN)
            }
        }
    }

    fn fault(&self) -> Option<OpFault> {
        self.fault.as_ref().map(|e| OpFault { message: e.to_string() })
    }

    fn tracer(&self) -> Tracer {
        self.comm.tracer().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::{gather_spinor, slice_spinor};
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_fields::host::HostSpinorField;
    use quda_fields::precision::Double;

    fn global_setup() -> (GaugeConfig, TimePartition, WilsonParams) {
        let d = LatticeDims::new(4, 4, 2, 8);
        (weak_field(d, 0.15, 11), TimePartition::new(d, 2), WilsonParams { mass: 0.2, c_sw: 1.0 })
    }

    fn parallel_matpc(strategy: CommStrategy, dagger: bool) -> (HostSpinorField, HostSpinorField) {
        let (cfg, part, wp) = global_setup();
        let input = random_spinor_field(part.global, 5);

        // Reference: single-device operator on the full lattice.
        let ref_op = WilsonCloverOp::<Double>::from_config(&cfg, wp);
        let mut x = ref_op.alloc_spinor();
        x.upload(&input, Parity::Odd);
        let mut out = ref_op.alloc_spinor();
        let (mut t1, mut t2) = (ref_op.alloc_spinor(), ref_op.alloc_spinor());
        ref_op.apply_matpc(&mut out, &x, &mut t1, &mut t2, dagger);
        let mut expect = HostSpinorField::zero(part.global);
        out.download(&mut expect, Parity::Odd);

        // Parallel: two rank threads.
        let world = quda_comm::comm_world(part.n_ranks);
        let handles: Vec<_> = world
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let cfg = cfg.clone();
                let input = input.clone();
                std::thread::spawn(move || {
                    let mut op =
                        ParallelWilsonCloverOp::<Double>::new(&cfg, part, rank, comm, wp, strategy)
                            .unwrap();
                    let local_in = slice_spinor(&input, &part, rank);
                    let mut x = op.alloc();
                    x.upload(&local_in, Parity::Odd);
                    let mut out = op.alloc();
                    op.apply_matpc_par(&mut out, &mut x, dagger);
                    let mut host = HostSpinorField::zero(part.local_dims());
                    out.download(&mut host, Parity::Odd);
                    (rank, host)
                })
            })
            .collect();
        let mut locals: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        locals.sort_by_key(|(r, _)| *r);
        let locals: Vec<_> = locals.into_iter().map(|(_, f)| f).collect();
        let got = gather_spinor(&locals, &part);
        (expect, got)
    }

    #[test]
    fn no_overlap_matches_single_device() {
        let (expect, got) = parallel_matpc(CommStrategy::NoOverlap, false);
        let dist = expect.max_site_dist(&got);
        assert!(dist < 1e-12, "max site distance {dist}");
    }

    #[test]
    fn overlap_matches_single_device() {
        let (expect, got) = parallel_matpc(CommStrategy::Overlap, false);
        let dist = expect.max_site_dist(&got);
        assert!(dist < 1e-12, "max site distance {dist}");
    }

    #[test]
    fn dagger_matches_single_device() {
        let (expect, got) = parallel_matpc(CommStrategy::Overlap, true);
        let dist = expect.max_site_dist(&got);
        assert!(dist < 1e-12, "max site distance {dist}");
    }

    fn grid_matpc(
        grid: [usize; 4],
        strategy: CommStrategy,
        dagger: bool,
    ) -> (HostSpinorField, HostSpinorField) {
        let d = LatticeDims::new(4, 4, 4, 8);
        let cfg = weak_field(d, 0.15, 11);
        let wp = WilsonParams { mass: 0.2, c_sw: 1.0 };
        let plan = DecompPlan::new(d, grid);
        let input = random_spinor_field(d, 5);

        // Reference: single-device operator on the full lattice.
        let ref_op = WilsonCloverOp::<Double>::from_config(&cfg, wp);
        let mut x = ref_op.alloc_spinor();
        x.upload(&input, Parity::Odd);
        let mut out = ref_op.alloc_spinor();
        let (mut t1, mut t2) = (ref_op.alloc_spinor(), ref_op.alloc_spinor());
        ref_op.apply_matpc(&mut out, &x, &mut t1, &mut t2, dagger);
        let mut expect = HostSpinorField::zero(d);
        out.download(&mut expect, Parity::Odd);

        // Parallel: one thread per grid domain.
        let world = quda_comm::comm_world(plan.n_ranks());
        let handles: Vec<_> = world
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let cfg = cfg.clone();
                let input = input.clone();
                std::thread::spawn(move || {
                    let mut op = ParallelWilsonCloverOp::<Double>::new_grid(
                        &cfg, plan, rank, comm, wp, strategy,
                    )
                    .unwrap();
                    let local_in = crate::slice::slice_spinor_grid(&input, &plan, rank);
                    let mut x = op.alloc();
                    x.upload(&local_in, Parity::Odd);
                    let mut out = op.alloc();
                    op.apply_matpc_par(&mut out, &mut x, dagger);
                    let mut host = HostSpinorField::zero(plan.local_dims());
                    out.download(&mut host, Parity::Odd);
                    (rank, host)
                })
            })
            .collect();
        let mut locals: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        locals.sort_by_key(|(r, _)| *r);
        let locals: Vec<_> = locals.into_iter().map(|(_, f)| f).collect();
        let got = crate::slice::gather_spinor_grid(&locals, &plan);
        (expect, got)
    }

    #[test]
    fn two_d_grid_matches_single_device() {
        for strategy in [CommStrategy::NoOverlap, CommStrategy::Overlap] {
            let (expect, got) = grid_matpc([1, 1, 2, 2], strategy, false);
            let dist = expect.max_site_dist(&got);
            assert!(dist < 1e-12, "{strategy:?}: max site distance {dist}");
        }
    }

    #[test]
    fn three_d_grid_matches_single_device() {
        let (expect, got) = grid_matpc([2, 1, 2, 2], CommStrategy::Overlap, false);
        let dist = expect.max_site_dist(&got);
        assert!(dist < 1e-12, "max site distance {dist}");
    }

    #[test]
    fn four_d_grid_matches_single_device() {
        for dagger in [false, true] {
            let (expect, got) = grid_matpc([2, 2, 2, 2], CommStrategy::Overlap, dagger);
            let dist = expect.max_site_dist(&got);
            assert!(dist < 1e-12, "dagger={dagger}: max site distance {dist}");
        }
    }

    #[test]
    fn reductions_are_global() {
        let (cfg, part, wp) = global_setup();
        let world = quda_comm::comm_world(part.n_ranks);
        let handles: Vec<_> = world
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let mut op = ParallelWilsonCloverOp::<Double>::new(
                        &cfg,
                        part,
                        rank,
                        comm,
                        wp,
                        CommStrategy::NoOverlap,
                    )
                    .unwrap();
                    op.reduce(1.0 + rank as f64)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3.0); // 1 + 2
        }
    }

    #[test]
    fn exchange_counter_tracks_dslashes() {
        let (cfg, part, wp) = global_setup();
        let world = quda_comm::comm_world(part.n_ranks);
        let handles: Vec<_> = world
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    let mut op = ParallelWilsonCloverOp::<Double>::new(
                        &cfg,
                        part,
                        rank,
                        comm,
                        wp,
                        CommStrategy::NoOverlap,
                    )
                    .unwrap();
                    let mut x = op.alloc();
                    let mut out = op.alloc();
                    op.apply_matpc_par(&mut out, &mut x, false);
                    op.apply_matpc_par(&mut out, &mut x, false);
                    op.exchange_count
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 4); // 2 dslashes per application
        }
    }
}
