//! Scattering global host fields to domain sub-lattices and gathering them
//! back — the data movement Chroma performs around a parallel QUDA solve.
//!
//! The `*_grid` functions address any [`DecompPlan`] process grid; the
//! original time-slice entry points are thin wrappers over the equivalent
//! `1×1×1×N` plan.

use quda_fields::clover_build::{clover_site, sigma_matrices};
use quda_fields::host::{GaugeConfig, HostSpinorField};
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::partition::{DecompPlan, TimePartition};
use quda_math::clover::CloverSite;

/// The local gauge configuration of `rank`: its `T/N` time-slices.
pub fn slice_config(global: &GaugeConfig, part: &TimePartition, rank: usize) -> GaugeConfig {
    slice_config_grid(global, &DecompPlan::from_time(part), rank)
}

/// The local gauge configuration of `rank` under a process-grid plan.
pub fn slice_config_grid(global: &GaugeConfig, plan: &DecompPlan, rank: usize) -> GaugeConfig {
    assert_eq!(global.dims, plan.global());
    let local_dims = plan.local_dims();
    let mut local = GaugeConfig::unit(local_dims);
    for c in local_dims.coords() {
        let gc = plan.global_coord(rank, c);
        for mu in 0..4 {
            *local.link_mut(c, mu) = *global.link(gc, mu);
        }
    }
    local
}

/// The local part of a host spinor field.
pub fn slice_spinor(
    global: &HostSpinorField,
    part: &TimePartition,
    rank: usize,
) -> HostSpinorField {
    slice_spinor_grid(global, &DecompPlan::from_time(part), rank)
}

/// The local part of a host spinor field under a process-grid plan.
pub fn slice_spinor_grid(
    global: &HostSpinorField,
    plan: &DecompPlan,
    rank: usize,
) -> HostSpinorField {
    assert_eq!(global.dims, plan.global());
    let local_dims = plan.local_dims();
    let mut local = HostSpinorField::zero(local_dims);
    for c in local_dims.coords() {
        *local.get_mut(c) = *global.get(plan.global_coord(rank, c));
    }
    local
}

/// Reassemble a global field from every rank's local field (rank order).
pub fn gather_spinor(locals: &[HostSpinorField], part: &TimePartition) -> HostSpinorField {
    gather_spinor_grid(locals, &DecompPlan::from_time(part))
}

/// Reassemble a global field from every rank's local field (rank order)
/// under a process-grid plan.
pub fn gather_spinor_grid(locals: &[HostSpinorField], plan: &DecompPlan) -> HostSpinorField {
    assert_eq!(locals.len(), plan.n_ranks());
    let mut global = HostSpinorField::zero(plan.global());
    let local_dims = plan.local_dims();
    for (rank, local) in locals.iter().enumerate() {
        assert_eq!(local.dims, local_dims);
        for c in local_dims.coords() {
            *global.get_mut(plan.global_coord(rank, c)) = *local.get(c);
        }
    }
    global
}

/// Compute the clover term for `rank`'s local sites **from the global
/// configuration** — the clover leaves of boundary time-slices reach into
/// neighboring domains, so a purely local computation would be wrong there.
/// (Chroma hands QUDA a precomputed clover field for the same reason.)
pub fn local_clover(
    global: &GaugeConfig,
    part: &TimePartition,
    rank: usize,
    c_sw: f64,
) -> [Vec<CloverSite<f64>>; 2] {
    local_clover_grid(global, &DecompPlan::from_time(part), rank, c_sw)
}

/// [`local_clover`] under a process-grid plan: clover leaves of *any*
/// boundary slice (not just temporal) reach into the neighboring domain,
/// so every parity-site is computed at its global coordinate. Local parity
/// equals global parity because every domain origin is even.
pub fn local_clover_grid(
    global: &GaugeConfig,
    plan: &DecompPlan,
    rank: usize,
    c_sw: f64,
) -> [Vec<CloverSite<f64>>; 2] {
    let sigma = sigma_matrices();
    let local_dims = plan.local_dims();
    let build = |parity: Parity| -> Vec<CloverSite<f64>> {
        (0..local_dims.half_volume())
            .map(|cb| {
                let gc = plan.global_coord(rank, local_dims.cb_coord(parity, cb));
                clover_site(global, &sigma, gc, c_sw)
            })
            .collect()
    };
    [build(Parity::Even), build(Parity::Odd)]
}

/// Local dims helper for callers.
pub fn local_dims(part: &TimePartition) -> LatticeDims {
    part.local_dims()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_lattice::geometry::Coord;

    fn setup() -> (GaugeConfig, TimePartition) {
        let d = LatticeDims::new(4, 4, 2, 8);
        (weak_field(d, 0.15, 3), TimePartition::new(d, 4))
    }

    #[test]
    fn slices_cover_global_config() {
        let (cfg, part) = setup();
        for rank in 0..part.n_ranks {
            let local = slice_config(&cfg, &part, rank);
            for c in local.dims.coords() {
                let gc = Coord::new(c.x, c.y, c.z, part.global_t_of(rank, c.t));
                assert_eq!(local.link(c, 2), cfg.link(gc, 2));
            }
        }
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let (_, part) = setup();
        let global = random_spinor_field(part.global, 7);
        let locals: Vec<_> = (0..part.n_ranks).map(|r| slice_spinor(&global, &part, r)).collect();
        let back = gather_spinor(&locals, &part);
        assert_eq!(back.max_site_dist(&global), 0.0);
    }

    #[test]
    fn local_clover_matches_global_clover() {
        // The sliced clover must agree with the full-lattice computation at
        // every local site — including the boundary slices where a naive
        // local computation would wrap incorrectly.
        let (cfg, part) = setup();
        let global_both = quda_fields::clover_build::clover_both_parities(&cfg, 1.3);
        for rank in [0usize, 3] {
            let local = local_clover(&cfg, &part, rank, 1.3);
            let ld = part.local_dims();
            for p in [Parity::Even, Parity::Odd] {
                for cb in 0..ld.half_volume() {
                    let c = ld.cb_coord(p, cb);
                    let gc = Coord::new(c.x, c.y, c.z, part.global_t_of(rank, c.t));
                    let gcb = part.global.cb_index(gc);
                    // Parities agree because local T extents are even.
                    assert_eq!(gc.parity(), p);
                    let expect = &global_both[p.as_usize()][gcb];
                    let got = &local[p.as_usize()][cb];
                    let mut diff = 0.0f64;
                    for b in 0..2 {
                        for i in 0..6 {
                            diff = diff.max((expect.block[b].diag[i] - got.block[b].diag[i]).abs());
                        }
                        for k in 0..15 {
                            diff = diff.max(
                                (expect.block[b].offdiag[k].re - got.block[b].offdiag[k].re).abs(),
                            );
                        }
                    }
                    assert!(diff < 1e-14, "rank={rank} p={p:?} cb={cb} diff={diff}");
                }
            }
        }
    }

    #[test]
    fn grid_scatter_gather_roundtrip_four_d() {
        let d = LatticeDims::new(4, 4, 4, 8);
        let plan = DecompPlan::new(d, [2, 1, 2, 2]);
        let global = random_spinor_field(d, 17);
        let locals: Vec<_> =
            (0..plan.n_ranks()).map(|r| slice_spinor_grid(&global, &plan, r)).collect();
        let back = gather_spinor_grid(&locals, &plan);
        assert_eq!(back.max_site_dist(&global), 0.0);
        // Each local field really is the rank's sub-block.
        for (r, local) in locals.iter().enumerate() {
            for c in plan.local_dims().coords() {
                assert_eq!(local.get(c), global.get(plan.global_coord(r, c)));
            }
        }
    }

    #[test]
    fn grid_local_clover_matches_global_on_spatial_split() {
        // Clover leaves at X/Z domain boundaries reach into neighboring
        // domains; the grid slicer must still reproduce the full-lattice
        // clover at every local site.
        let d = LatticeDims::new(4, 4, 4, 4);
        let plan = DecompPlan::new(d, [2, 1, 2, 1]);
        let cfg = weak_field(d, 0.15, 29);
        let global_both = quda_fields::clover_build::clover_both_parities(&cfg, 1.3);
        for rank in 0..plan.n_ranks() {
            let local = local_clover_grid(&cfg, &plan, rank, 1.3);
            let ld = plan.local_dims();
            for p in [Parity::Even, Parity::Odd] {
                for cb in 0..ld.half_volume() {
                    let gc = plan.global_coord(rank, ld.cb_coord(p, cb));
                    assert_eq!(gc.parity(), p, "even origins keep parities aligned");
                    let expect = &global_both[p.as_usize()][plan.global().cb_index(gc)];
                    let got = &local[p.as_usize()][cb];
                    let mut diff = 0.0f64;
                    for b in 0..2 {
                        for i in 0..6 {
                            diff = diff.max((expect.block[b].diag[i] - got.block[b].diag[i]).abs());
                        }
                        for k in 0..15 {
                            diff = diff.max(
                                (expect.block[b].offdiag[k].re - got.block[b].offdiag[k].re).abs(),
                            );
                        }
                    }
                    assert!(diff < 1e-14, "rank={rank} p={p:?} cb={cb} diff={diff}");
                }
            }
        }
    }

    #[test]
    fn naive_local_clover_would_be_wrong_at_boundaries() {
        // Sanity check of the *reason* for local_clover: computing the
        // clover from the sliced config (periodic local wrap) differs at
        // boundary time-slices.
        let (cfg, part) = setup();
        let rank = 1;
        let local_cfg = slice_config(&cfg, &part, rank);
        let naive = quda_fields::clover_build::clover_both_parities(&local_cfg, 1.0);
        let correct = local_clover(&cfg, &part, rank, 1.0);
        let ld = part.local_dims();
        let mut boundary_diff = 0.0f64;
        for cb in 0..ld.half_volume() {
            let c = ld.cb_coord(Parity::Even, cb);
            if c.t != 0 && c.t != ld.t - 1 {
                continue;
            }
            for b in 0..2 {
                for i in 0..6 {
                    boundary_diff = boundary_diff.max(
                        (naive[0][cb].block[b].diag[i] - correct[0][cb].block[b].diag[i]).abs(),
                    );
                }
            }
        }
        assert!(boundary_diff > 1e-8, "expected naive slicing to be wrong at the boundary");
    }
}
