//! Scattering global host fields to time-slice domains and gathering them
//! back — the data movement Chroma performs around a parallel QUDA solve.

use quda_fields::clover_build::{clover_site, sigma_matrices};
use quda_fields::host::{GaugeConfig, HostSpinorField};
use quda_lattice::geometry::{Coord, LatticeDims, Parity};
use quda_lattice::partition::TimePartition;
use quda_math::clover::CloverSite;

/// The local gauge configuration of `rank`: its `T/N` time-slices.
pub fn slice_config(global: &GaugeConfig, part: &TimePartition, rank: usize) -> GaugeConfig {
    assert_eq!(global.dims, part.global);
    let local_dims = part.local_dims();
    let mut local = GaugeConfig::unit(local_dims);
    for c in local_dims.coords() {
        let gc = Coord::new(c.x, c.y, c.z, part.global_t_of(rank, c.t));
        for mu in 0..4 {
            *local.link_mut(c, mu) = *global.link(gc, mu);
        }
    }
    local
}

/// The local part of a host spinor field.
pub fn slice_spinor(
    global: &HostSpinorField,
    part: &TimePartition,
    rank: usize,
) -> HostSpinorField {
    assert_eq!(global.dims, part.global);
    let local_dims = part.local_dims();
    let mut local = HostSpinorField::zero(local_dims);
    for c in local_dims.coords() {
        let gc = Coord::new(c.x, c.y, c.z, part.global_t_of(rank, c.t));
        *local.get_mut(c) = *global.get(gc);
    }
    local
}

/// Reassemble a global field from every rank's local field (rank order).
pub fn gather_spinor(locals: &[HostSpinorField], part: &TimePartition) -> HostSpinorField {
    assert_eq!(locals.len(), part.n_ranks);
    let mut global = HostSpinorField::zero(part.global);
    let local_dims = part.local_dims();
    for (rank, local) in locals.iter().enumerate() {
        assert_eq!(local.dims, local_dims);
        for c in local_dims.coords() {
            let gc = Coord::new(c.x, c.y, c.z, part.global_t_of(rank, c.t));
            *global.get_mut(gc) = *local.get(c);
        }
    }
    global
}

/// Compute the clover term for `rank`'s local sites **from the global
/// configuration** — the clover leaves of boundary time-slices reach into
/// neighboring domains, so a purely local computation would be wrong there.
/// (Chroma hands QUDA a precomputed clover field for the same reason.)
pub fn local_clover(
    global: &GaugeConfig,
    part: &TimePartition,
    rank: usize,
    c_sw: f64,
) -> [Vec<CloverSite<f64>>; 2] {
    let sigma = sigma_matrices();
    let local_dims = part.local_dims();
    let build = |parity: Parity| -> Vec<CloverSite<f64>> {
        (0..local_dims.half_volume())
            .map(|cb| {
                let c = local_dims.cb_coord(parity, cb);
                let gc = Coord::new(c.x, c.y, c.z, part.global_t_of(rank, c.t));
                clover_site(global, &sigma, gc, c_sw)
            })
            .collect()
    };
    [build(Parity::Even), build(Parity::Odd)]
}

/// Local dims helper for callers.
pub fn local_dims(part: &TimePartition) -> LatticeDims {
    part.local_dims()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};

    fn setup() -> (GaugeConfig, TimePartition) {
        let d = LatticeDims::new(4, 4, 2, 8);
        (weak_field(d, 0.15, 3), TimePartition::new(d, 4))
    }

    #[test]
    fn slices_cover_global_config() {
        let (cfg, part) = setup();
        for rank in 0..part.n_ranks {
            let local = slice_config(&cfg, &part, rank);
            for c in local.dims.coords() {
                let gc = Coord::new(c.x, c.y, c.z, part.global_t_of(rank, c.t));
                assert_eq!(local.link(c, 2), cfg.link(gc, 2));
            }
        }
    }

    #[test]
    fn scatter_gather_roundtrip() {
        let (_, part) = setup();
        let global = random_spinor_field(part.global, 7);
        let locals: Vec<_> = (0..part.n_ranks).map(|r| slice_spinor(&global, &part, r)).collect();
        let back = gather_spinor(&locals, &part);
        assert_eq!(back.max_site_dist(&global), 0.0);
    }

    #[test]
    fn local_clover_matches_global_clover() {
        // The sliced clover must agree with the full-lattice computation at
        // every local site — including the boundary slices where a naive
        // local computation would wrap incorrectly.
        let (cfg, part) = setup();
        let global_both = quda_fields::clover_build::clover_both_parities(&cfg, 1.3);
        for rank in [0usize, 3] {
            let local = local_clover(&cfg, &part, rank, 1.3);
            let ld = part.local_dims();
            for p in [Parity::Even, Parity::Odd] {
                for cb in 0..ld.half_volume() {
                    let c = ld.cb_coord(p, cb);
                    let gc = Coord::new(c.x, c.y, c.z, part.global_t_of(rank, c.t));
                    let gcb = part.global.cb_index(gc);
                    // Parities agree because local T extents are even.
                    assert_eq!(gc.parity(), p);
                    let expect = &global_both[p.as_usize()][gcb];
                    let got = &local[p.as_usize()][cb];
                    let mut diff = 0.0f64;
                    for b in 0..2 {
                        for i in 0..6 {
                            diff = diff.max((expect.block[b].diag[i] - got.block[b].diag[i]).abs());
                        }
                        for k in 0..15 {
                            diff = diff.max(
                                (expect.block[b].offdiag[k].re - got.block[b].offdiag[k].re).abs(),
                            );
                        }
                    }
                    assert!(diff < 1e-14, "rank={rank} p={p:?} cb={cb} diff={diff}");
                }
            }
        }
    }

    #[test]
    fn naive_local_clover_would_be_wrong_at_boundaries() {
        // Sanity check of the *reason* for local_clover: computing the
        // clover from the sliced config (periodic local wrap) differs at
        // boundary time-slices.
        let (cfg, part) = setup();
        let rank = 1;
        let local_cfg = slice_config(&cfg, &part, rank);
        let naive = quda_fields::clover_build::clover_both_parities(&local_cfg, 1.0);
        let correct = local_clover(&cfg, &part, rank, 1.0);
        let ld = part.local_dims();
        let mut boundary_diff = 0.0f64;
        for cb in 0..ld.half_volume() {
            let c = ld.cb_coord(Parity::Even, cb);
            if c.t != 0 && c.t != ld.t - 1 {
                continue;
            }
            for b in 0..2 {
                for i in 0..6 {
                    boundary_diff = boundary_diff.max(
                        (naive[0][cb].block[b].diag[i] - correct[0][cb].block[b].diag[i]).abs(),
                    );
                }
            }
        }
        assert!(boundary_diff > 1e-8, "expected naive slicing to be wrong at the boundary");
    }
}
