//! Multi-rank solve driver: spawns one thread per "GPU", wires up the
//! communicator world(s), runs the even-odd preconditioned solve (source
//! preparation → Krylov solve on the odd parity → even reconstruction), and
//! gathers the global solution — the full path a Chroma propagator
//! calculation drives through the parallel library.

use crate::rank_op::{CommStrategy, ParallelWilsonCloverOp};
use crate::reshard::{CheckpointStore, GlobalCheckpoint};
use crate::slice::{gather_spinor_grid, slice_spinor_grid};
use quda_comm::{CommConfig, CommError, CommStats, FaultPlan, LockstepConfig};
use quda_dirac::WilsonParams;
use quda_fields::host::{GaugeConfig, HostSpinorField};
use quda_fields::precision::{Double, Half, Precision, Quarter, Single};
use quda_lattice::geometry::Parity;
use quda_lattice::partition::{DecompPlan, TimePartition};
use quda_obs::{Phase, Recorder, Trace, TraceConfig};
use quda_solvers::blas;
use quda_solvers::checkpoint::{CheckpointSink, NoCheckpoint, SolverCheckpoint};
use quda_solvers::operator::LinearOperator;
use quda_solvers::params::{SolveResult, SolverParams};
use std::sync::Arc;
use std::time::Duration;

/// The solver precision modes measured in the paper (Section VII-A).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PrecisionMode {
    /// Uniform double.
    Double,
    /// Uniform single.
    Single,
    /// Uniform half (not a production mode; useful for ablations).
    Half,
    /// Mixed single-half (reliable updates).
    SingleHalf,
    /// Mixed double-half.
    DoubleHalf,
    /// Mixed double-single.
    DoubleSingle,
    /// Mixed double-quarter (8-bit sloppy iterations — the Section V-C3
    /// "(or even 8-bit)" extension).
    DoubleQuarter,
}

impl PrecisionMode {
    /// The paper's name for the mode.
    pub fn name(self) -> &'static str {
        match self {
            PrecisionMode::Double => "double",
            PrecisionMode::Single => "single",
            PrecisionMode::Half => "half",
            PrecisionMode::SingleHalf => "single-half",
            PrecisionMode::DoubleHalf => "double-half",
            PrecisionMode::DoubleSingle => "double-single",
            PrecisionMode::DoubleQuarter => "double-quarter",
        }
    }

    /// Whether this is a mixed-precision mode.
    pub fn is_mixed(self) -> bool {
        matches!(
            self,
            PrecisionMode::SingleHalf
                | PrecisionMode::DoubleHalf
                | PrecisionMode::DoubleSingle
                | PrecisionMode::DoubleQuarter
        )
    }
}

/// Which Krylov solver to run (Section V: "QUDA provides highly optimized
/// CG and BiCGstab linear solvers").
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// BiCGstab — the production solver.
    BiCgStab,
    /// CG on the normal equations (uniform-precision modes only).
    Cgnr,
}

/// Fault-injection and timeout policy for a parallel solve: a deterministic
/// [`FaultPlan`] applied to every communicator in the world plus the
/// timeout/retry configuration (DESIGN.md §7). The default injects nothing
/// and uses the production timeouts.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// Deterministic fault plan, or `None` for a fault-free world.
    pub plan: Option<FaultPlan>,
    /// Timeout and retry policy for every communicator.
    pub comm: CommConfig,
    /// Lockstep-sanitizer policy, applied to every communicator of the
    /// world (`None` = off). The default honours the `QUDA_LOCKSTEP`
    /// environment variable, so a whole test suite can be run under the
    /// sanitizer without touching call sites.
    pub lockstep: Option<LockstepConfig>,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec { plan: None, comm: CommConfig::default(), lockstep: LockstepConfig::from_env() }
    }
}

/// Everything needed to run one parallel solve over a 1-d temporal
/// partition (the paper's decomposition). Convertible to the general
/// process-grid spec with [`ParallelSolveSpec::to_grid`].
#[derive(Copy, Clone, Debug)]
pub struct ParallelSolveSpec {
    /// Temporal partition (global dims + rank count).
    pub part: TimePartition,
    /// Operator parameters.
    pub wilson: WilsonParams,
    /// Precision mode.
    pub mode: PrecisionMode,
    /// Face-exchange strategy.
    pub strategy: CommStrategy,
    /// Krylov method.
    pub solver: SolverKind,
    /// Solver controls.
    pub params: SolverParams,
}

impl ParallelSolveSpec {
    /// The equivalent process-grid spec (a `1×1×1×N` plan). Solving either
    /// spec produces bit-identical results.
    pub fn to_grid(&self) -> GridSolveSpec {
        GridSolveSpec {
            plan: DecompPlan::from_time(&self.part),
            wilson: self.wilson,
            mode: self.mode,
            strategy: self.strategy,
            solver: self.solver,
            params: self.params,
        }
    }
}

/// Everything needed to run one parallel solve over an arbitrary 4-d
/// process grid ([`DecompPlan`]).
#[derive(Copy, Clone, Debug)]
pub struct GridSolveSpec {
    /// Process-grid decomposition (global dims + grid extents).
    pub plan: DecompPlan,
    /// Operator parameters.
    pub wilson: WilsonParams,
    /// Precision mode.
    pub mode: PrecisionMode,
    /// Face-exchange strategy.
    pub strategy: CommStrategy,
    /// Krylov method.
    pub solver: SolverKind,
    /// Solver controls.
    pub params: SolverParams,
}

/// Aggregate communication-health record for a completed parallel solve:
/// the world-wide counter sums plus the per-rank [`CommStats`] they were
/// summed from (a mixed-precision solve merges each rank's high- and
/// low-precision communicators into one record).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CommHealth {
    /// Timeout ticks spent waiting or backing off in `recv`, world-wide.
    pub retries: u64,
    /// Messages recovered from the link-level pristine store.
    pub recovered: u64,
    /// Stale duplicate frames discarded by sequence-number dedup.
    pub duplicates_dropped: u64,
    /// Frames whose checksum or length check failed on arrival.
    pub checksum_failures: u64,
    /// The per-rank records the totals were summed from (index = rank).
    pub per_rank: Vec<CommStats>,
}

impl CommHealth {
    /// Sum a set of per-rank records into a world-wide health summary.
    pub fn from_per_rank(per_rank: Vec<CommStats>) -> CommHealth {
        // Host-side bookkeeping over already-joined worker results, not a
        // lattice reduction: every rank's stats are in hand here.
        // quda-lint: allow(global-reduce)
        let total = per_rank.iter().copied().fold(CommStats::default(), CommStats::merged);
        CommHealth {
            retries: total.retries,
            recovered: total.recovered,
            duplicates_dropped: total.duplicates_dropped,
            checksum_failures: total.checksum_failures,
            per_rank,
        }
    }

    /// `true` when the wire was clean: no recoveries, duplicates, or
    /// checksum failures anywhere in the world. Retries are *not* counted
    /// against cleanliness — a rank blocking for a slow peer ticks the
    /// retry counter without anything being wrong on the wire.
    pub fn is_clean(&self) -> bool {
        self.recovered == 0 && self.duplicates_dropped == 0 && self.checksum_failures == 0
    }
}

/// The full outcome of a traced parallel solve: the solution, the solver
/// statistics, the recorded phase [`Trace`], and the communication-health
/// summary. Produced by [`solve_full_parallel_traced`].
#[derive(Clone, Debug)]
pub struct TracedSolve {
    /// Global solution (both parities).
    pub solution: HostSpinorField,
    /// Rank-identical solver statistics (world-summed `comm_recoveries`).
    pub result: SolveResult,
    /// The recorded per-rank phase trace (empty under [`TraceConfig::Off`]).
    pub trace: Trace,
    /// World-wide communication-health record.
    pub comm: CommHealth,
}

/// Run the full even-odd solve `M x = b` in parallel. Returns the global
/// solution (both parities) and the (rank-identical) solve statistics.
///
/// Fails with the first (in rank order) communication error when a rank
/// dies, times out, or exhausts its retries — the whole world is torn down
/// rather than left hanging.
pub fn solve_full_parallel(
    cfg: &GaugeConfig,
    b: &HostSpinorField,
    spec: &ParallelSolveSpec,
) -> Result<(HostSpinorField, SolveResult), CommError> {
    solve_full_parallel_chaos(cfg, b, spec, &ChaosSpec::default())
}

/// [`solve_full_parallel`] under an explicit fault-injection and timeout
/// policy. The fault plan (if any) is applied to both the high- and
/// low-precision communicator worlds.
pub fn solve_full_parallel_chaos(
    cfg: &GaugeConfig,
    b: &HostSpinorField,
    spec: &ParallelSolveSpec,
    chaos: &ChaosSpec,
) -> Result<(HostSpinorField, SolveResult), CommError> {
    solve_full_parallel_traced(cfg, b, spec, chaos, TraceConfig::Off)
        .map(|ts| (ts.solution, ts.result))
}

/// [`solve_full_parallel_chaos`] with phase tracing: every rank's
/// communicator, ghost exchange, dslash, and solver loop record spans into
/// a world-shared [`Recorder`], returned as [`TracedSolve::trace`]
/// alongside the per-rank communication-health summary.
pub fn solve_full_parallel_traced(
    cfg: &GaugeConfig,
    b: &HostSpinorField,
    spec: &ParallelSolveSpec,
    chaos: &ChaosSpec,
    trace: TraceConfig,
) -> Result<TracedSolve, CommError> {
    solve_full_grid_traced(cfg, b, &spec.to_grid(), chaos, trace)
}

/// Run the full even-odd solve `M x = b` over a 4-d process grid. A
/// `1×1×1×N` plan is bit-identical to [`solve_full_parallel`] on the same
/// rank count.
pub fn solve_full_grid(
    cfg: &GaugeConfig,
    b: &HostSpinorField,
    spec: &GridSolveSpec,
) -> Result<(HostSpinorField, SolveResult), CommError> {
    solve_full_grid_chaos(cfg, b, spec, &ChaosSpec::default())
}

/// [`solve_full_grid`] under an explicit fault-injection and timeout
/// policy.
pub fn solve_full_grid_chaos(
    cfg: &GaugeConfig,
    b: &HostSpinorField,
    spec: &GridSolveSpec,
    chaos: &ChaosSpec,
) -> Result<(HostSpinorField, SolveResult), CommError> {
    solve_full_grid_traced(cfg, b, spec, chaos, TraceConfig::Off).map(|ts| (ts.solution, ts.result))
}

/// [`solve_full_grid_chaos`] with phase tracing (see
/// [`solve_full_parallel_traced`]). Per-dimension wire and exterior phases
/// (`wire_x` ... `exterior_z`) appear in the trace for multi-dimensional
/// plans.
pub fn solve_full_grid_traced(
    cfg: &GaugeConfig,
    b: &HostSpinorField,
    spec: &GridSolveSpec,
    chaos: &ChaosSpec,
    trace: TraceConfig,
) -> Result<TracedSolve, CommError> {
    match spec.mode {
        PrecisionMode::Double => run_world::<Double, Double>(cfg, b, spec, false, chaos, trace),
        PrecisionMode::Single => run_world::<Single, Single>(cfg, b, spec, false, chaos, trace),
        PrecisionMode::Half => run_world::<Half, Half>(cfg, b, spec, false, chaos, trace),
        PrecisionMode::SingleHalf => run_world::<Single, Half>(cfg, b, spec, true, chaos, trace),
        PrecisionMode::DoubleHalf => run_world::<Double, Half>(cfg, b, spec, true, chaos, trace),
        PrecisionMode::DoubleSingle => {
            run_world::<Double, Single>(cfg, b, spec, true, chaos, trace)
        }
        PrecisionMode::DoubleQuarter => {
            run_world::<Double, Quarter>(cfg, b, spec, true, chaos, trace)
        }
    }
}

/// How far the elastic driver is allowed to go to keep a solve alive
/// (DESIGN.md §12).
#[derive(Clone, Debug, Default)]
pub struct ElasticPolicy {
    /// Rank deaths the solve may survive before giving up and surfacing
    /// the error. `0` is *bit-identical* to the fail-fast driver: no
    /// checkpoints are taken and the first death aborts the world.
    pub max_rank_deaths: usize,
    /// Fault-injection and timeout policy applied to every world
    /// incarnation. Kill/panic schedules fire in the incarnation whose
    /// generation they are scoped to (see [`FaultPlan::with_generation`]).
    pub chaos: ChaosSpec,
}

/// One survived rank death.
#[derive(Clone, Debug)]
pub struct RecoveryEvent {
    /// The rank whose death aborted the previous incarnation.
    pub dead_rank: usize,
    /// Human-readable root cause (`RankDead` or the panic message).
    pub cause: String,
    /// Checkpoint epoch the replacement world resumed from, or `None` if
    /// no consistent checkpoint could be assembled and the solve restarted
    /// from scratch.
    pub resumed_epoch: Option<u64>,
    /// Wall-clock time to assemble and validate the resume snapshot.
    pub latency: Duration,
}

/// Recovery telemetry of an elastic solve.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Every survived death, in order.
    pub events: Vec<RecoveryEvent>,
    /// Checkpoints deposited across all ranks and incarnations.
    pub checkpoints_taken: u64,
    /// Serialized checkpoint bytes written across all deposits.
    pub checkpoint_bytes: u64,
}

impl RecoveryReport {
    /// Number of rank deaths the solve survived.
    pub fn deaths_survived(&self) -> usize {
        self.events.len()
    }
}

/// The outcome of an elastic solve: the traced solve plus its recovery
/// telemetry.
#[derive(Clone, Debug)]
pub struct ElasticSolve {
    /// The completed solve (solution, stats, trace, comm health).
    pub solve: TracedSolve,
    /// What it took to get there.
    pub recovery: RecoveryReport,
}

/// [`solve_full_grid_traced`] that *survives rank death*: every rank
/// deposits checkpoints into a world-shared store at reliable-update
/// boundaries, and when a rank dies (or its thread panics) mid-solve the
/// supervisor tears the world down, assembles the newest globally
/// consistent checkpoint, re-shards it onto a fresh world, and resumes
/// mid-Krylov — up to [`ElasticPolicy::max_rank_deaths`] times.
///
/// With a budget of `0` the checkpoint sink is disabled and the attempt
/// runs the exact classic rank bodies — bit-identical to
/// [`solve_full_grid_traced`], failing fast on the first death.
pub fn solve_full_grid_elastic(
    cfg: &GaugeConfig,
    b: &HostSpinorField,
    spec: &GridSolveSpec,
    policy: &ElasticPolicy,
    trace: TraceConfig,
) -> Result<ElasticSolve, CommError> {
    match spec.mode {
        PrecisionMode::Double => {
            run_world_elastic::<Double, Double>(cfg, b, spec, false, policy, trace)
        }
        PrecisionMode::Single => {
            run_world_elastic::<Single, Single>(cfg, b, spec, false, policy, trace)
        }
        PrecisionMode::Half => run_world_elastic::<Half, Half>(cfg, b, spec, false, policy, trace),
        PrecisionMode::SingleHalf => {
            run_world_elastic::<Single, Half>(cfg, b, spec, true, policy, trace)
        }
        PrecisionMode::DoubleHalf => {
            run_world_elastic::<Double, Half>(cfg, b, spec, true, policy, trace)
        }
        PrecisionMode::DoubleSingle => {
            run_world_elastic::<Double, Single>(cfg, b, spec, true, policy, trace)
        }
        PrecisionMode::DoubleQuarter => {
            run_world_elastic::<Double, Quarter>(cfg, b, spec, true, policy, trace)
        }
    }
}

/// [`solve_full_grid_elastic`] over a 1-d temporal partition.
pub fn solve_full_parallel_elastic(
    cfg: &GaugeConfig,
    b: &HostSpinorField,
    spec: &ParallelSolveSpec,
    policy: &ElasticPolicy,
    trace: TraceConfig,
) -> Result<ElasticSolve, CommError> {
    solve_full_grid_elastic(cfg, b, &spec.to_grid(), policy, trace)
}

fn run_world_elastic<H: Precision, L: Precision>(
    cfg: &GaugeConfig,
    b: &HostSpinorField,
    spec: &GridSolveSpec,
    mixed: bool,
    policy: &ElasticPolicy,
    trace: TraceConfig,
) -> Result<ElasticSolve, CommError> {
    let plan = spec.plan;
    // One recorder across every incarnation: recovery and checkpoint spans
    // of all generations land in the same per-rank buffers.
    let recorder = Recorder::new(plan.n_ranks(), trace);
    let store = Arc::new(CheckpointStore::new(plan.n_ranks()));
    let mut events: Vec<RecoveryEvent> = Vec::new();
    let mut resume: Option<GlobalCheckpoint> = None;
    let mut generation: u32 = 0;
    loop {
        // Kills are generation-scoped: a schedule consumed by the previous
        // incarnation must not re-fire in the replacement world.
        let chaos = ChaosSpec {
            // Cold elastic-recovery path: one clone per world incarnation
            // (i.e. per rank death), never per solver iteration, and the
            // schedule must be re-stamped with the new generation.
            // quda-lint: allow(hot-alloc)
            plan: policy.chaos.plan.clone().map(|p| p.with_generation(generation)),
            comm: policy.chaos.comm,
            lockstep: policy.chaos.lockstep,
        };
        // A zero death budget disables the sink entirely: no deposits, no
        // resume state — `run_attempt` then runs the exact classic rank
        // bodies, keeping budget 0 bit-identical to the fail-fast path.
        let elastic =
            if policy.max_rank_deaths == 0 { None } else { Some((&store, resume.as_ref())) };
        let attempt = run_attempt::<H, L>(cfg, b, spec, mixed, &chaos, &recorder, elastic);
        match attempt {
            Ok((locals, stats, per_rank)) => {
                let st = store.stats();
                return Ok(ElasticSolve {
                    solve: TracedSolve {
                        solution: gather_spinor_grid(&locals, &plan),
                        result: stats,
                        trace: recorder.finish(),
                        comm: CommHealth::from_per_rank(per_rank),
                    },
                    recovery: RecoveryReport {
                        events,
                        checkpoints_taken: st.checkpoints_taken,
                        checkpoint_bytes: st.bytes_written,
                    },
                });
            }
            Err(e) => {
                let dead_rank = match &e {
                    CommError::RankDead { rank } => *rank,
                    CommError::RankPanicked { rank, .. } => *rank,
                    // Anything that is not a rank death (timeout storm,
                    // lockstep divergence, ...) is not survivable.
                    _ => return Err(e),
                };
                if events.len() >= policy.max_rank_deaths {
                    return Err(e);
                }
                // Roll every rank back to the newest globally consistent
                // checkpoint. If none can be assembled (death before the
                // first deposit landed everywhere, or a corrupt store) the
                // replacement world restarts the solve from scratch.
                let t0 = quda_obs::clock::monotonic();
                resume = store.take_global::<H>(&plan).ok();
                let latency = quda_obs::clock::monotonic().saturating_sub(t0);
                generation += 1;
                events.push(RecoveryEvent {
                    dead_rank,
                    // Cold: formatted once per rank death for the recovery
                    // report, bounded by `max_rank_deaths`.
                    // quda-lint: allow(hot-alloc)
                    cause: e.to_string(),
                    resumed_epoch: resume.as_ref().map(|g| g.epoch),
                    latency,
                });
            }
        }
    }
}

fn run_world<H: Precision, L: Precision>(
    cfg: &GaugeConfig,
    b: &HostSpinorField,
    spec: &GridSolveSpec,
    mixed: bool,
    chaos: &ChaosSpec,
    trace: TraceConfig,
) -> Result<TracedSolve, CommError> {
    let plan = spec.plan;
    let recorder = Recorder::new(plan.n_ranks(), trace);
    let (locals, stats, per_rank) =
        run_attempt::<H, L>(cfg, b, spec, mixed, chaos, &recorder, None)?;
    Ok(TracedSolve {
        solution: gather_spinor_grid(&locals, &plan),
        result: stats,
        trace: recorder.finish(),
        comm: CommHealth::from_per_rank(per_rank),
    })
}

/// Recover a readable message from a rank thread's panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Spawn one world incarnation (thread per rank), run the solve on every
/// rank, and join. `elastic` wires each rank to the shared
/// [`CheckpointStore`] and, after a recovery, hands it its re-sharded slice
/// of the resume snapshot; `None` is the classic fail-fast path with
/// checkpointing disabled (bit-identical to the pre-elastic driver).
fn run_attempt<H: Precision, L: Precision>(
    cfg: &GaugeConfig,
    b: &HostSpinorField,
    spec: &GridSolveSpec,
    mixed: bool,
    chaos: &ChaosSpec,
    recorder: &Recorder,
    elastic: Option<(&Arc<CheckpointStore>, Option<&GlobalCheckpoint>)>,
) -> Result<(Vec<HostSpinorField>, SolveResult, Vec<CommStats>), CommError> {
    let plan = spec.plan;
    let world_hi = quda_comm::comm_world_with(plan.n_ranks(), chaos.comm, chaos.plan.clone());
    let world_lo = quda_comm::comm_world_with(plan.n_ranks(), chaos.comm, chaos.plan.clone());
    let handles: Vec<_> = world_hi
        .into_iter()
        .zip(world_lo)
        .enumerate()
        .map(|(rank, (mut comm_hi, mut comm_lo))| {
            let cfg = cfg.clone();
            let b = b.clone();
            let spec = *spec;
            // Both precision worlds of a rank feed the same per-rank buffer.
            let tracer = recorder.tracer(rank);
            comm_hi.set_tracer(tracer.clone());
            comm_lo.set_tracer(tracer);
            if let Some(ls) = chaos.lockstep {
                comm_hi.enable_lockstep(ls);
                comm_lo.enable_lockstep(ls);
            }
            let sink = elastic.map(|(store, resume)| RankSink {
                store: Arc::clone(store),
                rank,
                resume: resume.map(|g| g.reshard::<H>(&plan, rank)),
            });
            std::thread::spawn(move || {
                run_rank::<H, L>(&cfg, &b, &spec, rank, comm_hi, comm_lo, mixed, sink)
            })
        })
        .collect();
    // Handles are in rank order. A panicked rank thread (its communicator
    // is marked dead by `Drop`, so peers unblock) is reported as
    // `RankPanicked` carrying the panic message — distinct from a rank the
    // fault plan killed, which reports its own `RankDead`.
    let mut results: Vec<Result<_, CommError>> = handles
        .into_iter()
        .enumerate()
        .map(|(rank, h)| match h.join() {
            Ok(r) => r,
            Err(payload) => Err(CommError::RankPanicked { rank, message: panic_message(payload) }),
        })
        .collect();
    // Prefer the root cause over cascade effects: a rank whose own thread
    // panicked, or that reports its *own* death (fault-killed), is the
    // origin; every other rank merely observed a neighbour going silent
    // afterwards. Taking the error out by index moves it — no clone in the
    // scan, and rank order of the surviving results is irrelevant past here
    // because a panic aborts the attempt.
    if let Some(i) = results.iter().position(|r| matches!(r, Err(CommError::RankPanicked { .. }))) {
        results.swap_remove(i)?;
    }
    for (rank, r) in results.iter().enumerate() {
        if let Err(CommError::RankDead { rank: dead }) = r {
            if *dead == rank {
                return Err(CommError::RankDead { rank: *dead });
            }
        }
    }
    let mut locals = Vec::with_capacity(results.len());
    let mut stats: Option<SolveResult> = None;
    let mut comm_recoveries = 0;
    let mut per_rank = Vec::with_capacity(results.len());
    for r in results {
        let (x, res, comm) = r?;
        comm_recoveries += res.comm_recoveries;
        if stats.is_none() {
            stats = Some(res);
        }
        locals.push(x);
        per_rank.push(comm);
    }
    // `comm_world_with` asserts `n_ranks >= 1`, so `stats` is always set;
    // the default only keeps this path panic-free.
    let mut stats = stats.unwrap_or_default();
    stats.comm_recoveries = comm_recoveries;
    Ok((locals, stats, per_rank))
}

/// One rank's checkpoint plumbing: snapshots go to the world-shared store,
/// and the resume slice (installed by the supervisor after a recovery) is
/// handed to the solver exactly once.
struct RankSink {
    store: Arc<CheckpointStore>,
    rank: usize,
    resume: Option<SolverCheckpoint>,
}

impl CheckpointSink for RankSink {
    fn save(&mut self, ckpt: SolverCheckpoint) {
        self.store.deposit(self.rank, ckpt.counters.epoch, ckpt.to_bytes());
    }

    fn resume(&mut self) -> Option<SolverCheckpoint> {
        self.resume.take()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_rank<H: Precision, L: Precision>(
    cfg: &GaugeConfig,
    b: &HostSpinorField,
    spec: &GridSolveSpec,
    rank: usize,
    comm_hi: quda_comm::Communicator,
    comm_lo: quda_comm::Communicator,
    mixed: bool,
    sink: Option<RankSink>,
) -> Result<(HostSpinorField, SolveResult, CommStats), CommError> {
    // The classic path hands the solver the disabled sink, which makes the
    // checkpoint machinery zero-cost and the numerics bit-identical.
    let mut elastic_sink;
    let mut classic_sink;
    let sink: &mut dyn CheckpointSink = match sink {
        Some(s) => {
            elastic_sink = s;
            &mut elastic_sink
        }
        None => {
            classic_sink = NoCheckpoint;
            &mut classic_sink
        }
    };
    let plan = spec.plan;
    let mut op_hi = ParallelWilsonCloverOp::<H>::new_grid(
        cfg,
        plan,
        rank,
        comm_hi,
        spec.wilson,
        spec.strategy,
    )?;
    let local_b = slice_spinor_grid(b, &plan, rank);

    // Upload both parities of the local source.
    let mut b_even = op_hi.alloc();
    b_even.upload(&local_b, Parity::Even);
    let mut b_odd = op_hi.alloc();
    b_odd.upload(&local_b, Parity::Odd);

    // b̂_o = b_o + ½ D_oe T_ee⁻¹ b_e.
    let mut bhat = op_hi.alloc();
    op_hi.prepare_source_par(&mut bhat, &b_even, &b_odd)?;

    // Solve M̂ x_o = b̂_o.
    let mut x_odd = op_hi.alloc();
    blas::zero(&mut x_odd);
    let mut lo_stats = CommStats::default();
    let mut result = if mixed {
        assert_eq!(
            spec.solver,
            SolverKind::BiCgStab,
            "mixed-precision modes use the reliably updated BiCGstab solver"
        );
        let mut op_lo = ParallelWilsonCloverOp::<L>::new_grid(
            cfg,
            plan,
            rank,
            comm_lo,
            spec.wilson,
            spec.strategy,
        )?;
        let res = quda_solvers::mixed::bicgstab_reliable_ckpt(
            &mut op_hi,
            &mut op_lo,
            &mut x_odd,
            &bhat,
            &spec.params,
            &mut *sink,
        );
        if let Some(e) = op_lo.take_comm_fault() {
            return Err(e);
        }
        lo_stats = op_lo.comm_stats();
        res
    } else {
        match spec.solver {
            SolverKind::BiCgStab => quda_solvers::bicgstab::bicgstab_ckpt(
                &mut op_hi,
                &mut x_odd,
                &bhat,
                &spec.params,
                &mut *sink,
            ),
            SolverKind::Cgnr => {
                quda_solvers::cg::cgnr_ckpt(&mut op_hi, &mut x_odd, &bhat, &spec.params, &mut *sink)
            }
        }
    };
    // A solver abort caused by a communication failure is surfaced as the
    // original typed error, not as a numeric-corruption abort.
    if let Some(e) = op_hi.take_comm_fault() {
        return Err(e);
    }

    // x_e = T_ee⁻¹ (b_e + ½ D_eo x_o).
    let mut x_even = op_hi.alloc();
    op_hi.reconstruct_even_par(&mut x_even, &b_even, &mut x_odd)?;
    let rank_stats = op_hi.comm_stats().merged(lo_stats);
    result.comm_recoveries = rank_stats.recovered;

    let mut x_host = HostSpinorField::zero(plan.local_dims());
    x_even.download(&mut x_host, Parity::Even);
    x_odd.download(&mut x_host, Parity::Odd);
    Ok((x_host, result, rank_stats))
}

/// The full outcome of a batched multi-RHS parallel solve: per-RHS global
/// solutions and solver statistics, plus the shared phase trace and
/// communication-health record of the batch.
#[derive(Clone, Debug)]
pub struct MultiSolve {
    /// Global solutions (both parities), in RHS order.
    pub solutions: Vec<HostSpinorField>,
    /// Per-RHS solver statistics. `comm_recoveries` carries the batch's
    /// world-wide total on every entry — wire recoveries belong to the
    /// shared exchange, not to one RHS.
    pub results: Vec<SolveResult>,
    /// The recorded per-rank phase trace (empty under [`TraceConfig::Off`]).
    pub trace: Trace,
    /// World-wide communication-health record.
    pub comm: CommHealth,
}

/// Run a batched multi-RHS even-odd solve over a 1-d temporal partition.
///
/// Every system shares the gauge field, operator, and solver controls; the
/// Krylov sweeps are fused through the blocked solvers so the gauge links
/// are read once per sweep — and one face message per direction is sent —
/// for the whole block. Each returned solution and iteration count is
/// **bit-identical** to what [`solve_full_parallel`] produces for that
/// source alone (the batched-equivalence suite enforces this).
pub fn solve_full_parallel_multi(
    cfg: &GaugeConfig,
    bs: &[HostSpinorField],
    spec: &ParallelSolveSpec,
    chaos: &ChaosSpec,
    trace: TraceConfig,
) -> Result<MultiSolve, CommError> {
    solve_full_grid_multi(cfg, bs, &spec.to_grid(), chaos, trace)
}

/// [`solve_full_parallel_multi`] over an arbitrary 4-d process grid.
pub fn solve_full_grid_multi(
    cfg: &GaugeConfig,
    bs: &[HostSpinorField],
    spec: &GridSolveSpec,
    chaos: &ChaosSpec,
    trace: TraceConfig,
) -> Result<MultiSolve, CommError> {
    assert!(
        bs.len() <= quda_dirac::MAX_RHS_BATCH,
        "batch of {} right-hand sides exceeds MAX_RHS_BATCH = {}",
        bs.len(),
        quda_dirac::MAX_RHS_BATCH
    );
    match spec.mode {
        PrecisionMode::Double => {
            run_world_multi::<Double, Double>(cfg, bs, spec, false, chaos, trace)
        }
        PrecisionMode::Single => {
            run_world_multi::<Single, Single>(cfg, bs, spec, false, chaos, trace)
        }
        PrecisionMode::Half => run_world_multi::<Half, Half>(cfg, bs, spec, false, chaos, trace),
        PrecisionMode::SingleHalf => {
            run_world_multi::<Single, Half>(cfg, bs, spec, true, chaos, trace)
        }
        PrecisionMode::DoubleHalf => {
            run_world_multi::<Double, Half>(cfg, bs, spec, true, chaos, trace)
        }
        PrecisionMode::DoubleSingle => {
            run_world_multi::<Double, Single>(cfg, bs, spec, true, chaos, trace)
        }
        PrecisionMode::DoubleQuarter => {
            run_world_multi::<Double, Quarter>(cfg, bs, spec, true, chaos, trace)
        }
    }
}

fn run_world_multi<H: Precision, L: Precision>(
    cfg: &GaugeConfig,
    bs: &[HostSpinorField],
    spec: &GridSolveSpec,
    mixed: bool,
    chaos: &ChaosSpec,
    trace: TraceConfig,
) -> Result<MultiSolve, CommError> {
    let plan = spec.plan;
    let recorder = Recorder::new(plan.n_ranks(), trace);
    let world_hi = quda_comm::comm_world_with(plan.n_ranks(), chaos.comm, chaos.plan.clone());
    let world_lo = quda_comm::comm_world_with(plan.n_ranks(), chaos.comm, chaos.plan.clone());
    let handles: Vec<_> = world_hi
        .into_iter()
        .zip(world_lo)
        .enumerate()
        .map(|(rank, (mut comm_hi, mut comm_lo))| {
            let cfg = cfg.clone();
            let bs = bs.to_vec();
            let spec = *spec;
            let tracer = recorder.tracer(rank);
            comm_hi.set_tracer(tracer.clone());
            comm_lo.set_tracer(tracer);
            if let Some(ls) = chaos.lockstep {
                comm_hi.enable_lockstep(ls);
                comm_lo.enable_lockstep(ls);
            }
            std::thread::spawn(move || {
                run_rank_multi::<H, L>(&cfg, &bs, &spec, rank, comm_hi, comm_lo, mixed)
            })
        })
        .collect();
    // Same root-cause attribution as the single-RHS attempt: panics first,
    // then a rank reporting its own death, then cascade errors.
    let mut rank_results: Vec<Result<_, CommError>> = handles
        .into_iter()
        .enumerate()
        .map(|(rank, h)| match h.join() {
            Ok(r) => r,
            Err(payload) => Err(CommError::RankPanicked { rank, message: panic_message(payload) }),
        })
        .collect();
    if let Some(i) =
        rank_results.iter().position(|r| matches!(r, Err(CommError::RankPanicked { .. })))
    {
        rank_results.swap_remove(i)?;
    }
    for (rank, r) in rank_results.iter().enumerate() {
        if let Err(CommError::RankDead { rank: dead }) = r {
            if *dead == rank {
                return Err(CommError::RankDead { rank: *dead });
            }
        }
    }
    let n = bs.len();
    let mut by_rhs: Vec<Vec<HostSpinorField>> =
        (0..n).map(|_| Vec::with_capacity(plan.n_ranks())).collect();
    let mut results: Option<Vec<SolveResult>> = None;
    let mut comm_recoveries = 0;
    let mut per_rank = Vec::with_capacity(rank_results.len());
    for r in rank_results {
        let (fields, res, comm) = r?;
        comm_recoveries += comm.recovered;
        if results.is_none() {
            results = Some(res);
        }
        for (k, f) in fields.into_iter().enumerate() {
            by_rhs[k].push(f);
        }
        per_rank.push(comm);
    }
    let mut results = results.unwrap_or_default();
    for res in &mut results {
        res.comm_recoveries = comm_recoveries;
    }
    let mut solutions = Vec::with_capacity(n);
    for locals in &by_rhs {
        solutions.push(gather_spinor_grid(locals, &plan));
    }
    Ok(MultiSolve {
        solutions,
        results,
        trace: recorder.finish(),
        comm: CommHealth::from_per_rank(per_rank),
    })
}

fn run_rank_multi<H: Precision, L: Precision>(
    cfg: &GaugeConfig,
    bs: &[HostSpinorField],
    spec: &GridSolveSpec,
    rank: usize,
    comm_hi: quda_comm::Communicator,
    comm_lo: quda_comm::Communicator,
    mixed: bool,
) -> Result<(Vec<HostSpinorField>, Vec<SolveResult>, CommStats), CommError> {
    let plan = spec.plan;
    let mut op_hi = ParallelWilsonCloverOp::<H>::new_grid(
        cfg,
        plan,
        rank,
        comm_hi,
        spec.wilson,
        spec.strategy,
    )?;
    let n = bs.len();

    // Per-RHS even-odd preparation: upload both parities and form
    // b̂_o = b_o + ½ D_oe T_ee⁻¹ b_e for every source.
    let mut b_evens = Vec::with_capacity(n);
    let mut bhats = Vec::with_capacity(n);
    let mut x_odds = Vec::with_capacity(n);
    for b in bs {
        let local_b = slice_spinor_grid(b, &plan, rank);
        let mut b_even = op_hi.alloc();
        b_even.upload(&local_b, Parity::Even);
        let mut b_odd = op_hi.alloc();
        b_odd.upload(&local_b, Parity::Odd);
        let mut bhat = op_hi.alloc();
        op_hi.prepare_source_par(&mut bhat, &b_even, &b_odd)?;
        let mut x_odd = op_hi.alloc();
        blas::zero(&mut x_odd);
        b_evens.push(b_even);
        bhats.push(bhat);
        x_odds.push(x_odd);
    }

    // One blocked Krylov solve for the whole batch, under a `Batch` span so
    // traces show the fused region.
    let tracer = op_hi.tracer();
    let mut lo_stats = CommStats::default();
    let results = {
        let _batch = tracer.span(Phase::Batch);
        if mixed {
            assert_eq!(
                spec.solver,
                SolverKind::BiCgStab,
                "mixed-precision modes use the reliably updated BiCGstab solver"
            );
            let mut op_lo = ParallelWilsonCloverOp::<L>::new_grid(
                cfg,
                plan,
                rank,
                comm_lo,
                spec.wilson,
                spec.strategy,
            )?;
            let res = quda_solvers::multi::bicgstab_reliable_multi(
                &mut op_hi,
                &mut op_lo,
                &mut x_odds,
                &bhats,
                &spec.params,
            );
            if let Some(e) = op_lo.take_comm_fault() {
                return Err(e);
            }
            lo_stats = op_lo.comm_stats();
            res
        } else {
            match spec.solver {
                SolverKind::BiCgStab => quda_solvers::multi::bicgstab_multi(
                    &mut op_hi,
                    &mut x_odds,
                    &bhats,
                    &spec.params,
                ),
                SolverKind::Cgnr => {
                    quda_solvers::multi::cgnr_multi(&mut op_hi, &mut x_odds, &bhats, &spec.params)
                }
            }
        }
    };
    if let Some(e) = op_hi.take_comm_fault() {
        return Err(e);
    }

    // Per-RHS even reconstruction x_e = T_ee⁻¹ (b_e + ½ D_eo x_o).
    let mut x_hosts = Vec::with_capacity(n);
    for k in 0..n {
        let mut x_even = op_hi.alloc();
        op_hi.reconstruct_even_par(&mut x_even, &b_evens[k], &mut x_odds[k])?;
        let mut x_host = HostSpinorField::zero(plan.local_dims());
        x_even.download(&mut x_host, Parity::Even);
        x_odds[k].download(&mut x_host, Parity::Odd);
        x_hosts.push(x_host);
    }
    let rank_stats = op_hi.comm_stats().merged(lo_stats);
    Ok((x_hosts, results, rank_stats))
}

/// Verify a solution of the *full* system on the host:
/// returns `‖b − M x‖ / ‖b‖` computed with the dense reference operator.
pub fn verify_full_solution(
    cfg: &GaugeConfig,
    wilson: &WilsonParams,
    x: &HostSpinorField,
    b: &HostSpinorField,
) -> f64 {
    use quda_fields::clover_build::clover_both_parities;
    use quda_math::clover::CloverSite;
    let d = cfg.dims;
    let both = clover_both_parities(cfg, wilson.c_sw);
    let mut by_lex = vec![CloverSite::identity(); d.volume()];
    for p in [Parity::Even, Parity::Odd] {
        for cb in 0..d.half_volume() {
            by_lex[d.lex_index(d.cb_coord(p, cb))] = both[p.as_usize()][cb];
        }
    }
    let mx = quda_dirac::reference::apply_wilson_clover_host(cfg, &by_lex, wilson, x);
    // Host-side check over the *full* lexicographic lattice — not a
    // rank-local partial, so there is no global reduce to route through.
    // quda-lint: allow(global-reduce)
    let mut r2 = 0.0;
    for i in 0..d.volume() {
        r2 += (b.data[i] - mx.data[i]).norm_sqr();
    }
    (r2 / b.norm_sqr()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_lattice::geometry::LatticeDims;

    fn spec(
        ranks: usize,
        mode: PrecisionMode,
        strategy: CommStrategy,
        tol: f64,
    ) -> ParallelSolveSpec {
        let d = LatticeDims::new(4, 4, 2, 8);
        ParallelSolveSpec {
            part: TimePartition::new(d, ranks),
            wilson: WilsonParams { mass: 0.3, c_sw: 1.0 },
            mode,
            strategy,
            solver: SolverKind::BiCgStab,
            params: SolverParams { tol, max_iter: 2000, delta: 1e-1 },
        }
    }

    fn run(spec: &ParallelSolveSpec, seed: u64) -> (f64, SolveResult) {
        let cfg = weak_field(spec.part.global, 0.15, seed);
        let b = random_spinor_field(spec.part.global, seed + 1);
        let (x, res) = solve_full_parallel(&cfg, &b, spec).expect("solve");
        let rel = verify_full_solution(&cfg, &spec.wilson, &x, &b);
        (rel, res)
    }

    #[test]
    fn two_rank_double_solve_verifies_against_reference() {
        let (rel, res) = run(&spec(2, PrecisionMode::Double, CommStrategy::NoOverlap, 1e-10), 3);
        assert!(res.converged);
        assert!(rel < 1e-9, "full-system residual {rel}");
    }

    #[test]
    fn overlap_strategy_gives_same_answer() {
        let s1 = spec(2, PrecisionMode::Double, CommStrategy::NoOverlap, 1e-10);
        let s2 = spec(2, PrecisionMode::Double, CommStrategy::Overlap, 1e-10);
        let cfg = weak_field(s1.part.global, 0.15, 9);
        let b = random_spinor_field(s1.part.global, 10);
        let (x1, r1) = solve_full_parallel(&cfg, &b, &s1).expect("solve");
        let (x2, r2) = solve_full_parallel(&cfg, &b, &s2).expect("solve");
        // Identical numerics: same iteration count, bit-identical solutions
        // (deterministic reductions make this exact).
        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(x1.max_site_dist(&x2), 0.0);
    }

    #[test]
    fn four_rank_matches_one_rank() {
        let s1 = spec(1, PrecisionMode::Double, CommStrategy::NoOverlap, 1e-10);
        let s4 = spec(4, PrecisionMode::Double, CommStrategy::Overlap, 1e-10);
        let cfg = weak_field(s1.part.global, 0.15, 21);
        let b = random_spinor_field(s1.part.global, 22);
        let (x1, r1) = solve_full_parallel(&cfg, &b, &s1).expect("solve");
        let (x4, r4) = solve_full_parallel(&cfg, &b, &s4).expect("solve");
        assert!(r1.converged && r4.converged);
        let dist = x1.max_site_dist(&x4);
        assert!(dist < 1e-10, "1-rank vs 4-rank distance {dist}");
    }

    #[test]
    fn mixed_single_half_parallel_solve() {
        let (rel, res) = run(&spec(2, PrecisionMode::SingleHalf, CommStrategy::Overlap, 2e-6), 31);
        assert!(res.converged, "residual {rel}");
        assert!(rel < 1e-5, "full-system residual {rel}");
        assert!(res.reliable_updates > 0);
    }

    #[test]
    fn mixed_double_half_parallel_solve() {
        let (rel, res) =
            run(&spec(2, PrecisionMode::DoubleHalf, CommStrategy::NoOverlap, 1e-10), 41);
        assert!(res.converged, "residual {rel}");
        assert!(rel < 1e-9, "full-system residual {rel}");
    }

    #[test]
    fn batched_parallel_solve_bit_identical_to_sequential() {
        for mode in [PrecisionMode::Double, PrecisionMode::SingleHalf] {
            let tol = if mode == PrecisionMode::Double { 1e-10 } else { 2e-6 };
            let s = spec(2, mode, CommStrategy::NoOverlap, tol);
            let cfg = weak_field(s.part.global, 0.15, 51);
            let bs: Vec<HostSpinorField> =
                (0..3).map(|k| random_spinor_field(s.part.global, 60 + k)).collect();
            let multi =
                solve_full_parallel_multi(&cfg, &bs, &s, &ChaosSpec::default(), TraceConfig::Off)
                    .expect("batched solve");
            assert_eq!(multi.solutions.len(), 3);
            assert_eq!(multi.results.len(), 3);
            for (k, b) in bs.iter().enumerate() {
                let (x_solo, r_solo) = solve_full_parallel(&cfg, b, &s).expect("solo solve");
                assert!(multi.results[k].converged, "mode {mode:?} rhs {k} did not converge");
                assert_eq!(
                    multi.results[k].iterations, r_solo.iterations,
                    "mode {mode:?} rhs {k} iteration count drifted"
                );
                assert_eq!(
                    multi.solutions[k].max_site_dist(&x_solo),
                    0.0,
                    "mode {mode:?} rhs {k} solution not bit-identical"
                );
            }
        }
    }

    #[test]
    fn batched_solve_records_batch_phase_span() {
        let s = spec(2, PrecisionMode::Double, CommStrategy::NoOverlap, 1e-10);
        let cfg = weak_field(s.part.global, 0.15, 71);
        let bs: Vec<HostSpinorField> =
            (0..2).map(|k| random_spinor_field(s.part.global, 80 + k)).collect();
        let multi =
            solve_full_parallel_multi(&cfg, &bs, &s, &ChaosSpec::default(), TraceConfig::Summary)
                .expect("batched solve");
        let breakdown = multi.trace.breakdown();
        let batch = breakdown.get(Phase::Batch).expect("no Batch span recorded");
        assert!(batch.count > 0, "no Batch span recorded");
    }

    #[test]
    fn killed_rank_aborts_world_with_rank_dead() {
        // A 4-rank world where rank 2 goes dead mid-exchange must terminate
        // with `RankDead` within the timeout — never hang (ISSUE acceptance).
        let s = spec(4, PrecisionMode::Double, CommStrategy::NoOverlap, 1e-10);
        let cfg = weak_field(s.part.global, 0.15, 5);
        let b = random_spinor_field(s.part.global, 6);
        let chaos = ChaosSpec {
            plan: Some(quda_comm::FaultPlan::new(77).kill_rank(2, 25)),
            comm: CommConfig {
                timeout: std::time::Duration::from_secs(2),
                ..CommConfig::default()
            },
            ..ChaosSpec::default()
        };
        let t0 = std::time::Instant::now();
        let err = solve_full_parallel_chaos(&cfg, &b, &s, &chaos)
            .expect_err("a dead rank must abort the solve");
        assert_eq!(err, CommError::RankDead { rank: 2 });
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(30),
            "world took {:?} to notice the dead rank",
            t0.elapsed()
        );
    }

    #[test]
    fn skipped_collective_surfaces_as_located_divergence_not_hang() {
        // Rank 1 silently skips one of its allreduces mid-solve — the
        // classic rank-divergent-branch bug. Without the sanitizer every
        // later reduction pairs off-by-one and the solve either hangs or
        // converges to garbage; with it, the world tears down with the
        // divergent rank identified (ISSUE 6 acceptance).
        let s = spec(2, PrecisionMode::Double, CommStrategy::NoOverlap, 1e-10);
        let cfg = weak_field(s.part.global, 0.15, 23);
        let b = random_spinor_field(s.part.global, 24);
        let chaos = ChaosSpec {
            plan: Some(quda_comm::FaultPlan::new(5).skip_collective(1, 5)),
            comm: CommConfig {
                timeout: std::time::Duration::from_secs(2),
                ..CommConfig::default()
            },
            lockstep: Some(LockstepConfig { check_every: 1 }),
        };
        let t0 = std::time::Instant::now();
        let err = solve_full_parallel_chaos(&cfg, &b, &s, &chaos)
            .expect_err("a skipped collective must abort the solve");
        match err {
            CommError::LockstepDivergence { rank, .. } => assert_eq!(rank, 1),
            other => panic!("expected LockstepDivergence, got {other:?}"),
        }
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "divergence took {:?} to surface",
            t0.elapsed()
        );
    }

    #[test]
    fn lossy_world_converges_identically_to_fault_free() {
        // 1% message drop: link-level recovery replays pristine payloads, so
        // the solve is bit-identical to the fault-free one and the recovery
        // events are visible in the result (ISSUE acceptance).
        let s = spec(2, PrecisionMode::Double, CommStrategy::NoOverlap, 1e-10);
        let cfg = weak_field(s.part.global, 0.15, 13);
        let b = random_spinor_field(s.part.global, 14);
        let (x_clean, r_clean) = solve_full_parallel(&cfg, &b, &s).expect("fault-free solve");
        let chaos = ChaosSpec {
            plan: Some(quda_comm::FaultPlan::new(99).drop(0.01)),
            ..ChaosSpec::default()
        };
        let (x_lossy, r_lossy) =
            solve_full_parallel_chaos(&cfg, &b, &s, &chaos).expect("lossy solve");
        assert!(r_lossy.converged);
        assert!(r_lossy.comm_recoveries > 0, "expected drops to be recovered");
        assert_eq!(r_clean.iterations, r_lossy.iterations);
        assert_eq!(r_clean.final_residual, r_lossy.final_residual);
        assert_eq!(x_clean.max_site_dist(&x_lossy), 0.0);
    }

    #[test]
    fn corrupting_world_converges_identically_to_fault_free() {
        // Bit-flips and truncations are caught by the frame checksum/length
        // check and replayed from the pristine store — still bit-identical.
        let s = spec(2, PrecisionMode::Double, CommStrategy::Overlap, 1e-10);
        let cfg = weak_field(s.part.global, 0.15, 17);
        let b = random_spinor_field(s.part.global, 18);
        let (x_clean, r_clean) = solve_full_parallel(&cfg, &b, &s).expect("fault-free solve");
        let chaos = ChaosSpec {
            plan: Some(quda_comm::FaultPlan::new(7).bit_flip(0.01).truncate(0.005)),
            ..ChaosSpec::default()
        };
        let (x_lossy, r_lossy) =
            solve_full_parallel_chaos(&cfg, &b, &s, &chaos).expect("corrupted solve");
        assert!(r_lossy.converged);
        assert!(r_lossy.comm_recoveries > 0);
        assert_eq!(r_clean.iterations, r_lossy.iterations);
        assert_eq!(x_clean.max_site_dist(&x_lossy), 0.0);
    }

    /// Heavier soak: every message-level fault class at once, on a 4-rank
    /// mixed-precision solve. Run via
    /// `cargo test -p quda-multigpu --features chaos`.
    #[test]
    #[cfg(feature = "chaos")]
    fn chaos_soak_combined_faults_stay_bit_identical() {
        let s = spec(4, PrecisionMode::DoubleHalf, CommStrategy::Overlap, 1e-10);
        let cfg = weak_field(s.part.global, 0.15, 51);
        let b = random_spinor_field(s.part.global, 52);
        let (x_clean, r_clean) = solve_full_parallel(&cfg, &b, &s).expect("fault-free solve");
        for seed in [1u64, 2, 3] {
            let chaos = ChaosSpec {
                plan: Some(
                    quda_comm::FaultPlan::new(seed)
                        .drop(0.02)
                        .bit_flip(0.02)
                        .truncate(0.01)
                        .duplicate(0.05)
                        .delay(0.05, std::time::Duration::from_millis(1)),
                ),
                ..ChaosSpec::default()
            };
            let (x, r) = solve_full_parallel_chaos(&cfg, &b, &s, &chaos)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(r.converged, "seed {seed}");
            assert!(r.comm_recoveries > 0, "seed {seed}: no faults actually landed");
            assert_eq!(r_clean.iterations, r.iterations, "seed {seed}");
            assert_eq!(x_clean.max_site_dist(&x), 0.0, "seed {seed}");
        }
    }

    #[test]
    fn panicked_rank_surfaces_typed_panic_error() {
        // A rank whose worker thread panics (injected bug, not a scheduled
        // death) must surface as `RankPanicked` carrying the panic message
        // — previously it was mislabelled as a plain `RankDead`.
        let s = spec(4, PrecisionMode::Double, CommStrategy::NoOverlap, 1e-10);
        let cfg = weak_field(s.part.global, 0.15, 5);
        let b = random_spinor_field(s.part.global, 6);
        let chaos = ChaosSpec {
            plan: Some(quda_comm::FaultPlan::new(3).panic_rank(1, 30)),
            comm: CommConfig {
                timeout: std::time::Duration::from_secs(2),
                ..CommConfig::default()
            },
            ..ChaosSpec::default()
        };
        let err = solve_full_parallel_chaos(&cfg, &b, &s, &chaos)
            .expect_err("a panicked rank must abort the solve");
        match err {
            CommError::RankPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("injected panic"), "message: {message}");
            }
            other => panic!("expected RankPanicked, got {other:?}"),
        }
    }

    #[test]
    fn elastic_solve_survives_a_rank_death() {
        let s = spec(2, PrecisionMode::DoubleHalf, CommStrategy::NoOverlap, 1e-10);
        let cfg = weak_field(s.part.global, 0.15, 61);
        let b = random_spinor_field(s.part.global, 62);
        let (x_clean, r_clean) = solve_full_parallel(&cfg, &b, &s).expect("fault-free solve");
        let policy = ElasticPolicy {
            max_rank_deaths: 1,
            chaos: ChaosSpec {
                plan: Some(quda_comm::FaultPlan::new(11).kill_rank(1, 150)),
                comm: CommConfig {
                    timeout: std::time::Duration::from_secs(2),
                    ..CommConfig::default()
                },
                ..ChaosSpec::default()
            },
        };
        let es = solve_full_parallel_elastic(&cfg, &b, &s, &policy, TraceConfig::Off)
            .expect("elastic solve must survive one death");
        assert!(es.solve.result.converged);
        assert_eq!(es.recovery.deaths_survived(), 1);
        let ev = &es.recovery.events[0];
        assert_eq!(ev.dead_rank, 1);
        assert!(ev.latency > Duration::ZERO, "recovery latency must be measured");
        assert!(es.recovery.checkpoints_taken > 0, "no checkpoints were deposited");
        // Same answer as the fault-free solve, to solver tolerance.
        let rel = verify_full_solution(&cfg, &s.wilson, &es.solve.solution, &b);
        let rel_clean = verify_full_solution(&cfg, &s.wilson, &x_clean, &b);
        assert!(rel < 1e-9, "post-recovery residual {rel}");
        assert!((rel - rel_clean).abs() < 1e-9, "fault-free {rel_clean} vs recovered {rel}");
        assert!(r_clean.converged);
    }

    #[test]
    fn elastic_budget_zero_is_bit_identical_fail_fast() {
        let s = spec(2, PrecisionMode::Double, CommStrategy::NoOverlap, 1e-10);
        let cfg = weak_field(s.part.global, 0.15, 71);
        let b = random_spinor_field(s.part.global, 72);
        // Fault-free: budget 0 must give the bit-identical classic answer
        // (no checkpoints, no extra collectives, same numerics).
        let policy = ElasticPolicy { max_rank_deaths: 0, chaos: ChaosSpec::default() };
        let es = solve_full_parallel_elastic(&cfg, &b, &s, &policy, TraceConfig::Off)
            .expect("fault-free solve");
        let (x_classic, r_classic) = solve_full_parallel(&cfg, &b, &s).expect("classic solve");
        assert_eq!(es.solve.solution.max_site_dist(&x_classic), 0.0);
        assert_eq!(es.solve.result.iterations, r_classic.iterations);
        assert_eq!(es.solve.result.final_residual, r_classic.final_residual);
        assert_eq!(es.recovery.deaths_survived(), 0);
        assert_eq!(es.recovery.checkpoints_taken, 0);
        // With a kill injected, budget 0 fails fast with the same typed
        // error as the classic driver.
        let chaos = ChaosSpec {
            plan: Some(quda_comm::FaultPlan::new(77).kill_rank(1, 25)),
            comm: CommConfig {
                timeout: std::time::Duration::from_secs(2),
                ..CommConfig::default()
            },
            ..ChaosSpec::default()
        };
        let policy = ElasticPolicy { max_rank_deaths: 0, chaos };
        let err = solve_full_parallel_elastic(&cfg, &b, &s, &policy, TraceConfig::Off)
            .expect_err("budget 0 must fail fast");
        assert_eq!(err, CommError::RankDead { rank: 1 });
    }

    /// Heavier elastic soak: two sequential deaths plus message-level
    /// faults. Run via `cargo test -p quda-multigpu --features chaos`.
    #[test]
    #[cfg(feature = "chaos")]
    fn chaos_soak_two_sequential_deaths_with_lossy_wire() {
        let s = spec(4, PrecisionMode::DoubleHalf, CommStrategy::Overlap, 1e-10);
        let cfg = weak_field(s.part.global, 0.15, 81);
        let b = random_spinor_field(s.part.global, 82);
        let (x_clean, _) = solve_full_parallel(&cfg, &b, &s).expect("fault-free solve");
        let rel_clean = verify_full_solution(&cfg, &s.wilson, &x_clean, &b);
        let policy = ElasticPolicy {
            max_rank_deaths: 2,
            chaos: ChaosSpec {
                plan: Some(
                    quda_comm::FaultPlan::new(9)
                        .drop(0.005)
                        .kill_rank_in_generation(0, 2, 150)
                        .kill_rank_in_generation(1, 0, 200),
                ),
                comm: CommConfig {
                    timeout: std::time::Duration::from_secs(2),
                    ..CommConfig::default()
                },
                ..ChaosSpec::default()
            },
        };
        let es = solve_full_parallel_elastic(&cfg, &b, &s, &policy, TraceConfig::Off)
            .expect("elastic solve must survive both deaths");
        assert!(es.solve.result.converged);
        assert_eq!(es.recovery.deaths_survived(), 2);
        assert_eq!(es.recovery.events[0].dead_rank, 2);
        assert_eq!(es.recovery.events[1].dead_rank, 0);
        let rel = verify_full_solution(&cfg, &s.wilson, &es.solve.solution, &b);
        assert!(rel < 1e-9, "post-recovery residual {rel} (clean {rel_clean})");
    }

    #[test]
    fn mode_names_match_paper() {
        assert_eq!(PrecisionMode::SingleHalf.name(), "single-half");
        assert_eq!(PrecisionMode::DoubleHalf.name(), "double-half");
        assert!(PrecisionMode::SingleHalf.is_mixed());
        assert!(!PrecisionMode::Double.is_mixed());
    }
}
