//! Analytic performance model of the parallel solver on the simulated "9g"
//! cluster — the engine behind the Fig. 4/5/6 reproductions.
//!
//! The model composes, per solver iteration:
//!
//! * two even-odd operator applications, each = face exchange + hopping
//!   kernel + two clover kernels, assembled on a [`Timeline`] with a single
//!   GT200 copy engine (bidirectional PCI-E transfers arrive only with
//!   Fermi — Section VI-D2's footnote);
//! * the fused blas kernels of one BiCGstab iteration;
//! * the MPI allreduces behind every reduction (Section VI-E);
//! * for mixed modes, the amortized cost of reliable updates in the outer
//!   precision.
//!
//! Face transfers follow the paper's copy structure exactly: one
//! `cudaMemcpy` per face *block* on the gather (12/N_vec blocks, plus one
//! for the normalization array in half precision), a single message per
//! direction, and a single copy per received face on the scatter
//! (Section VI-D1). Under the overlapped strategy copies become
//! `cudaMemcpyAsync` with its much higher latency (Fig. 7) — which is the
//! entire mechanism behind the mixed-precision plateau of Fig. 5(b).

use crate::driver::PrecisionMode;
use crate::rank_op::CommStrategy;
use quda_fields::precision::PrecisionTag;
use quda_gpusim::calib::Calibration;
use quda_gpusim::cards::GpuSpec;
use quda_gpusim::kernel::{kernel_time, KernelWork};
use quda_gpusim::memory::DeviceMemory;
use quda_gpusim::stream::Timeline;
use quda_gpusim::transfer::{
    allreduce_time, network_time, pcie_time, CopyKind, Direction, NumaPlacement,
};
use quda_lattice::geometry::LatticeDims;
use quda_lattice::layout::{species, NVec};
use quda_lattice::partition::TimePartition;

/// Inputs of one performance evaluation.
#[derive(Copy, Clone, Debug)]
pub struct PerfInput {
    /// Global lattice.
    pub global: LatticeDims,
    /// GPU count (1-d temporal decomposition).
    pub ranks: usize,
    /// Solver precision mode.
    pub mode: PrecisionMode,
    /// Face-exchange strategy.
    pub strategy: CommStrategy,
    /// Process-to-socket binding.
    pub numa: NumaPlacement,
    /// The card model.
    pub gpu: GpuSpec,
    /// Model constants.
    pub calib: Calibration,
    /// Sloppy iterations per reliable update (mixed modes).
    pub reliable_interval: f64,
}

impl PerfInput {
    /// The paper's testbed defaults for a given run shape.
    pub fn paper(
        global: LatticeDims,
        ranks: usize,
        mode: PrecisionMode,
        strategy: CommStrategy,
    ) -> Self {
        PerfInput {
            global,
            ranks,
            mode,
            strategy,
            numa: NumaPlacement::Good,
            gpu: quda_gpusim::cards::gtx285(),
            calib: Calibration::default(),
            reliable_interval: 25.0,
        }
    }
}

/// Model outputs.
#[derive(Copy, Clone, Debug)]
pub struct PerfReport {
    /// Modeled wall time of one solver iteration (s).
    pub iteration_time_s: f64,
    /// Aggregate sustained effective Gflops over all GPUs.
    pub sustained_gflops: f64,
    /// Per-GPU share.
    pub per_gpu_gflops: f64,
    /// Device bytes the solve needs per GPU.
    pub memory_per_gpu: usize,
    /// Whether it fits the card (with the runtime reserve).
    pub fits_memory: bool,
    /// Fraction of iteration time not spent in local kernels.
    pub comm_fraction: f64,
}

/// (outer, sloppy) storage precisions of a mode.
pub fn mode_tags(mode: PrecisionMode) -> (PrecisionTag, PrecisionTag) {
    match mode {
        PrecisionMode::Double => (PrecisionTag::Double, PrecisionTag::Double),
        PrecisionMode::Single => (PrecisionTag::Single, PrecisionTag::Single),
        PrecisionMode::Half => (PrecisionTag::Half, PrecisionTag::Half),
        PrecisionMode::SingleHalf => (PrecisionTag::Single, PrecisionTag::Half),
        PrecisionMode::DoubleHalf => (PrecisionTag::Double, PrecisionTag::Half),
        PrecisionMode::DoubleSingle => (PrecisionTag::Double, PrecisionTag::Single),
        PrecisionMode::DoubleQuarter => (PrecisionTag::Double, PrecisionTag::Quarter),
    }
}

/// Bytes of one spinor face message (Section VI-C: 12 reals per site plus a
/// normalization per site in half precision).
pub fn face_bytes(tag: PrecisionTag, face_sites: usize) -> usize {
    crate::ghost::face_wire_bytes_dyn(tag.storage_bytes(), tag.needs_norm(), face_sites, 1)
}

/// `cudaMemcpy` calls needed to gather one face to the host: one per face
/// block (12 / N_vec) plus one for the norms in half precision.
pub fn d2h_copies(tag: PrecisionTag) -> usize {
    let nvec = NVec::optimal_for_bytes(tag.storage_bytes()).value();
    12 / nvec + usize::from(tag.needs_norm())
}

/// Copies to scatter one received (host-contiguous) face to the device.
pub fn h2d_copies(tag: PrecisionTag) -> usize {
    1 + usize::from(tag.needs_norm())
}

fn half_extra(tag: PrecisionTag, per_site: u64) -> u64 {
    if tag.needs_norm() {
        per_site
    } else {
        0
    }
}

/// Kernel time of a hopping-term launch over `sites` sites.
fn dslash_kernel(inp: &PerfInput, tag: PrecisionTag, sites: u64) -> f64 {
    if sites == 0 {
        return 0.0;
    }
    let b = tag.storage_bytes() as u64;
    // 288 reals/site plus the half-precision normalization traffic
    // (8 neighbor norms + 1 store ≈ 36 B/site).
    let bytes = sites * quda_dirac::flops::DSLASH_REALS_PER_SITE * b + half_extra(tag, 36) * sites;
    // Executed flops include third-row reconstruction (~25% extra).
    let flops = sites * 1650;
    kernel_time(
        &inp.calib.kernel,
        &inp.gpu,
        &KernelWork { bytes, flops, storage_bytes: tag.storage_bytes() },
    )
}

/// Kernel time of one clover multiply (optionally fused with the final
/// axpy combine) over `sites` sites.
fn clover_kernel(inp: &PerfInput, tag: PrecisionTag, sites: u64, axpy: bool) -> f64 {
    let b = tag.storage_bytes() as u64;
    let reals = if axpy { 144 } else { 120 };
    let bytes = sites * reals * b + half_extra(tag, 12) * sites;
    let flops = sites * (quda_dirac::flops::CLOVER_FLOPS_PER_SITE + if axpy { 48 } else { 0 });
    kernel_time(
        &inp.calib.kernel,
        &inp.gpu,
        &KernelWork { bytes, flops, storage_bytes: tag.storage_bytes() },
    )
}

/// Time of one hopping-term application *including* its face exchange.
pub fn dslash_time(inp: &PerfInput, tag: PrecisionTag) -> f64 {
    let part = TimePartition::new(inp.global, inp.ranks);
    let ld = part.local_dims();
    let sites = ld.half_volume() as u64;
    if !part.is_partitioned() {
        return dslash_kernel(inp, tag, sites);
    }
    let faces = ld.half_spatial_volume();
    let msg = face_bytes(tag, faces);
    let t = &inp.calib.transfer;
    let n = &inp.calib.network;
    match inp.strategy {
        CommStrategy::NoOverlap => {
            // Gather both faces (sync copies, one per block), one message
            // each way, scatter both faces, then one kernel over everything.
            let gather_one = d2h_copies(tag) as f64 * t.sync_latency_s
                + msg as f64 / effective_bw(t, Direction::D2H, inp.numa);
            let scatter_one = h2d_copies(tag) as f64 * t.sync_latency_s
                + msg as f64 / effective_bw(t, Direction::H2D, inp.numa);
            let net = network_time(n, msg);
            2.0 * gather_one + net + 2.0 * scatter_one + dslash_kernel(inp, tag, sites)
        }
        CommStrategy::Overlap => {
            // Three CUDA streams (Section VI-D2). On GT200 a single copy
            // engine serializes every PCI-E transfer; Fermi parts have two
            // engines and "allow for bidirectional transfers over the PCI-E
            // bus" (footnote 4), so D2H and H2D get separate lanes.
            let mut tl = Timeline::new(5); // 0 = GPU, 1/4 = copy engines, 2/3 = network
            let h2d_engine = if inp.gpu.copy_engines >= 2 { 4 } else { 1 };
            let d2h = |tlx: &mut Timeline, deps: &[quda_gpusim::stream::EventId]| {
                let cost = d2h_copies(tag) as f64 * t.async_latency_s
                    + msg as f64 / effective_bw(t, Direction::D2H, inp.numa);
                tlx.enqueue(1, "d2h", cost, deps)
            };
            let h2d_cost = h2d_copies(tag) as f64 * t.async_latency_s
                + msg as f64 / effective_bw(t, Direction::H2D, inp.numa);
            let e_back = d2h(&mut tl, &[]);
            let e_fwd = d2h(&mut tl, &[]);
            let m_back = tl.enqueue(2, "net-back", network_time(n, msg), &[e_back]);
            let m_fwd = tl.enqueue(3, "net-fwd", network_time(n, msg), &[e_fwd]);
            let h_back = tl.enqueue(h2d_engine, "h2d", h2d_cost, &[m_back]);
            let h_fwd = tl.enqueue(h2d_engine, "h2d", h2d_cost, &[m_fwd]);
            let interior_sites = sites.saturating_sub(2 * faces as u64);
            let _k_int = tl.enqueue(0, "interior", dslash_kernel(inp, tag, interior_sites), &[]);
            let face_sites = (2 * faces as u64).min(sites);
            tl.enqueue(0, "faces", dslash_kernel(inp, tag, face_sites), &[h_back, h_fwd]);
            tl.makespan()
        }
    }
}

fn effective_bw(t: &quda_gpusim::calib::TransferCalib, dir: Direction, numa: NumaPlacement) -> f64 {
    // pcie_time = latency + bytes/bw; reuse its bandwidth handling by
    // measuring the marginal cost of one extra byte.
    let base = pcie_time(t, CopyKind::Sync, dir, numa, 0);
    let one = pcie_time(t, CopyKind::Sync, dir, numa, 1_000_000);
    1_000_000.0 / (one - base)
}

/// Time of one even-odd operator application at precision `tag`.
pub fn matpc_time(inp: &PerfInput, tag: PrecisionTag) -> f64 {
    let part = TimePartition::new(inp.global, inp.ranks);
    let sites = part.local_dims().half_volume() as u64;
    2.0 * dslash_time(inp, tag)
        + clover_kernel(inp, tag, sites, false)
        + clover_kernel(inp, tag, sites, true)
}

/// Blas + reduction time of one BiCGstab iteration at precision `tag`.
pub fn blas_iteration_time(inp: &PerfInput, tag: PrecisionTag) -> f64 {
    let part = TimePartition::new(inp.global, inp.ranks);
    let sites = part.local_dims().half_volume() as u64;
    let b = tag.storage_bytes() as u64;
    // One BiCGstab iteration: cdot, caxpyNorm, cDotProductNormB, caxpbypz,
    // caxpyNorm, cdot, cxpaypbz — 528 reals/site total, 7 launches.
    let bytes = sites * 528 * b + half_extra(tag, 66) * sites;
    let stream = kernel_time(
        &inp.calib.kernel,
        &inp.gpu,
        &KernelWork { bytes, flops: sites * 1032, storage_bytes: tag.storage_bytes() },
    );
    let launches = 6.0 * inp.calib.kernel.launch_overhead_s;
    // 4 of those kernels end in reductions: device→host result readback +
    // allreduce.
    let reductions =
        4.0 * (inp.calib.transfer.sync_latency_s + allreduce_time(&inp.calib.network, inp.ranks));
    stream + launches + reductions
}

/// Effective flops of one solver iteration (2 matvecs + blas), per rank.
pub fn iteration_flops(inp: &PerfInput) -> u64 {
    let part = TimePartition::new(inp.global, inp.ranks);
    let sites = part.local_dims().half_volume() as u64;
    2 * sites * quda_dirac::flops::MATPC_FLOPS_PER_SITE + sites * 1032
}

/// Full per-iteration model.
pub fn evaluate(inp: &PerfInput) -> PerfReport {
    let (outer, sloppy) = mode_tags(inp.mode);
    let mut t_iter = 2.0 * matpc_time(inp, sloppy) + blas_iteration_time(inp, sloppy);
    let mut flops = iteration_flops(inp) as f64;
    if inp.mode.is_mixed() {
        // Amortized reliable update: one outer matvec, the residual combine,
        // and two full-field precision conversions (copy-like kernels).
        let part = TimePartition::new(inp.global, inp.ranks);
        let sites = part.local_dims().half_volume() as u64;
        let conv_bytes = sites * 24 * (outer.storage_bytes() + sloppy.storage_bytes()) as u64;
        let conv = kernel_time(
            &inp.calib.kernel,
            &inp.gpu,
            &KernelWork { bytes: 2 * conv_bytes, flops: 0, storage_bytes: outer.storage_bytes() },
        );
        let update = matpc_time(inp, outer) + blas_iteration_time(inp, outer) * 0.5 + conv;
        t_iter += update / inp.reliable_interval;
        flops += (sites * quda_dirac::flops::MATPC_FLOPS_PER_SITE) as f64 / inp.reliable_interval;
    }
    let per_gpu = flops / t_iter / 1e9;
    let mem = solver_memory_per_gpu(inp.global, inp.ranks, inp.mode);
    let mut device = DeviceMemory::new(inp.gpu.ram_bytes());
    let fits = device.alloc("solver working set", mem).is_ok();
    // Kernel-only time: what the same iteration would cost with free,
    // instant communication.
    let kernels = {
        let mut one = *inp;
        one.ranks = 1;
        one.global = TimePartition::new(inp.global, inp.ranks).local_dims();
        2.0 * matpc_time(&one, sloppy) + blas_iteration_time(&one, sloppy)
    };
    PerfReport {
        iteration_time_s: t_iter,
        sustained_gflops: per_gpu * inp.ranks as f64,
        per_gpu_gflops: per_gpu,
        memory_per_gpu: mem,
        fits_memory: fits,
        comm_fraction: (1.0 - kernels / t_iter).max(0.0),
    }
}

/// Device bytes one GPU needs to run the solver in `mode` on its share of
/// `global` split over `ranks`.
pub fn solver_memory_per_gpu(global: LatticeDims, ranks: usize, mode: PrecisionMode) -> usize {
    let part = TimePartition::new(global, ranks);
    let ld = part.local_dims();
    let (outer, sloppy) = mode_tags(mode);
    let fields = |tag: PrecisionTag, spinors: usize, with_gauge: bool| -> usize {
        let b = tag.storage_bytes();
        let nvec = NVec::optimal_for_bytes(b);
        let spinor_layout = species::spinor_cb(&ld, nvec, part.is_partitioned());
        let spinor_norm = if tag.needs_norm() {
            (spinor_layout.sites + spinor_layout.ghost_sites) * 4
        } else {
            0
        };
        let spinor_bytes = spinor_layout.device_bytes(b) + spinor_norm;
        let gauge_layout = species::gauge_cb(&ld, nvec, true);
        let gauge_bytes = 8 * gauge_layout.device_bytes(b);
        let clover_layout = species::clover_cb(&ld, nvec);
        let clover_norm = if tag.needs_norm() { clover_layout.sites * 4 } else { 0 };
        // T_oo and T_ee⁻¹.
        let clover_bytes = 2 * (clover_layout.device_bytes(b) + clover_norm);
        spinors * spinor_bytes + if with_gauge { gauge_bytes + clover_bytes } else { 0 }
    };
    if mode.is_mixed() {
        // Outer: x, b̂ (doubling as the allocation r0 was taken from),
        // r_hi, conversion scratch = 4 spinors + the outer gauge/clover.
        // Sloppy: r, r0, p, v, t, x_sloppy + 2 operator workspaces = 8
        // spinors + the sloppy gauge/clover ("the mixed precision solver
        // must store data for both the single and half precision solves",
        // Section VII-C). The unpreconditioned source parities live in host
        // memory outside the solve.
        fields(outer, 4, true) + fields(sloppy, 8, true)
    } else {
        // x, b̂ (aliasing r0 — the shadow residual IS the initial residual
        // for a zero guess), r, p, v, t + one operator workspace = 7
        // spinors.
        fields(outer, 7, true)
    }
}

/// Smallest power-of-two GPU count (≥1) whose share of `global` fits the
/// card in `mode`, respecting T divisibility. `None` if even the largest
/// sensible partition does not fit.
pub fn min_gpus(global: LatticeDims, mode: PrecisionMode, gpu: &GpuSpec) -> Option<usize> {
    let mut n = 1usize;
    while n <= 256 {
        if global.t % n == 0 && (global.t / n) >= 2 && (global.t / n) % 2 == 0 {
            let mem = solver_memory_per_gpu(global, n, mode);
            let mut device = DeviceMemory::new(gpu.ram_bytes());
            if device.alloc("solver", mem).is_ok() {
                return Some(n);
            }
        }
        n *= 2;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_gpusim::cards::gtx285;

    fn inp(
        global: LatticeDims,
        ranks: usize,
        mode: PrecisionMode,
        strategy: CommStrategy,
    ) -> PerfInput {
        PerfInput::paper(global, ranks, mode, strategy)
    }

    #[test]
    fn single_gpu_solver_rate_near_100_gflops() {
        // Fig. 4(a): the single-precision solver sustains ≈100 Gflops/GPU.
        let r = evaluate(&inp(
            LatticeDims::hypercubic(32),
            1,
            PrecisionMode::Single,
            CommStrategy::NoOverlap,
        ));
        assert!(
            r.per_gpu_gflops > 85.0 && r.per_gpu_gflops < 125.0,
            "single-precision solver rate {} Gflops",
            r.per_gpu_gflops
        );
    }

    #[test]
    fn half_roughly_one_and_a_half_times_single() {
        let s = evaluate(&inp(
            LatticeDims::hypercubic(32),
            1,
            PrecisionMode::Single,
            CommStrategy::NoOverlap,
        ));
        let h = evaluate(&inp(
            LatticeDims::hypercubic(32),
            1,
            PrecisionMode::Half,
            CommStrategy::NoOverlap,
        ));
        let ratio = h.per_gpu_gflops / s.per_gpu_gflops;
        assert!(ratio > 1.4 && ratio < 2.0, "half/single ratio {ratio}");
    }

    #[test]
    fn double_far_slower_than_single() {
        let s = evaluate(&inp(
            LatticeDims::spatial_cube(24, 32),
            1,
            PrecisionMode::Single,
            CommStrategy::NoOverlap,
        ));
        let d = evaluate(&inp(
            LatticeDims::spatial_cube(24, 32),
            1,
            PrecisionMode::Double,
            CommStrategy::NoOverlap,
        ));
        let ratio = s.per_gpu_gflops / d.per_gpu_gflops;
        assert!(
            ratio > 2.0 && ratio < 4.5,
            "single/double ratio {ratio} (double is additionally flop bound on GTX 285)"
        );
    }

    #[test]
    fn weak_scaling_is_near_linear() {
        // Fig. 4: fixed local volume 32⁴ per GPU.
        let per1 = evaluate(&inp(
            LatticeDims::hypercubic(32),
            1,
            PrecisionMode::SingleHalf,
            CommStrategy::Overlap,
        ));
        let g32 = LatticeDims::new(32, 32, 32, 32 * 32);
        let per32 = evaluate(&inp(g32, 32, PrecisionMode::SingleHalf, CommStrategy::Overlap));
        let efficiency = per32.sustained_gflops / (32.0 * per1.per_gpu_gflops);
        assert!(efficiency > 0.8, "weak-scaling efficiency {efficiency}");
        assert!(
            per32.sustained_gflops > 3500.0,
            "expected multi-Tflops at 32 GPUs, got {}",
            per32.sustained_gflops
        );
    }

    #[test]
    fn strong_scaling_efficiency_decays() {
        // Fig. 5(a): 32³×256, per-GPU rate decays as local volume shrinks.
        let g = LatticeDims::spatial_cube(32, 256);
        let at8 = evaluate(&inp(g, 8, PrecisionMode::Single, CommStrategy::Overlap));
        let at32 = evaluate(&inp(g, 32, PrecisionMode::Single, CommStrategy::Overlap));
        assert!(at32.per_gpu_gflops < at8.per_gpu_gflops);
        assert!(at32.sustained_gflops > at8.sustained_gflops, "still gaining in aggregate");
        assert!(at32.comm_fraction > at8.comm_fraction);
    }

    #[test]
    fn overlap_helps_large_volume_strong_scaling() {
        // Fig. 5(a): overlapped beats non-overlapped at scale.
        let g = LatticeDims::spatial_cube(32, 256);
        let ov = evaluate(&inp(g, 32, PrecisionMode::Single, CommStrategy::Overlap));
        let no = evaluate(&inp(g, 32, PrecisionMode::Single, CommStrategy::NoOverlap));
        assert!(
            ov.sustained_gflops > no.sustained_gflops,
            "overlap {} vs no-overlap {}",
            ov.sustained_gflops,
            no.sustained_gflops
        );
    }

    #[test]
    fn overlap_hurts_small_volume_mixed_precision() {
        // Fig. 5(b): on 24³×128 in single-half, the async-copy latency makes
        // the overlapped solver *slower* at large GPU counts.
        let g = LatticeDims::spatial_cube(24, 128);
        let ov = evaluate(&inp(g, 32, PrecisionMode::SingleHalf, CommStrategy::Overlap));
        let no = evaluate(&inp(g, 32, PrecisionMode::SingleHalf, CommStrategy::NoOverlap));
        assert!(
            no.sustained_gflops > ov.sustained_gflops,
            "no-overlap {} should beat overlap {} here",
            no.sustained_gflops,
            ov.sustained_gflops
        );
    }

    #[test]
    fn bad_numa_placement_costs_performance() {
        // Fig. 5(a)'s maroon curve.
        let g = LatticeDims::spatial_cube(32, 256);
        let mut bad = inp(g, 32, PrecisionMode::SingleHalf, CommStrategy::Overlap);
        bad.numa = NumaPlacement::Bad;
        let good = evaluate(&inp(g, 32, PrecisionMode::SingleHalf, CommStrategy::Overlap));
        let worse = evaluate(&bad);
        assert!(worse.sustained_gflops < good.sustained_gflops * 0.97);
    }

    #[test]
    fn mixed_needs_8_gpus_on_big_lattice_single_fits_4() {
        // Section VII-C: "this increase in memory footprint means that at
        // least 8 GPUs are needed ... The uniform single precision solver
        // ... can be solved (at a performance cost) already on 4 GPUs."
        let g = LatticeDims::spatial_cube(32, 256);
        let gpu = gtx285();
        assert_eq!(min_gpus(g, PrecisionMode::Single, &gpu), Some(4));
        assert_eq!(min_gpus(g, PrecisionMode::SingleHalf, &gpu), Some(8));
    }

    #[test]
    fn double_half_memory_exceeds_single_half() {
        let g = LatticeDims::spatial_cube(24, 128);
        let dh = solver_memory_per_gpu(g, 4, PrecisionMode::DoubleHalf);
        let sh = solver_memory_per_gpu(g, 4, PrecisionMode::SingleHalf);
        assert!(dh > sh);
    }

    #[test]
    fn copy_counts_match_paper_structure() {
        assert_eq!(d2h_copies(PrecisionTag::Single), 3); // 12 / float4
        assert_eq!(d2h_copies(PrecisionTag::Double), 6); // 12 / double2
        assert_eq!(d2h_copies(PrecisionTag::Half), 4); // 3 blocks + norms
        assert_eq!(h2d_copies(PrecisionTag::Single), 1); // contiguous on host
        assert_eq!(h2d_copies(PrecisionTag::Half), 2);
    }

    #[test]
    fn face_bytes_match_ghost_module() {
        use quda_fields::precision::{Double, Half, Single};
        let f = 1000;
        assert_eq!(face_bytes(PrecisionTag::Double, f), crate::ghost::face_wire_bytes::<Double>(f));
        assert_eq!(face_bytes(PrecisionTag::Single, f), crate::ghost::face_wire_bytes::<Single>(f));
        assert_eq!(face_bytes(PrecisionTag::Half, f), crate::ghost::face_wire_bytes::<Half>(f));
    }
}
