//! Property-based tests of the solver layer: blas algebraic identities over
//! random vectors and solver convergence over random well-conditioned
//! systems.

use proptest::prelude::*;
use quda_dirac::{WilsonCloverOp, WilsonParams};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::Double;
use quda_fields::SpinorFieldCb;
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_math::complex::C64;
use quda_solvers::blas::{self, BlasCounters};
use quda_solvers::operator::MatPcOp;
use quda_solvers::params::SolverParams;

fn dims() -> LatticeDims {
    LatticeDims::new(4, 4, 2, 4)
}

fn field(seed: u64) -> SpinorFieldCb<Double> {
    let host = random_spinor_field(dims(), seed);
    let mut f = SpinorFieldCb::new(dims(), false);
    f.upload(&host, Parity::Odd);
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn caxpy_norm_is_consistent_with_parts(seed in 0u64..500, re in -2.0f64..2.0, im in -2.0f64..2.0) {
        let x = field(seed);
        let mut y = field(seed + 1);
        let y0 = y.clone();
        let a = C64::new(re, im);
        let mut c = BlasCounters::default();
        let n = blas::caxpy_norm(a, &x, &mut y, &mut c);
        // y = y0 + a x, n = |y|².
        let mut expect_norm = 0.0;
        for cb in 0..x.sites() {
            let expect = y0.get(cb) + x.get(cb).scale(a.cast());
            expect_norm += expect.norm_sqr();
            prop_assert!((y.get(cb) - expect).norm_sqr() < 1e-22);
        }
        prop_assert!((n - expect_norm).abs() < 1e-8 * expect_norm.max(1.0));
    }

    #[test]
    fn norms_are_positive_definite(seed in 0u64..500) {
        let x = field(seed);
        let mut c = BlasCounters::default();
        let n = blas::norm2(&x, &mut c);
        prop_assert!(n > 0.0);
        let d = blas::cdot(&x, &x, &mut c);
        prop_assert!((d.re - n).abs() < 1e-9 * n);
        prop_assert!(d.im.abs() < 1e-9 * n);
    }

    #[test]
    fn dot_conjugate_symmetry(s1 in 0u64..500, s2 in 500u64..1000) {
        let x = field(s1);
        let y = field(s2);
        let mut c = BlasCounters::default();
        let xy = blas::cdot(&x, &y, &mut c);
        let yx = blas::cdot(&y, &x, &mut c);
        prop_assert!((xy.re - yx.re).abs() < 1e-9);
        prop_assert!((xy.im + yx.im).abs() < 1e-9);
    }

    #[test]
    fn bicgstab_solves_random_weak_field_systems(seed in 0u64..100, mass in 0.15f64..0.6) {
        let d = dims();
        let cfg = weak_field(d, 0.15, seed);
        let mut op = MatPcOp::new(WilsonCloverOp::<Double>::from_config(
            &cfg,
            WilsonParams { mass, c_sw: 1.0 },
        ));
        let host = random_spinor_field(d, seed + 77);
        let mut b = quda_solvers::operator::LinearOperator::alloc(&op);
        b.upload(&host, Parity::Odd);
        let mut x = quda_solvers::operator::LinearOperator::alloc(&op);
        blas::zero(&mut x);
        let res = quda_solvers::bicgstab(
            &mut op,
            &mut x,
            &b,
            &SolverParams { tol: 1e-9, max_iter: 500, delta: 0.0 },
        );
        prop_assert!(res.converged, "mass={mass} seed={seed} residual={}", res.final_residual);
        prop_assert!(res.final_residual < 1e-8);
    }

    #[test]
    fn solver_iterations_grow_as_mass_decreases(seed in 0u64..50) {
        // The quark mass controls the condition number (Section II).
        let d = dims();
        let cfg = weak_field(d, 0.2, seed);
        let host = random_spinor_field(d, seed + 5);
        let mut iters = Vec::new();
        for mass in [1.0, 0.3, 0.05] {
            let mut op = MatPcOp::new(WilsonCloverOp::<Double>::from_config(
                &cfg,
                WilsonParams { mass, c_sw: 1.0 },
            ));
            let mut b = quda_solvers::operator::LinearOperator::alloc(&op);
            b.upload(&host, Parity::Odd);
            let mut x = quda_solvers::operator::LinearOperator::alloc(&op);
            blas::zero(&mut x);
            let res = quda_solvers::bicgstab(
                &mut op,
                &mut x,
                &b,
                &SolverParams { tol: 1e-8, max_iter: 2000, delta: 0.0 },
            );
            prop_assert!(res.converged);
            iters.push(res.iterations);
        }
        prop_assert!(
            iters[0] <= iters[2],
            "heavier quark should not need more iterations: {iters:?}"
        );
    }
}
