//! Steady-state allocation audit for the Krylov solvers.
//!
//! A counting global allocator proves what `cargo xtask hotpath` checks
//! statically: after warmup (operator + workspace construction and the
//! first iterations that touch every code path), a solver iteration
//! performs **zero** heap allocations — the BLAS kernels stream the
//! blocked storage with stack scratch, the dslash writes through without
//! an intermediate buffer, and `residual_history` is pre-sized to
//! `max_iter`.
//!
//! Method: run the same solve twice from identical state with different
//! iteration budgets and compare allocation counts. Setup costs are
//! identical on both runs, so any difference is per-iteration allocation
//! multiplied by the extra iterations — which must be zero.
//!
//! This file is its own test binary with exactly one `#[test]`, so no
//! concurrent test can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use quda_dirac::{WilsonCloverOp, WilsonParams};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::{Double, Single};
use quda_fields::SpinorFieldCb;
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_solvers::blas;
use quda_solvers::cg::cgnr;
use quda_solvers::mixed::bicgstab_reliable;
use quda_solvers::operator::{LinearOperator, MatPcOp};
use quda_solvers::params::SolverParams;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to `System`, adding only a
// relaxed counter bump, so the allocator contract (layout validity,
// uniqueness of returned pointers) is exactly `System`'s.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds the GlobalAlloc contract; forwarded as-is.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller guaranteed valid.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: caller upholds the GlobalAlloc contract; forwarded as-is.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller guaranteed valid.
        unsafe { System.alloc_zeroed(layout) }
    }
    // SAFETY: caller upholds the GlobalAlloc contract; forwarded as-is.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: ptr/layout/new_size come straight from the caller, who
        // guarantees ptr was allocated here with that layout.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    // SAFETY: caller upholds the GlobalAlloc contract; forwarded as-is.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr/layout come straight from the caller, who guarantees
        // ptr was allocated here with that layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

fn setup(seed: u64) -> (MatPcOp<Double>, MatPcOp<Single>, SpinorFieldCb<Double>) {
    let d = LatticeDims::new(4, 4, 4, 4);
    let cfg = weak_field(d, 0.15, seed);
    let wp = WilsonParams { mass: 0.2, c_sw: 1.0 };
    let op_hi = MatPcOp::new(WilsonCloverOp::<Double>::from_config(&cfg, wp));
    let op_lo = MatPcOp::new(WilsonCloverOp::<Single>::from_config(&cfg, wp));
    let host = random_spinor_field(d, seed + 50);
    let mut b = op_hi.alloc();
    b.upload(&host, Parity::Odd);
    (op_hi, op_lo, b)
}

/// Allocation count of a fresh `cgnr` solve capped at `max_iter`
/// iterations (tol = 0 so the cap, not convergence, ends the loop).
fn cg_allocs(op: &mut MatPcOp<Double>, b: &SpinorFieldCb<Double>, max_iter: usize) -> u64 {
    let mut x = op.alloc();
    blas::zero(&mut x);
    let params = SolverParams { tol: 0.0, max_iter, delta: 0.0 };
    let mut iterations = 0;
    let n = allocs_during(|| {
        let res = cgnr(op, &mut x, b, &params);
        iterations = res.iterations;
    });
    assert_eq!(iterations, max_iter, "solve must be iteration-capped, not converged");
    n
}

/// Allocation count of a fresh `bicgstab_reliable` solve capped at
/// `max_iter` sloppy iterations, with `delta` chosen so reliable updates
/// fire along the way (their accumulate/re-residual path must also be
/// allocation-free).
fn bicgstab_allocs(
    op_hi: &mut MatPcOp<Double>,
    op_lo: &mut MatPcOp<Single>,
    b: &SpinorFieldCb<Double>,
    max_iter: usize,
) -> u64 {
    let mut x = op_hi.alloc();
    blas::zero(&mut x);
    let params = SolverParams { tol: 0.0, max_iter, delta: 0.3 };
    let mut iterations = 0;
    let mut updates = 0;
    let n = allocs_during(|| {
        let res = bicgstab_reliable(op_hi, op_lo, &mut x, b, &params);
        iterations = res.iterations;
        updates = res.reliable_updates;
    });
    assert_eq!(iterations, max_iter, "solve must be iteration-capped, not converged");
    assert!(updates > 0, "delta = 0.3 should trigger reliable updates");
    n
}

#[test]
fn solver_iterations_are_allocation_free_after_warmup() {
    let (mut op_hi, mut op_lo, b) = setup(7);

    // Warmup: fault in lazy one-time allocations (thread-local buffers,
    // runtime init) so the measured runs see only steady-state behavior.
    cg_allocs(&mut op_hi, &b, 4);
    bicgstab_allocs(&mut op_hi, &mut op_lo, &b, 4);

    // CGNR: identical setup, different iteration budgets. The entire
    // difference is per-iteration allocation — it must be zero.
    let short = cg_allocs(&mut op_hi, &b, 10);
    let long = cg_allocs(&mut op_hi, &b, 40);
    assert_eq!(
        long,
        short,
        "cgnr allocated {} time(s) across 30 extra iterations",
        long.saturating_sub(short)
    );

    // Mixed-precision BiCGstab with reliable updates enabled.
    let short = bicgstab_allocs(&mut op_hi, &mut op_lo, &b, 10);
    let long = bicgstab_allocs(&mut op_hi, &mut op_lo, &b, 40);
    assert_eq!(
        long,
        short,
        "bicgstab_reliable allocated {} time(s) across 30 extra iterations",
        long.saturating_sub(short)
    );
}
