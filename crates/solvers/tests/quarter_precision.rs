//! The 8-bit ("quarter") storage extension, end to end.
//!
//! Section V-C3 notes the texture path accepts "a signed 16-bit (or even
//! 8-bit) integer". The paper never productionizes 8-bit; we implement it
//! as an extension and measure what reliable updates can and cannot rescue
//! at ~2.4 significant digits of storage.

use quda_dirac::{WilsonCloverOp, WilsonParams};
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::precision::{Double, Half, Quarter};
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_solvers::operator::{LinearOperator, MatPcOp};
use quda_solvers::params::SolverParams;
use quda_solvers::{bicgstab_reliable, blas};

fn dims() -> LatticeDims {
    LatticeDims::new(4, 4, 4, 4)
}

#[test]
fn quarter_matpc_approximates_double() {
    let d = dims();
    let cfg = weak_field(d, 0.1, 7);
    let wp = WilsonParams { mass: 0.3, c_sw: 1.0 };
    let hi = WilsonCloverOp::<Double>::from_config(&cfg, wp);
    let lo = WilsonCloverOp::<Quarter>::from_config(&cfg, wp);
    let host = random_spinor_field(d, 8);
    let mut x_hi = hi.alloc_spinor();
    x_hi.upload(&host, Parity::Odd);
    let mut x_lo = lo.alloc_spinor();
    x_lo.upload(&host, Parity::Odd);
    let (mut o_hi, mut a, mut b) = (hi.alloc_spinor(), hi.alloc_spinor(), hi.alloc_spinor());
    hi.apply_matpc(&mut o_hi, &x_hi, &mut a, &mut b, false);
    let (mut o_lo, mut c, mut e) = (lo.alloc_spinor(), lo.alloc_spinor(), lo.alloc_spinor());
    lo.apply_matpc(&mut o_lo, &x_lo, &mut c, &mut e, false);
    let mut num = 0.0;
    let mut den = 0.0;
    for cb in 0..o_hi.sites() {
        let hi_v = o_hi.get(cb);
        let lo_v = o_lo.get(cb).cast::<f64>();
        num += (hi_v - lo_v).norm_sqr();
        den += hi_v.norm_sqr();
    }
    let rel = (num / den).sqrt();
    // ~1/254 per element, amplified by the stencil sum: a few percent.
    assert!(rel < 0.08, "quarter-precision matvec error {rel}");
    assert!(rel > 1e-4, "suspiciously accurate for 8-bit storage: {rel}");
}

#[test]
fn double_quarter_reliable_updates_still_converge() {
    // Reliable updates recompute the truth in f64, so even 8-bit sloppy
    // iterations make progress — just with more frequent updates (δ must
    // be loose) and more iterations than double-half.
    let d = dims();
    let cfg = weak_field(d, 0.1, 9);
    let wp = WilsonParams { mass: 0.3, c_sw: 1.0 };
    let mut hi = MatPcOp::new(WilsonCloverOp::<Double>::from_config(&cfg, wp));
    let mut lo = MatPcOp::new(WilsonCloverOp::<Quarter>::from_config(&cfg, wp));
    let host = random_spinor_field(d, 10);
    let mut b = hi.alloc();
    b.upload(&host, Parity::Odd);
    let mut x = hi.alloc();
    blas::zero(&mut x);
    let params = SolverParams { tol: 1e-8, max_iter: 8000, delta: 0.3 };
    let res = bicgstab_reliable(&mut hi, &mut lo, &mut x, &b, &params);
    assert!(res.converged, "double-quarter failed: residual {}", res.final_residual);
    assert!(res.final_residual <= 1e-8);
    assert!(res.reliable_updates >= 2);
}

#[test]
fn quarter_needs_more_iterations_than_half() {
    let d = dims();
    let cfg = weak_field(d, 0.1, 11);
    let wp = WilsonParams { mass: 0.3, c_sw: 1.0 };
    let host = random_spinor_field(d, 12);
    let params = SolverParams { tol: 1e-8, max_iter: 8000, delta: 0.3 };

    let mut hi = MatPcOp::new(WilsonCloverOp::<Double>::from_config(&cfg, wp));
    let mut b = hi.alloc();
    b.upload(&host, Parity::Odd);

    let mut lo_half = MatPcOp::new(WilsonCloverOp::<Half>::from_config(&cfg, wp));
    let mut x1 = hi.alloc();
    blas::zero(&mut x1);
    let res_half = bicgstab_reliable(&mut hi, &mut lo_half, &mut x1, &b, &params);

    let mut lo_quarter = MatPcOp::new(WilsonCloverOp::<Quarter>::from_config(&cfg, wp));
    let mut x2 = hi.alloc();
    blas::zero(&mut x2);
    let res_quarter = bicgstab_reliable(&mut hi, &mut lo_quarter, &mut x2, &b, &params);

    assert!(res_half.converged && res_quarter.converged);
    assert!(
        res_quarter.iterations >= res_half.iterations,
        "quarter ({}) should not beat half ({}) in iterations",
        res_quarter.iterations,
        res_half.iterations
    );
    // The memory advantage is real though: 8-bit fields are half the size
    // of half-precision ones.
    let f_half = quda_fields::SpinorFieldCb::<Half>::new(d, false).device_bytes();
    let f_quarter = quda_fields::SpinorFieldCb::<Quarter>::new(d, false).device_bytes();
    assert!(f_quarter < f_half);
}
