//! Property tests for the elastic-resilience checkpoint format (ISSUE 8):
//! serialize → deserialize is bit-identical for all four precisions over
//! arbitrary (including odd-extent) local volumes, and corruption anywhere
//! in the buffer is rejected with a typed error — never a panic.

use proptest::prelude::*;
use quda_fields::precision::{Double, Half, Precision, Quarter, Single};
use quda_fields::SpinorFieldCb;
use quda_lattice::geometry::LatticeDims;
use quda_math::real::Real;
use quda_math::spinor::Spinor;
use quda_solvers::checkpoint::{CheckpointCounters, SolverCheckpoint};

/// Deterministically filled field: every site carries data derived from a
/// cheap LCG so payload bytes are dense and non-trivial at every precision.
fn filled<P: Precision>(dims: LatticeDims, open: [bool; 4], seed: u64) -> SpinorFieldCb<P> {
    let mut f = SpinorFieldCb::<P>::new_open(dims, open);
    let mut state = seed | 1;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        P::Arith::from_f64(((state >> 33) as i32 as f64) / 2.0e9)
    };
    for cb in 0..f.sites() {
        let mut sp = Spinor::<P::Arith>::zero();
        for s in 0..4 {
            for c in 0..3 {
                sp.s[s].c[c].re = next();
                sp.s[s].c[c].im = next();
            }
        }
        f.set(cb, &sp);
    }
    f
}

/// Round-trip the capture through bytes and back; assert the parsed
/// checkpoint, its re-serialization, and a restore-then-recapture are all
/// bit-identical to the original. Works uniformly over the storage
/// precision because the format carries raw storage bytes.
fn assert_round_trip<P: Precision>(dims: LatticeDims, open: [bool; 4], seed: u64, with_r: bool) {
    let x = filled::<P>(dims, open, seed);
    let r = filled::<P>(dims, open, seed ^ 0xdead_beef);
    let counters = CheckpointCounters {
        epoch: seed % 97,
        iterations: seed % 1031,
        matvecs_hi: seed % 13,
        matvecs_lo: seed % 2063,
        reliable_updates: seed % 7,
        recoveries: seed % 3,
        stalls: (seed % 2) as u32,
        r2: (seed as f64) * 1.0e-12 + 1.0e-30,
        maxrr: (seed as f64).sqrt() * 1.0e-6,
        last_update_r2: (seed as f64) * 1.0e-12,
    };
    let ck = SolverCheckpoint::capture(counters, &x, with_r.then_some(&r));
    let bytes = ck.to_bytes();
    let back = SolverCheckpoint::from_bytes(&bytes).expect("valid buffer must parse");
    assert_eq!(back, ck, "parsed checkpoint differs from capture");
    assert_eq!(back.to_bytes(), bytes, "re-serialization is not stable");
    // Restore into fresh fields and recapture: the bytes must be identical,
    // i.e. serialize/deserialize is the identity on the stored data.
    let mut x2 = SpinorFieldCb::<P>::new_open(dims, open);
    back.restore_x(&mut x2).expect("restore x");
    if with_r {
        let mut r2f = SpinorFieldCb::<P>::new_open(dims, open);
        back.restore_r(&mut r2f).expect("restore r");
        let again = SolverCheckpoint::capture(counters, &x2, Some(&r2f));
        assert_eq!(again.to_bytes(), bytes, "restore → recapture not bit-identical");
    } else {
        let again = SolverCheckpoint::capture(counters, &x2, None);
        assert_eq!(again.to_bytes(), bytes, "restore → recapture not bit-identical");
    }
}

/// Arbitrary asymmetric local volumes (extents must be even and >= 2 for
/// even-odd preconditioning — enforced by `LatticeDims::new`), including
/// the skinny 2-extent shapes a deep process-grid decomposition produces.
fn dims_strategy() -> impl Strategy<Value = LatticeDims> {
    (1usize..=3, 1usize..=3, 1usize..=3, 1usize..=3)
        .prop_map(|(x, y, z, t)| LatticeDims::new(2 * x, 2 * y, 2 * z, 2 * t))
}

fn open_strategy() -> impl Strategy<Value = [bool; 4]> {
    use proptest::bool::ANY;
    (ANY, ANY, ANY, ANY).prop_map(|(a, b, c, d)| [a, b, c, d])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn round_trip_bit_identical_all_precisions(
        dims in dims_strategy(),
        open in open_strategy(),
        seed in 0u64..1_000_000_000_000,
        with_r in proptest::bool::ANY,
    ) {
        assert_round_trip::<Double>(dims, open, seed, with_r);
        assert_round_trip::<Single>(dims, open, seed, with_r);
        assert_round_trip::<Half>(dims, open, seed, with_r);
        assert_round_trip::<Quarter>(dims, open, seed, with_r);
    }

    #[test]
    fn corruption_anywhere_is_a_typed_error_never_a_panic(
        dims in dims_strategy(),
        seed in 0u64..1_000_000_000_000,
        pos_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let x = filled::<Single>(dims, [false, true, false, true], seed);
        let ck = SolverCheckpoint::capture(CheckpointCounters::default(), &x, Some(&x));
        let bytes = ck.to_bytes();
        // Flip bits at an arbitrary position: FNV-1a is injective per byte
        // step, so any single-byte change must fail the checksum (or the
        // magic/version checks for a mangled prefix) — typed, not a panic.
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        let mut bad = bytes.clone();
        bad[pos] ^= mask;
        prop_assert!(SolverCheckpoint::from_bytes(&bad).is_err());
        // Truncation at an arbitrary point is also a typed rejection.
        let cut = (bytes.len() as f64 * pos_frac) as usize;
        prop_assert!(SolverCheckpoint::from_bytes(&bytes[..cut]).is_err());
    }
}
