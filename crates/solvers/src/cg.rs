//! Conjugate gradients on the normal equations (CGNR).
//!
//! The Wilson-clover matrix is non-Hermitian, so CG is applied to
//! `M̂† M̂ x = M̂† b` (Section II: "either Conjugate Gradients on the normal
//! equations (CGNE or CGNR) is used, or ... BiCGstab").

use crate::blas::{self, BlasCounters};
use crate::checkpoint::{self, CheckpointCounters, CheckpointSink, NoCheckpoint};
use crate::operator::{residual_norm2, traced, traced_iter, LinearOperator};
use crate::params::{SolveResult, SolverParams};
use quda_fields::precision::Precision;
use quda_fields::SpinorFieldCb;
use quda_obs::Phase;

/// Refresh the rollback checkpoint every this many CG iterations: cheap
/// enough to be negligible, frequent enough that a rollback loses little
/// progress (DESIGN.md §7).
const CHECKPOINT_EVERY: usize = 16;

/// Solve `M̂ x = b` via CG on the normal equations.
///
/// Like [`bicgstab_reliable`](crate::mixed::bicgstab_reliable), the solve
/// checkpoints the solution periodically and rolls back and rebuilds the
/// residual when a corrupted (non-finite) reduction is detected; a fault
/// reported by [`LinearOperator::fault`] aborts with
/// [`SolveResult::error`] set.
pub fn cgnr<P: Precision>(
    op: &mut dyn LinearOperator<P>,
    x: &mut SpinorFieldCb<P>,
    b: &SpinorFieldCb<P>,
    params: &SolverParams,
) -> SolveResult {
    cgnr_ckpt(op, x, b, params, &mut NoCheckpoint)
}

/// [`cgnr`] with an elastic-resilience checkpoint sink.
///
/// The snapshot (the iterate only — CGNR rebuilds its residual from `x` at
/// entry, so a resume is a warm start) is deposited at entry and at the
/// existing periodic rollback-checkpoint refresh; iteration/matvec counters
/// continue across incarnations.
pub fn cgnr_ckpt<P: Precision>(
    op: &mut dyn LinearOperator<P>,
    x: &mut SpinorFieldCb<P>,
    b: &SpinorFieldCb<P>,
    params: &SolverParams,
    sink: &mut dyn CheckpointSink,
) -> SolveResult {
    let mut c = BlasCounters::default();
    let tracer = op.tracer();

    // A resume snapshot installed by the elastic supervisor: warm-start
    // from the checkpointed iterate and continue its counters.
    let mut resumed: Option<CheckpointCounters> = None;
    if let Some(ck) = sink.resume() {
        let mut span = tracer.span(Phase::Recovery);
        span.set_bytes(ck.payload_bytes() as u64);
        if ck.restore_x(x).is_ok() {
            resumed = Some(ck.counters);
        }
    }
    let mut matvecs: u64 = resumed.map_or(0, |ctr| ctr.matvecs_hi);

    let b_local = traced(&tracer, Phase::Blas, || blas::norm2(b, &mut c));
    let b_norm2 = traced(&tracer, Phase::Reduce, || op.reduce(b_local));
    if b_norm2 == 0.0 {
        blas::zero(x);
        return SolveResult { converged: true, ..Default::default() };
    }

    // Normal-equation right-hand side b' = M̂† b (staged through a mutable
    // workspace so a partitioned operator may fill ghost zones).
    let mut bp = op.alloc();
    let mut b_work = op.alloc();
    blas::copy(&mut b_work, b, &mut c);
    op.apply_dagger(&mut bp, &mut b_work);
    matvecs += 1;
    let bp_norm2 = op.reduce(blas::norm2(&bp, &mut c));
    let target2 = params.tol * params.tol * bp_norm2;

    // r = b' − A x with A = M̂†M̂ (x may carry an initial guess).
    let mut mid = op.alloc();
    let mut r = op.alloc();
    op.apply(&mut mid, x);
    op.apply_dagger(&mut r, &mut mid);
    matvecs += 2;
    let mut rsq = op.reduce(blas::xmy_norm(&bp, &mut r, &mut c));

    let mut p = op.alloc();
    blas::copy(&mut p, &r, &mut c);
    let mut ap = op.alloc();
    // Rollback checkpoint of the solution, refreshed periodically.
    let mut checkpoint_x = op.alloc();
    blas::copy(&mut checkpoint_x, x, &mut c);
    let mut recoveries: u64 = 0;
    let mut abort_error: Option<String> = None;

    let mut iterations = resumed.map_or(0, |ctr| ctr.iterations as usize);
    let mut ckpt_epoch: u64 = resumed.map_or(0, |ctr| ctr.epoch);
    let mut converged = rsq <= target2;
    // Sized for the worst case so steady-state pushes never reallocate.
    let mut history = Vec::with_capacity(params.max_iter);
    // Deposit an elastic checkpoint (iterate only; CGNR resumes warm-start).
    let save = |sink: &mut dyn CheckpointSink,
                epoch: &mut u64,
                iterations: usize,
                matvecs: u64,
                rsq: f64,
                x: &SpinorFieldCb<P>| {
        *epoch += 1;
        checkpoint::deposit(
            sink,
            &tracer,
            CheckpointCounters {
                epoch: *epoch,
                iterations: iterations as u64,
                matvecs_hi: matvecs,
                r2: rsq,
                ..Default::default()
            },
            x,
            None,
        );
    };
    if sink.enabled() {
        save(&mut *sink, &mut ckpt_epoch, iterations, matvecs, rsq, x);
    }
    while !converged && iterations < params.max_iter {
        // A fault parked by a poisoned operator is terminal.
        if let Some(f) = op.fault() {
            abort_error = Some(f.message);
            break;
        }
        let iter_tag = iterations as u64 + 1;
        // Ap = M̂† M̂ p.
        traced_iter(&tracer, Phase::Matvec, iter_tag, || {
            op.apply(&mut mid, &mut p);
            op.apply_dagger(&mut ap, &mut mid);
        });
        matvecs += 2;
        let p_ap_local = traced(&tracer, Phase::Blas, || blas::cdot(&p, &ap, &mut c).re);
        let p_ap = traced(&tracer, Phase::Reduce, || op.reduce(p_ap_local));
        // NaN would sail through the positivity check below and poison x
        // via α, so non-finiteness must be tested first.
        let mut corrupt = !p_ap.is_finite();
        let mut rsq_new = rsq;
        if !corrupt {
            if p_ap <= 0.0 {
                break; // loss of positivity: numerical breakdown
            }
            let alpha = rsq / p_ap;
            let rsq_local = traced(&tracer, Phase::Blas, || {
                blas::axpy(alpha, &p, x, &mut c);
                blas::caxpy_norm(quda_math::complex::C64::new(-alpha, 0.0), &ap, &mut r, &mut c)
            });
            rsq_new = traced(&tracer, Phase::Reduce, || op.reduce(rsq_local));
            corrupt = !rsq_new.is_finite();
        }
        if corrupt {
            if let Some(f) = op.fault() {
                abort_error = Some(f.message);
                break;
            }
            recoveries += 1;
            if recoveries > crate::mixed::MAX_RECOVERIES {
                // Formatted at most once per solve, on the abort path that
                // ends the iteration loop.
                // quda-lint: allow(hot-alloc)
                abort_error = Some(format!(
                    "corrupted solver state persisted after {} rollbacks",
                    crate::mixed::MAX_RECOVERIES
                ));
                break;
            }
            // Roll back and rebuild r = b' − A x from the checkpoint.
            blas::copy(x, &checkpoint_x, &mut c);
            op.apply(&mut mid, x);
            op.apply_dagger(&mut r, &mut mid);
            matvecs += 2;
            rsq = op.reduce(blas::xmy_norm(&bp, &mut r, &mut c));
            blas::copy(&mut p, &r, &mut c);
            continue;
        }
        let beta = rsq_new / rsq;
        rsq = rsq_new;
        // p = r + β p.
        traced(&tracer, Phase::Blas, || blas::xpay(&r, beta, &mut p, &mut c));
        iterations += 1;
        history.push((rsq / bp_norm2.max(f64::MIN_POSITIVE)).sqrt());
        converged = rsq <= target2;
        if iterations % CHECKPOINT_EVERY == 0 {
            blas::copy(&mut checkpoint_x, x, &mut c);
            if sink.enabled() && !converged {
                save(&mut *sink, &mut ckpt_epoch, iterations, matvecs, rsq, x);
            }
        }
    }

    // Report the true residual of the original system.
    let mut rt = op.alloc();
    let true_r2 = residual_norm2(op, &mut rt, x, b, &mut c);
    matvecs += 1;
    let final_residual = (true_r2 / b_norm2).sqrt();
    SolveResult {
        converged: converged && abort_error.is_none(),
        iterations,
        matvecs,
        reliable_updates: 0,
        final_residual,
        op_flops: matvecs * op.flops_per_apply(),
        blas: c,
        residual_history: history,
        recoveries,
        comm_recoveries: 0,
        error: abort_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MatPcOp;
    use quda_dirac::{WilsonCloverOp, WilsonParams};
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_fields::precision::Double;
    use quda_lattice::geometry::{LatticeDims, Parity};

    fn setup(seed: u64) -> (MatPcOp<Double>, SpinorFieldCb<Double>) {
        let d = LatticeDims::new(4, 4, 4, 4);
        let cfg = weak_field(d, 0.15, seed);
        let op = WilsonCloverOp::<Double>::from_config(&cfg, WilsonParams { mass: 0.2, c_sw: 1.0 });
        let wrapped = MatPcOp::new(op);
        let host = random_spinor_field(d, seed + 50);
        let mut b = wrapped.alloc();
        b.upload(&host, Parity::Odd);
        (wrapped, b)
    }

    #[test]
    fn cgnr_converges_and_solves() {
        let (mut op, b) = setup(7);
        let mut x = op.alloc();
        blas::zero(&mut x);
        let res =
            cgnr(&mut op, &mut x, &b, &SolverParams { tol: 1e-10, max_iter: 1000, delta: 0.0 });
        assert!(res.converged, "residual {}", res.final_residual);
        assert!(res.final_residual < 1e-8);
    }

    #[test]
    fn cgnr_needs_more_matvecs_than_bicgstab() {
        // CGNR does 2 matvecs/iteration on the squared system; BiCGstab is
        // generally cheaper on these well-conditioned weak-field matrices —
        // the reason BiCGstab is the production solver (Section II).
        let (mut op, b) = setup(8);
        let mut x1 = op.alloc();
        blas::zero(&mut x1);
        let cg_res =
            cgnr(&mut op, &mut x1, &b, &SolverParams { tol: 1e-8, max_iter: 1000, delta: 0.0 });
        let mut x2 = op.alloc();
        blas::zero(&mut x2);
        let bi_res = crate::bicgstab::bicgstab(
            &mut op,
            &mut x2,
            &b,
            &SolverParams { tol: 1e-8, max_iter: 1000, delta: 0.0 },
        );
        assert!(cg_res.converged && bi_res.converged);
        assert!(
            cg_res.matvecs >= bi_res.matvecs,
            "cg {} vs bicgstab {}",
            cg_res.matvecs,
            bi_res.matvecs
        );
    }

    #[test]
    fn cgnr_recovers_from_corrupted_reduction() {
        use crate::test_faults::FaultyOp;
        let (op, b) = setup(10);
        // Call 9 corrupts a p·Ap reduction a few iterations into the solve.
        let mut op = FaultyOp::corrupting(op, 9, f64::NAN);
        let mut x = op.alloc();
        blas::zero(&mut x);
        let res =
            cgnr(&mut op, &mut x, &b, &SolverParams { tol: 1e-10, max_iter: 1000, delta: 0.0 });
        assert!(res.converged, "residual {} error {:?}", res.final_residual, res.error);
        assert!(res.recoveries >= 1, "expected a rollback, got {}", res.recoveries);
        assert!(res.final_residual < 1e-8);
    }

    #[test]
    fn cgnr_poisoned_operator_reports_error() {
        use crate::test_faults::FaultyOp;
        let (op, b) = setup(11);
        let mut op = FaultyOp::poisoned(op, "rank 1 is dead");
        let mut x = op.alloc();
        blas::zero(&mut x);
        let res =
            cgnr(&mut op, &mut x, &b, &SolverParams { tol: 1e-10, max_iter: 100, delta: 0.0 });
        assert!(!res.converged);
        assert_eq!(res.error.as_deref(), Some("rank 1 is dead"));
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let (mut op, b) = setup(9);
        let params = SolverParams { tol: 1e-9, max_iter: 1000, delta: 0.0 };
        let mut x_cold = op.alloc();
        blas::zero(&mut x_cold);
        let cold = cgnr(&mut op, &mut x_cold, &b, &params);
        // Restart from the converged solution: should take ~0 iterations.
        let mut x_warm = x_cold.clone();
        let warm = cgnr(&mut op, &mut x_warm, &b, &params);
        assert!(warm.iterations <= cold.iterations / 2);
    }
}
