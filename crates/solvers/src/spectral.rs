//! Spectral estimation: condition numbers of the normal operator.
//!
//! Section II asserts that "even-odd preconditioning is used to accelerate
//! the solution finding process" and that "the quark mass controls the
//! condition number of the matrix, and hence the convergence of such
//! iterative solvers". This module makes both statements measurable:
//! power iteration bounds the largest eigenvalue of `M̂†M̂`, inverse power
//! iteration (each step one CGNR solve) bounds the smallest, and their
//! ratio is the squared-condition number that governs CG-type convergence.

use crate::blas::{self, BlasCounters};
use crate::operator::LinearOperator;
use crate::params::SolverParams;
use quda_fields::precision::Precision;
use quda_fields::SpinorFieldCb;
use quda_math::real::Real;

/// Result of a spectral probe.
#[derive(Copy, Clone, Debug)]
pub struct SpectrumEstimate {
    /// Largest eigenvalue of `M̂†M̂` (Rayleigh quotient at convergence).
    pub lambda_max: f64,
    /// Smallest eigenvalue of `M̂†M̂`.
    pub lambda_min: f64,
}

impl SpectrumEstimate {
    /// Condition number of the normal operator, `λmax/λmin` — the square of
    /// the condition number of `M̂` itself.
    pub fn condition_normal(&self) -> f64 {
        self.lambda_max / self.lambda_min
    }
}

fn normalize<P: Precision>(
    x: &mut SpinorFieldCb<P>,
    op: &mut dyn LinearOperator<P>,
    c: &mut BlasCounters,
) -> f64 {
    let n2 = op.reduce(blas::norm2(x, c));
    let inv = 1.0 / n2.sqrt();
    for cb in 0..x.sites() {
        let v = x.get(cb).scale_re(P::Arith::from_f64(inv));
        x.set(cb, &v);
    }
    n2.sqrt()
}

/// Power iteration for the largest eigenvalue of `A = M̂†M̂`.
pub fn lambda_max<P: Precision>(
    op: &mut dyn LinearOperator<P>,
    seed_field: &SpinorFieldCb<P>,
    iterations: usize,
) -> f64 {
    let mut c = BlasCounters::default();
    let mut x = seed_field.clone();
    normalize(&mut x, op, &mut c);
    let mut mid = op.alloc();
    let mut ax = op.alloc();
    let mut lambda = 0.0;
    for _ in 0..iterations {
        op.apply(&mut mid, &mut x);
        op.apply_dagger(&mut ax, &mut mid);
        // Rayleigh quotient <x, Ax> (x normalized).
        lambda = op.reduce_c(blas::cdot(&x, &ax, &mut c)).re;
        std::mem::swap(&mut x, &mut ax);
        normalize(&mut x, op, &mut c);
    }
    lambda
}

/// Inverse power iteration for the smallest eigenvalue of `A = M̂†M̂`:
/// each step solves `M̂ y = x` (CGNR), i.e. applies `A⁻¹ = M̂⁻¹ M̂⁻†`
/// implicitly through the normal equations.
pub fn lambda_min<P: Precision>(
    op: &mut dyn LinearOperator<P>,
    seed_field: &SpinorFieldCb<P>,
    iterations: usize,
    solve_tol: f64,
) -> f64 {
    let mut c = BlasCounters::default();
    let mut x = seed_field.clone();
    normalize(&mut x, op, &mut c);
    let params = SolverParams { tol: solve_tol, max_iter: 10_000, delta: 0.0 };
    let mut y = op.alloc();
    let mut lambda = f64::INFINITY;
    for _ in 0..iterations {
        // y ≈ A⁻¹ x: two triangular half-solves via one CGNR on A y = x
        // (cgnr solves M̂ y = x in the least-squares sense; for the
        // eigenvalue of A we need A⁻¹, i.e. solve A y = x directly).
        blas::zero(&mut y);
        solve_normal(op, &mut y, &x, &params, &mut c);
        // Rayleigh quotient of A at the new vector: λ_min ≈ <y,x>/<y,Ay>
        // ... simpler: x normalized, y = A⁻¹x, so <x, y> ≈ 1/λ along the
        // dominant small mode.
        let xy = op.reduce_c(blas::cdot(&x, &y, &mut c)).re;
        lambda = 1.0 / xy;
        std::mem::swap(&mut x, &mut y);
        normalize(&mut x, op, &mut c);
    }
    lambda
}

/// Solve `M̂†M̂ y = b` by running CGNR against `M̂†` then `M̂`… which is
/// exactly CG on the normal operator with right-hand side `M̂† (M̂⁻† b)`.
/// We avoid double work by noting `A y = b  ⇔  M̂ y = z, M̂† z = b`; both
/// stages reuse [`cgnr`].
fn solve_normal<P: Precision>(
    op: &mut dyn LinearOperator<P>,
    y: &mut SpinorFieldCb<P>,
    b: &SpinorFieldCb<P>,
    params: &SolverParams,
    c: &mut BlasCounters,
) {
    // Stage 1: M̂† z = b. CGNR solves M̂ x = b; for the dagger system swap
    // roles by solving with the adjoint operator: wrap via closure is not
    // possible with the trait, so use CG on A directly:
    // A y = b with A Hermitian positive definite — plain CG.
    let target2 = params.tol * params.tol * op.reduce(blas::norm2(b, c));
    let mut r = op.alloc();
    blas::copy(&mut r, b, c); // y = 0 ⇒ r = b
    let mut p = op.alloc();
    blas::copy(&mut p, &r, c);
    let mut mid = op.alloc();
    let mut ap = op.alloc();
    let mut rsq = op.reduce(blas::norm2(&r, c));
    let mut it = 0;
    while rsq > target2 && it < params.max_iter {
        op.apply(&mut mid, &mut p);
        op.apply_dagger(&mut ap, &mut mid);
        let p_ap = op.reduce_c(blas::cdot(&p, &ap, c)).re;
        if p_ap <= 0.0 {
            break;
        }
        let alpha = rsq / p_ap;
        blas::axpy(alpha, &p, y, c);
        let rsq_new =
            op.reduce(blas::caxpy_norm(quda_math::complex::C64::new(-alpha, 0.0), &ap, &mut r, c));
        let beta = rsq_new / rsq;
        rsq = rsq_new;
        blas::xpay(&r, beta, &mut p, c);
        it += 1;
    }
}

/// Convenience: estimate both ends of the spectrum.
pub fn estimate_spectrum<P: Precision>(
    op: &mut dyn LinearOperator<P>,
    seed_field: &SpinorFieldCb<P>,
    power_iters: usize,
    inverse_iters: usize,
) -> SpectrumEstimate {
    SpectrumEstimate {
        lambda_max: lambda_max(op, seed_field, power_iters),
        lambda_min: lambda_min(op, seed_field, inverse_iters, 1e-10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MatPcOp;
    use quda_dirac::{WilsonCloverOp, WilsonParams};
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_fields::precision::Double;
    use quda_lattice::geometry::{LatticeDims, Parity};

    fn op_with_mass(mass: f64, seed: u64) -> MatPcOp<Double> {
        let d = LatticeDims::new(4, 4, 2, 4);
        let cfg = weak_field(d, 0.15, seed);
        MatPcOp::new(WilsonCloverOp::from_config(&cfg, WilsonParams { mass, c_sw: 1.0 }))
    }

    fn seed_vec(op: &MatPcOp<Double>, seed: u64) -> SpinorFieldCb<Double> {
        let d = op.op.dims;
        let host = random_spinor_field(d, seed);
        let mut x = op.op.alloc_spinor();
        x.upload(&host, Parity::Odd);
        x
    }

    #[test]
    fn free_field_spectrum_is_exact() {
        // On the unit gauge field M̂ is a (shifted) circulant: its extreme
        // eigenvalues are analytically bounded by the constant mode
        // λ_const = s − 16/s with s = 4+m, and the spectrum of A contains
        // λ_const². Power iteration must return something ≥ that and ≤ the
        // trivial upper bound (s + 16/s)².
        let d = LatticeDims::new(4, 4, 2, 4);
        let cfg = quda_fields::host::GaugeConfig::unit(d);
        let mut op = MatPcOp::new(WilsonCloverOp::<Double>::from_config(
            &cfg,
            WilsonParams { mass: 0.5, c_sw: 0.0 },
        ));
        let seed = seed_vec(&op, 3);
        let lmax = lambda_max(&mut op, &seed, 40);
        let s = 4.5f64;
        let upper = (s + 16.0 / s) * (s + 16.0 / s);
        let lower = (s - 16.0 / s) * (s - 16.0 / s);
        assert!(lmax <= upper * 1.001, "λmax {lmax} above {upper}");
        assert!(lmax >= lower * 0.999, "λmax {lmax} below constant-mode bound {lower}");
    }

    #[test]
    fn condition_number_grows_as_mass_shrinks() {
        // "The quark mass controls the condition number of the matrix"
        // (Section II).
        let mut heavy = op_with_mass(1.0, 5);
        let seed_h = seed_vec(&heavy, 6);
        let k_heavy = estimate_spectrum(&mut heavy, &seed_h, 30, 8).condition_normal();
        let mut light = op_with_mass(0.05, 5);
        let seed_l = seed_vec(&light, 6);
        let k_light = estimate_spectrum(&mut light, &seed_l, 30, 8).condition_normal();
        assert!(
            k_light > k_heavy,
            "lighter quark must be worse conditioned: κ_light={k_light:.2} κ_heavy={k_heavy:.2}"
        );
    }

    #[test]
    fn spectrum_is_positive_and_ordered() {
        let mut op = op_with_mass(0.3, 9);
        let seed = seed_vec(&op, 10);
        let est = estimate_spectrum(&mut op, &seed, 30, 8);
        assert!(est.lambda_min > 0.0);
        assert!(est.lambda_max > est.lambda_min);
        assert!(est.condition_normal() > 1.0);
    }

    #[test]
    fn solver_iterations_track_condition_number() {
        // BiCGstab iteration counts on the same right-hand side should
        // order with the measured condition numbers.
        let host = random_spinor_field(LatticeDims::new(4, 4, 2, 4), 20);
        let mut counts = Vec::new();
        let mut kappas = Vec::new();
        for mass in [1.0, 0.1] {
            let mut op = op_with_mass(mass, 21);
            let mut b = op.alloc();
            b.upload(&host, Parity::Odd);
            let mut x = op.alloc();
            blas::zero(&mut x);
            let res = crate::bicgstab::bicgstab(
                &mut op,
                &mut x,
                &b,
                &SolverParams { tol: 1e-9, max_iter: 2000, delta: 0.0 },
            );
            assert!(res.converged);
            counts.push(res.iterations);
            let seed = seed_vec(&op, 22);
            kappas.push(estimate_spectrum(&mut op, &seed, 25, 6).condition_normal());
        }
        assert!(kappas[1] > kappas[0]);
        assert!(counts[1] >= counts[0], "counts {counts:?} vs kappas {kappas:?}");
    }
}
