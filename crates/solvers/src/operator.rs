//! The operator abstraction the Krylov solvers run against.
//!
//! Both the single-device operator (`quda-dirac`) and the multi-GPU
//! operator (`quda-multigpu`) implement [`LinearOperator`]. The trait also
//! carries the *global reduction* hook: on a partitioned lattice every blas
//! reduction is only a local partial sum, and "the only other required
//! addition to the code was the insertion of MPI reductions for each of the
//! linear algebra reduction kernels" (Section VI-E).

use crate::blas::BlasCounters;
use quda_dirac::WilsonCloverOp;
use quda_fields::precision::Precision;
use quda_fields::SpinorFieldCb;
use quda_lattice::geometry::LatticeDims;
use quda_math::complex::C64;
use quda_obs::{Phase, Tracer};

/// A fault recorded by an operator implementation — typically a
/// communication failure (dead peer, exhausted retries) on a partitioned
/// lattice (DESIGN.md §7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpFault {
    /// Human-readable description of the underlying failure.
    pub message: String,
}

/// A linear operator on single-parity spinor fields.
pub trait LinearOperator<P: Precision> {
    /// Lattice extents of the (local) domain.
    fn dims(&self) -> LatticeDims;
    /// Allocate a compatible workspace vector.
    fn alloc(&self) -> SpinorFieldCb<P>;
    /// `out ← M̂ input`.
    ///
    /// `input` is mutable because a partitioned implementation fills its
    /// ghost end zone in place before the stencil reads it — exactly what
    /// the MPI face exchange does to the operand buffer (Section VI-C).
    fn apply(&mut self, out: &mut SpinorFieldCb<P>, input: &mut SpinorFieldCb<P>);
    /// `out ← M̂† input`.
    fn apply_dagger(&mut self, out: &mut SpinorFieldCb<P>, input: &mut SpinorFieldCb<P>);
    /// Effective flops of one `apply`.
    fn flops_per_apply(&self) -> u64;
    /// Globalize a local real reduction (allreduce on a partitioned run).
    fn reduce(&mut self, local: f64) -> f64 {
        local
    }
    /// Globalize a local complex reduction.
    fn reduce_c(&mut self, local: C64) -> C64 {
        local
    }
    /// Globalize a batch of local real reductions in place, one fused
    /// collective for the whole slice.
    ///
    /// The contract: component `k` on return is bit-identical to
    /// `reduce(locals[k])` — a vector allreduce combines every component
    /// in the same rank order as a scalar allreduce, so the blocked
    /// solvers can fuse the per-RHS reductions of one algorithmic point
    /// (packing complex values as re/im pairs) into a single collective
    /// without perturbing any member's value. The default loops
    /// [`LinearOperator::reduce`], which is exact for single-device
    /// operators where reduction is the identity.
    fn reduce_vec(&mut self, locals: &mut [f64]) {
        for v in locals.iter_mut() {
            *v = self.reduce(*v);
        }
    }
    /// Number of local data sites.
    fn sites(&self) -> usize {
        self.dims().half_volume()
    }
    /// Batched `outs[r] ← M̂ ins[r]` for every `r` with `active[r]`.
    ///
    /// The default loops [`LinearOperator::apply`] per RHS; a partitioned
    /// implementation overrides it with a fused sweep that reads each
    /// gauge link once per site and ships one face message per direction
    /// for the whole block. The contract every override must keep: per
    /// active RHS the output is **bit-identical** to a single `apply`,
    /// and inactive slots are untouched — that is what lets the blocked
    /// solvers freeze converged systems without perturbing the rest.
    fn apply_multi(
        &mut self,
        outs: &mut [SpinorFieldCb<P>],
        ins: &mut [SpinorFieldCb<P>],
        active: &[bool],
    ) {
        for ((out, input), _) in outs.iter_mut().zip(ins.iter_mut()).zip(active).filter(|(_, &a)| a)
        {
            self.apply(out, input);
        }
    }
    /// Batched `outs[r] ← M̂† ins[r]`; same contract as
    /// [`LinearOperator::apply_multi`].
    fn apply_dagger_multi(
        &mut self,
        outs: &mut [SpinorFieldCb<P>],
        ins: &mut [SpinorFieldCb<P>],
        active: &[bool],
    ) {
        for ((out, input), _) in outs.iter_mut().zip(ins.iter_mut()).zip(active).filter(|(_, &a)| a)
        {
            self.apply_dagger(out, input);
        }
    }
    /// A pending fault recorded by the implementation, if any.
    ///
    /// A partitioned operator cannot return `Result` from the hot
    /// `apply`/`reduce` paths without penalizing every uniform-precision
    /// call site, so a failed exchange or reduction instead *poisons* the
    /// operator: `apply` becomes a no-op, `reduce` returns NaN, and the
    /// original typed error is parked here for the solvers to poll at
    /// iteration boundaries. The default (single-device) implementation
    /// never faults.
    fn fault(&self) -> Option<OpFault> {
        None
    }
    /// The phase recorder handle for this operator's rank. The default
    /// (single-device) implementation returns the disabled tracer, so
    /// solver instrumentation is free unless a traced parallel operator
    /// is underneath.
    fn tracer(&self) -> Tracer {
        Tracer::disabled()
    }
}

/// Run `f` inside a span of `phase` on `tracer` — sugar keeping the
/// solver loops readable where a guard binding would be noise.
pub fn traced<R>(tracer: &Tracer, phase: Phase, f: impl FnOnce() -> R) -> R {
    let _span = tracer.span(phase);
    f()
}

/// Like [`traced`], tagging the span with the solver iteration.
pub fn traced_iter<R>(tracer: &Tracer, phase: Phase, iter: u64, f: impl FnOnce() -> R) -> R {
    let mut span = tracer.span(phase);
    span.set_iter(iter);
    f()
}

/// Single-device even-odd preconditioned Wilson-clover operator with owned
/// scratch space.
pub struct MatPcOp<P: Precision> {
    /// The underlying operator and device fields.
    pub op: WilsonCloverOp<P>,
    tmp1: SpinorFieldCb<P>,
    tmp2: SpinorFieldCb<P>,
}

impl<P: Precision> MatPcOp<P> {
    /// Wrap an operator, allocating workspaces.
    pub fn new(op: WilsonCloverOp<P>) -> Self {
        let tmp1 = op.alloc_spinor();
        let tmp2 = op.alloc_spinor();
        MatPcOp { op, tmp1, tmp2 }
    }
}

impl<P: Precision> LinearOperator<P> for MatPcOp<P> {
    fn dims(&self) -> LatticeDims {
        self.op.dims
    }

    fn alloc(&self) -> SpinorFieldCb<P> {
        self.op.alloc_spinor()
    }

    fn apply(&mut self, out: &mut SpinorFieldCb<P>, input: &mut SpinorFieldCb<P>) {
        self.op.apply_matpc(out, input, &mut self.tmp1, &mut self.tmp2, false);
    }

    fn apply_dagger(&mut self, out: &mut SpinorFieldCb<P>, input: &mut SpinorFieldCb<P>) {
        self.op.apply_matpc(out, input, &mut self.tmp1, &mut self.tmp2, true);
    }

    fn flops_per_apply(&self) -> u64 {
        self.op.dims.half_volume() as u64 * quda_dirac::flops::MATPC_FLOPS_PER_SITE
    }
}

/// Compute the residual `r ← b − M̂ x` and return the *global* `‖r‖²`.
pub fn residual_norm2<P: Precision>(
    op: &mut dyn LinearOperator<P>,
    r: &mut SpinorFieldCb<P>,
    x: &mut SpinorFieldCb<P>,
    b: &SpinorFieldCb<P>,
    counters: &mut BlasCounters,
) -> f64 {
    let tracer = op.tracer();
    traced(&tracer, Phase::Matvec, || op.apply(r, x));
    let local = traced(&tracer, Phase::Blas, || crate::blas::xmy_norm(b, r, counters));
    traced(&tracer, Phase::Reduce, || op.reduce(local))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_dirac::WilsonParams;
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_fields::precision::Double;
    use quda_lattice::geometry::Parity;

    #[test]
    fn matpc_op_applies_and_counts_flops() {
        let d = LatticeDims::new(4, 4, 2, 4);
        let cfg = weak_field(d, 0.1, 1);
        let op = WilsonCloverOp::<Double>::from_config(&cfg, WilsonParams { mass: 0.3, c_sw: 1.0 });
        let mut wrapped = MatPcOp::new(op);
        let host = random_spinor_field(d, 2);
        let mut x = wrapped.alloc();
        x.upload(&host, Parity::Odd);
        let mut out = wrapped.alloc();
        wrapped.apply(&mut out, &mut x);
        assert!(out.norm_sqr() > 0.0);
        assert_eq!(wrapped.flops_per_apply(), d.half_volume() as u64 * 3696);
        // Default reductions are identity.
        assert_eq!(wrapped.reduce(2.5), 2.5);
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let d = LatticeDims::new(4, 4, 2, 4);
        let cfg = weak_field(d, 0.1, 5);
        let op = WilsonCloverOp::<Double>::from_config(&cfg, WilsonParams { mass: 0.3, c_sw: 1.0 });
        let mut wrapped = MatPcOp::new(op);
        let host = random_spinor_field(d, 9);
        let mut x = wrapped.alloc();
        x.upload(&host, Parity::Odd);
        let mut b = wrapped.alloc();
        wrapped.apply(&mut b, &mut x);
        let mut r = wrapped.alloc();
        let mut c = BlasCounters::default();
        let n = residual_norm2(&mut wrapped, &mut r, &mut x, &b, &mut c);
        assert!(n < 1e-20);
    }
}
