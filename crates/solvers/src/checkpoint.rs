//! Solver checkpoints for elastic resilience (DESIGN.md §12).
//!
//! A [`SolverCheckpoint`] is a consistent snapshot of one rank's share of a
//! Krylov solve — the high-precision iterate, optionally the true residual
//! vector, and the scalar solver counters — taken at a reliable-update
//! boundary (the natural consistent cut: the update decision is made from a
//! *globally reduced* residual norm, so every rank takes the same
//! checkpoints at the same iterations without any extra collectives).
//!
//! The wire format is versioned and checksummed so a checkpoint written by
//! one world incarnation can be validated before a replacement world trusts
//! it: `"QCKP"` magic, format version, precision tag, local lattice
//! geometry, the counter block, the raw *storage bytes* of every field
//! array (bit-exact — no quantization round trip, so serialize/deserialize
//! is the identity for all four precisions), and a trailing FNV-1a-64
//! checksum over everything that precedes it. Corruption anywhere in the
//! buffer surfaces as a typed [`CheckpointError`], never a panic.
//!
//! Solvers do not talk to storage directly: they hand snapshots to a
//! [`CheckpointSink`] and ask it for a resume point at entry. The
//! [`NoCheckpoint`] sink (the default for the classic entry points) reports
//! itself disabled so the non-elastic hot path does literally zero extra
//! work. There is no RNG state to capture — every solver in this crate is
//! deterministic — and comm sequence state is deliberately *not* included:
//! a replacement world rebuilds its links (and their sequence numbers)
//! from scratch.

use quda_fields::precision::{Precision, PrecisionTag};
use quda_fields::SpinorFieldCb;
use quda_lattice::geometry::LatticeDims;
use quda_obs::{Phase, Tracer};
use std::fmt;

/// Leading magic of every serialized checkpoint.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"QCKP";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Why a checkpoint buffer was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Buffer ends before a required section.
    Truncated {
        /// Bytes the section needs.
        expected: usize,
        /// Bytes actually remaining.
        got: usize,
    },
    /// Buffer does not start with [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// Format version this build cannot read.
    UnsupportedVersion(u16),
    /// Trailing checksum does not match the body.
    BadChecksum {
        /// Checksum carried in the buffer.
        expected: u64,
        /// Checksum recomputed over the body.
        got: u64,
    },
    /// Precision tag byte is not a known precision.
    BadPrecisionTag(u8),
    /// Bytes remain after the last section.
    TrailingBytes(usize),
    /// Restore target has a different storage precision.
    PrecisionMismatch {
        /// Precision the checkpoint was captured at.
        stored: PrecisionTag,
        /// Precision of the restore target.
        requested: PrecisionTag,
    },
    /// Restore target has different lattice geometry or ghost shape.
    GeometryMismatch,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { expected, got } => {
                write!(f, "checkpoint truncated: section needs {expected} bytes, {got} remain")
            }
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::BadChecksum { expected, got } => write!(
                f,
                "checkpoint checksum mismatch: trailer says {expected:#018x}, body hashes to {got:#018x}"
            ),
            CheckpointError::BadPrecisionTag(b) => {
                write!(f, "unknown precision tag byte {b:#04x}")
            }
            CheckpointError::TrailingBytes(n) => {
                write!(f, "{n} unexpected bytes after the last checkpoint section")
            }
            CheckpointError::PrecisionMismatch { stored, requested } => write!(
                f,
                "checkpoint holds {} data but {} was requested",
                stored.name(),
                requested.name()
            ),
            CheckpointError::GeometryMismatch => {
                write!(f, "checkpoint geometry does not match the restore target")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Scalar solver state captured alongside the field payloads.
///
/// `epoch` is the checkpoint sequence number within one solve — identical
/// across ranks because checkpoints are taken at collectively decided
/// reliable-update boundaries, which is what lets a supervisor pick a
/// globally consistent snapshot by epoch alone.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CheckpointCounters {
    /// Checkpoint sequence number (1-based; 1 is the solve-entry snapshot).
    pub epoch: u64,
    /// Krylov iterations completed.
    pub iterations: u64,
    /// High-precision operator applications so far.
    pub matvecs_hi: u64,
    /// Sloppy-precision operator applications so far.
    pub matvecs_lo: u64,
    /// Reliable updates performed so far.
    pub reliable_updates: u64,
    /// Corruption rollbacks performed so far.
    pub recoveries: u64,
    /// Consecutive non-improving reliable updates (stall detector state).
    pub stalls: u32,
    /// True residual norm² at the checkpoint.
    pub r2: f64,
    /// Running maximum of the iterated residual norm since the last update.
    pub maxrr: f64,
    /// True residual norm² at the previous reliable update.
    pub last_update_r2: f64,
}

/// Raw little-endian storage bytes of one field's arrays.
#[derive(Clone, Debug, PartialEq, Eq)]
struct FieldPayload {
    data: Vec<u8>,
    norm: Vec<u8>,
    side_ghost: [Vec<u8>; 3],
    side_norm: [Vec<u8>; 3],
}

impl FieldPayload {
    fn byte_len(&self) -> usize {
        // Rank-local buffer-size accounting, not a numeric reduction.
        self.data.len()
            + self.norm.len()
            + self.side_ghost.iter().map(Vec::len).sum::<usize>() // quda-lint: allow(global-reduce)
            + self.side_norm.iter().map(Vec::len).sum::<usize>() // quda-lint: allow(global-reduce)
    }
}

fn encode_field<P: Precision>(f: &SpinorFieldCb<P>) -> FieldPayload {
    let mut data = Vec::with_capacity(f.data.len() * P::STORAGE_BYTES);
    for &e in &f.data {
        P::elem_to_le_bytes(e, &mut data);
    }
    let mut norm = Vec::with_capacity(f.norm.len() * 4);
    for &n in &f.norm {
        norm.extend_from_slice(&n.to_le_bytes());
    }
    let side_ghost = std::array::from_fn(|d| {
        let mut out = Vec::with_capacity(f.side_ghost[d].len() * P::STORAGE_BYTES);
        for &e in &f.side_ghost[d] {
            P::elem_to_le_bytes(e, &mut out);
        }
        out
    });
    let side_norm = std::array::from_fn(|d| {
        let mut out = Vec::with_capacity(f.side_norm[d].len() * 4);
        for &n in &f.side_norm[d] {
            out.extend_from_slice(&n.to_le_bytes());
        }
        out
    });
    FieldPayload { data, norm, side_ghost, side_norm }
}

fn decode_elems<P: Precision>(bytes: &[u8], out: &mut [P::Elem]) -> Result<(), CheckpointError> {
    if bytes.len() != out.len() * P::STORAGE_BYTES {
        return Err(CheckpointError::GeometryMismatch);
    }
    for (slot, chunk) in out.iter_mut().zip(bytes.chunks_exact(P::STORAGE_BYTES)) {
        *slot = P::elem_from_le_bytes(chunk).ok_or(CheckpointError::GeometryMismatch)?;
    }
    Ok(())
}

fn decode_norms(bytes: &[u8], out: &mut [f32]) -> Result<(), CheckpointError> {
    if bytes.len() != out.len() * 4 {
        return Err(CheckpointError::GeometryMismatch);
    }
    for (slot, chunk) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *slot =
            f32::from_le_bytes(chunk.try_into().map_err(|_| CheckpointError::GeometryMismatch)?);
    }
    Ok(())
}

fn decode_field<P: Precision>(
    payload: &FieldPayload,
    f: &mut SpinorFieldCb<P>,
) -> Result<(), CheckpointError> {
    decode_elems::<P>(&payload.data, &mut f.data)?;
    decode_norms(&payload.norm, &mut f.norm)?;
    for d in 0..3 {
        decode_elems::<P>(&payload.side_ghost[d], &mut f.side_ghost[d])?;
        decode_norms(&payload.side_norm[d], &mut f.side_norm[d])?;
    }
    Ok(())
}

/// FNV-1a 64-bit hash — small, dependency-free, and plenty for detecting
/// storage corruption (the comm layer's frame checksum guards the wire; this
/// guards the checkpoint at rest).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One rank's snapshot of a solve: counters plus the high-precision iterate
/// and (for reliable-update solvers) the true residual vector.
#[derive(Clone, Debug, PartialEq)]
pub struct SolverCheckpoint {
    /// Scalar solver state.
    pub counters: CheckpointCounters,
    tag: PrecisionTag,
    dims: [u32; 4],
    open: [bool; 4],
    x: FieldPayload,
    r: Option<FieldPayload>,
}

impl SolverCheckpoint {
    /// Snapshot `x` (and optionally the true residual `r`) plus `counters`.
    ///
    /// The raw storage bytes are copied, so the snapshot round-trips
    /// bit-identically at every precision.
    pub fn capture<P: Precision>(
        counters: CheckpointCounters,
        x: &SpinorFieldCb<P>,
        r: Option<&SpinorFieldCb<P>>,
    ) -> SolverCheckpoint {
        SolverCheckpoint {
            counters,
            tag: P::TAG,
            dims: [
                x.dims.extent(0) as u32,
                x.dims.extent(1) as u32,
                x.dims.extent(2) as u32,
                x.dims.extent(3) as u32,
            ],
            open: x.open,
            x: encode_field(x),
            r: r.map(encode_field),
        }
    }

    /// The storage precision the snapshot was captured at.
    pub fn precision(&self) -> PrecisionTag {
        self.tag
    }

    /// Local lattice extents of the captured fields.
    pub fn dims(&self) -> LatticeDims {
        LatticeDims::new(
            self.dims[0] as usize,
            self.dims[1] as usize,
            self.dims[2] as usize,
            self.dims[3] as usize,
        )
    }

    /// Ghost-zone configuration of the captured fields.
    pub fn open(&self) -> [bool; 4] {
        self.open
    }

    /// Whether the snapshot carries the true residual vector.
    pub fn has_residual(&self) -> bool {
        self.r.is_some()
    }

    /// Total field-payload bytes (telemetry; excludes the fixed header).
    pub fn payload_bytes(&self) -> usize {
        self.x.byte_len() + self.r.as_ref().map_or(0, FieldPayload::byte_len)
    }

    fn check_target<P: Precision>(&self, f: &SpinorFieldCb<P>) -> Result<(), CheckpointError> {
        if P::TAG != self.tag {
            return Err(CheckpointError::PrecisionMismatch { stored: self.tag, requested: P::TAG });
        }
        if f.dims != self.dims() || f.open != self.open {
            return Err(CheckpointError::GeometryMismatch);
        }
        Ok(())
    }

    /// Restore the iterate into `x` (geometry and precision must match).
    pub fn restore_x<P: Precision>(&self, x: &mut SpinorFieldCb<P>) -> Result<(), CheckpointError> {
        self.check_target(x)?;
        decode_field(&self.x, x)
    }

    /// Restore the true residual into `r`. Fails with
    /// [`CheckpointError::GeometryMismatch`] if the snapshot carries none.
    pub fn restore_r<P: Precision>(&self, r: &mut SpinorFieldCb<P>) -> Result<(), CheckpointError> {
        self.check_target(r)?;
        let payload = self.r.as_ref().ok_or(CheckpointError::GeometryMismatch)?;
        decode_field(payload, r)
    }

    /// Serialize to the versioned, checksummed wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_bytes() + 256);
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.push(self.tag.to_byte());
        out.push(u8::from(self.r.is_some()));
        for d in self.dims {
            out.extend_from_slice(&d.to_le_bytes());
        }
        let mut open_mask = 0u8;
        for (i, &o) in self.open.iter().enumerate() {
            if o {
                open_mask |= 1 << i;
            }
        }
        out.push(open_mask);
        let c = &self.counters;
        for v in
            [c.epoch, c.iterations, c.matvecs_hi, c.matvecs_lo, c.reliable_updates, c.recoveries]
        {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&c.stalls.to_le_bytes());
        for v in [c.r2, c.maxrr, c.last_update_r2] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        write_payload(&mut out, &self.x);
        if let Some(r) = &self.r {
            write_payload(&mut out, r);
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parse and validate a serialized checkpoint.
    ///
    /// The trailing checksum is verified *first*, so corruption anywhere in
    /// the buffer — header, counters, payload, or the checksum itself —
    /// surfaces as [`CheckpointError::BadChecksum`] (or `Truncated` for a
    /// short buffer) rather than a misparse.
    pub fn from_bytes(bytes: &[u8]) -> Result<SolverCheckpoint, CheckpointError> {
        if bytes.len() < 8 {
            return Err(CheckpointError::Truncated { expected: 8, got: bytes.len() });
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let expected = u64::from_le_bytes(
            trailer.try_into().map_err(|_| CheckpointError::BadChecksum { expected: 0, got: 0 })?,
        );
        let got = fnv1a(body);
        if got != expected {
            return Err(CheckpointError::BadChecksum { expected, got });
        }
        let mut cur = Cursor { buf: body, pos: 0 };
        if cur.take(4)? != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = cur.u16()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let tag_byte = cur.u8()?;
        let tag =
            PrecisionTag::from_byte(tag_byte).ok_or(CheckpointError::BadPrecisionTag(tag_byte))?;
        let has_r = cur.u8()? != 0;
        let dims = [cur.u32()?, cur.u32()?, cur.u32()?, cur.u32()?];
        let open_mask = cur.u8()?;
        let open = std::array::from_fn(|i| open_mask & (1 << i) != 0);
        let counters = CheckpointCounters {
            epoch: cur.u64()?,
            iterations: cur.u64()?,
            matvecs_hi: cur.u64()?,
            matvecs_lo: cur.u64()?,
            reliable_updates: cur.u64()?,
            recoveries: cur.u64()?,
            stalls: cur.u32()?,
            r2: cur.f64()?,
            maxrr: cur.f64()?,
            last_update_r2: cur.f64()?,
        };
        let x = read_payload(&mut cur)?;
        let r = if has_r { Some(read_payload(&mut cur)?) } else { None };
        let remaining = body.len() - cur.pos;
        if remaining != 0 {
            return Err(CheckpointError::TrailingBytes(remaining));
        }
        Ok(SolverCheckpoint { counters, tag, dims, open, x, r })
    }
}

fn write_payload(out: &mut Vec<u8>, p: &FieldPayload) {
    let sections: [&[u8]; 8] = [
        &p.data,
        &p.norm,
        &p.side_ghost[0],
        &p.side_ghost[1],
        &p.side_ghost[2],
        &p.side_norm[0],
        &p.side_norm[1],
        &p.side_norm[2],
    ];
    for s in sections {
        out.extend_from_slice(&(s.len() as u64).to_le_bytes());
        out.extend_from_slice(s);
    }
}

fn read_payload(cur: &mut Cursor<'_>) -> Result<FieldPayload, CheckpointError> {
    let mut sections: [Vec<u8>; 8] = Default::default();
    for s in &mut sections {
        let len = cur.u64()? as usize;
        // Restore is a deposit boundary: the payload must own its bytes
        // beyond the borrowed wire buffer, once per section per rollback.
        // quda-lint: allow(hot-alloc)
        *s = cur.take(len)?.to_vec();
    }
    let [data, norm, sg0, sg1, sg2, sn0, sn1, sn2] = sections;
    Ok(FieldPayload { data, norm, side_ghost: [sg0, sg1, sg2], side_norm: [sn0, sn1, sn2] })
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let remaining = self.buf.len() - self.pos;
        if remaining < n {
            return Err(CheckpointError::Truncated { expected: n, got: remaining });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CheckpointError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Capture the current solver state and deposit it into `sink` under a
/// [`Phase::Checkpoint`] span (with the payload size and epoch recorded on
/// the span). Shared by every solver's checkpoint sites.
pub(crate) fn deposit<P: Precision>(
    sink: &mut dyn CheckpointSink,
    tracer: &Tracer,
    counters: CheckpointCounters,
    x: &SpinorFieldCb<P>,
    r: Option<&SpinorFieldCb<P>>,
) {
    let mut span = tracer.span(Phase::Checkpoint);
    span.set_iter(counters.epoch);
    let ck = SolverCheckpoint::capture(counters, x, r);
    span.set_bytes(ck.payload_bytes() as u64);
    sink.save(ck);
}

/// Where a solver deposits snapshots and looks for a resume point.
///
/// `resume` is consulted once at solve entry; `save` is called at every
/// checkpoint boundary. Implementations must be cheap when disabled —
/// solvers skip capture work entirely when [`CheckpointSink::enabled`]
/// returns `false`.
pub trait CheckpointSink {
    /// Deposit a fresh snapshot.
    fn save(&mut self, ckpt: SolverCheckpoint);
    /// A snapshot to resume from, if the supervisor installed one.
    fn resume(&mut self) -> Option<SolverCheckpoint>;
    /// Whether snapshots are wanted at all.
    fn enabled(&self) -> bool {
        true
    }
}

/// The disabled sink: never resumes, discards saves, and reports itself
/// disabled so solvers skip capture work on the classic (non-elastic) path.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCheckpoint;

impl CheckpointSink for NoCheckpoint {
    fn save(&mut self, _ckpt: SolverCheckpoint) {}

    fn resume(&mut self) -> Option<SolverCheckpoint> {
        None
    }

    fn enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::precision::{Double, Half};
    use quda_math::spinor::Spinor;

    fn sample_field(dims: LatticeDims) -> SpinorFieldCb<Double> {
        let mut f = SpinorFieldCb::<Double>::new(dims, true);
        for cb in 0..f.sites() {
            let mut sp = Spinor::zero();
            sp.s[0].c[0].re = cb as f64 * 0.25 - 1.0;
            sp.s[3].c[2].im = -(cb as f64) * 0.125;
            f.set(cb, &sp);
        }
        f
    }

    #[test]
    fn round_trip_with_residual_is_identity() {
        let dims = LatticeDims::new(4, 4, 2, 4);
        let x = sample_field(dims);
        let r = sample_field(dims);
        let counters = CheckpointCounters {
            epoch: 3,
            iterations: 41,
            matvecs_hi: 5,
            matvecs_lo: 82,
            reliable_updates: 2,
            recoveries: 1,
            stalls: 1,
            r2: 1.5e-9,
            maxrr: 4.2e-4,
            last_update_r2: 1.5e-9,
        };
        let ck = SolverCheckpoint::capture(counters, &x, Some(&r));
        let bytes = ck.to_bytes();
        let back = SolverCheckpoint::from_bytes(&bytes).expect("valid checkpoint");
        assert_eq!(back, ck);
        assert_eq!(back.to_bytes(), bytes, "serialization is stable");
        let mut x2 = SpinorFieldCb::<Double>::new(dims, true);
        back.restore_x(&mut x2).expect("restore x");
        assert_eq!(x2.data, x.data);
        let mut r2f = SpinorFieldCb::<Double>::new(dims, true);
        back.restore_r(&mut r2f).expect("restore r");
        assert_eq!(r2f.data, r.data);
        assert_eq!(back.counters, counters);
    }

    #[test]
    fn precision_and_geometry_mismatches_are_typed() {
        let dims = LatticeDims::new(4, 4, 2, 4);
        let x = sample_field(dims);
        let ck = SolverCheckpoint::capture(CheckpointCounters::default(), &x, None);
        let mut wrong_precision = SpinorFieldCb::<Half>::new(dims, true);
        assert_eq!(
            ck.restore_x(&mut wrong_precision),
            Err(CheckpointError::PrecisionMismatch {
                stored: PrecisionTag::Double,
                requested: PrecisionTag::Half,
            })
        );
        let mut wrong_dims = SpinorFieldCb::<Double>::new(LatticeDims::new(4, 4, 2, 6), true);
        assert_eq!(ck.restore_x(&mut wrong_dims), Err(CheckpointError::GeometryMismatch));
        let mut no_ghost = SpinorFieldCb::<Double>::new(dims, false);
        assert_eq!(ck.restore_x(&mut no_ghost), Err(CheckpointError::GeometryMismatch));
        let mut ok = SpinorFieldCb::<Double>::new(dims, true);
        assert_eq!(ck.restore_r(&mut ok), Err(CheckpointError::GeometryMismatch));
    }

    #[test]
    fn corruption_is_rejected_by_checksum() {
        let dims = LatticeDims::new(2, 2, 2, 4);
        let x = sample_field(dims);
        let ck = SolverCheckpoint::capture(CheckpointCounters::default(), &x, None);
        let bytes = ck.to_bytes();
        // Flip one bit in the magic, the counters, and the payload.
        for pos in [0, 40, bytes.len() / 2] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(
                matches!(
                    SolverCheckpoint::from_bytes(&bad),
                    Err(CheckpointError::BadChecksum { .. })
                ),
                "corruption at byte {pos} must fail the checksum"
            );
        }
        // Corrupting the trailer itself is also a checksum failure.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(matches!(
            SolverCheckpoint::from_bytes(&bad),
            Err(CheckpointError::BadChecksum { .. })
        ));
        // Truncation is typed too.
        assert_eq!(
            SolverCheckpoint::from_bytes(&bytes[..4]),
            Err(CheckpointError::Truncated { expected: 8, got: 4 })
        );
    }

    #[test]
    fn disabled_sink_never_resumes() {
        let mut sink = NoCheckpoint;
        assert!(!sink.enabled());
        assert!(sink.resume().is_none());
        let dims = LatticeDims::new(2, 2, 2, 4);
        let x = sample_field(dims);
        sink.save(SolverCheckpoint::capture(CheckpointCounters::default(), &x, None));
        assert!(sink.resume().is_none());
    }
}
