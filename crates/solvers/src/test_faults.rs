//! Test-only operator wrappers that inject faults into the reduction path,
//! mimicking what a corrupted allreduce or a dead rank does to a
//! partitioned solve (DESIGN.md §7).

use crate::operator::{LinearOperator, OpFault};
use quda_fields::precision::Precision;
use quda_fields::SpinorFieldCb;
use quda_lattice::geometry::LatticeDims;
use quda_math::complex::C64;

/// Wraps an operator and corrupts the result of the `corrupt_at`-th call to
/// `reduce` (1-based; 0 disables), or — when `fault` is set — behaves like
/// a poisoned partitioned operator: every reduction returns NaN and the
/// fault hook reports the error.
pub(crate) struct FaultyOp<P: Precision, O: LinearOperator<P>> {
    pub inner: O,
    pub corrupt_at: u64,
    pub corruption: f64,
    pub reduce_calls: u64,
    /// Corrupt every reduction from `corrupt_at` onward instead of just the
    /// one (models persistent rather than transient corruption).
    pub persistent: bool,
    pub fault: Option<String>,
    _p: std::marker::PhantomData<P>,
}

impl<P: Precision, O: LinearOperator<P>> FaultyOp<P, O> {
    pub fn corrupting(inner: O, corrupt_at: u64, corruption: f64) -> Self {
        FaultyOp {
            inner,
            corrupt_at,
            corruption,
            reduce_calls: 0,
            persistent: false,
            fault: None,
            _p: std::marker::PhantomData,
        }
    }

    pub fn corrupting_from(inner: O, corrupt_at: u64, corruption: f64) -> Self {
        FaultyOp { persistent: true, ..FaultyOp::corrupting(inner, corrupt_at, corruption) }
    }

    pub fn poisoned(inner: O, message: &str) -> Self {
        FaultyOp {
            inner,
            corrupt_at: 0,
            corruption: f64::NAN,
            reduce_calls: 0,
            persistent: false,
            fault: Some(message.to_string()),
            _p: std::marker::PhantomData,
        }
    }
}

impl<P: Precision, O: LinearOperator<P>> LinearOperator<P> for FaultyOp<P, O> {
    fn dims(&self) -> LatticeDims {
        self.inner.dims()
    }

    fn alloc(&self) -> SpinorFieldCb<P> {
        self.inner.alloc()
    }

    fn apply(&mut self, out: &mut SpinorFieldCb<P>, input: &mut SpinorFieldCb<P>) {
        if self.fault.is_some() {
            return;
        }
        self.inner.apply(out, input);
    }

    fn apply_dagger(&mut self, out: &mut SpinorFieldCb<P>, input: &mut SpinorFieldCb<P>) {
        if self.fault.is_some() {
            return;
        }
        self.inner.apply_dagger(out, input);
    }

    fn flops_per_apply(&self) -> u64 {
        self.inner.flops_per_apply()
    }

    fn reduce(&mut self, local: f64) -> f64 {
        if self.fault.is_some() {
            return f64::NAN;
        }
        self.reduce_calls += 1;
        let hit = if self.persistent {
            self.corrupt_at > 0 && self.reduce_calls >= self.corrupt_at
        } else {
            self.reduce_calls == self.corrupt_at
        };
        if hit {
            return self.corruption;
        }
        self.inner.reduce(local)
    }

    fn reduce_c(&mut self, local: C64) -> C64 {
        if self.fault.is_some() {
            return C64::new(f64::NAN, f64::NAN);
        }
        self.inner.reduce_c(local)
    }

    fn fault(&self) -> Option<OpFault> {
        self.fault.clone().map(|message| OpFault { message })
    }
}
