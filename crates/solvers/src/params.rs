//! Solver parameters and results.

use crate::blas::BlasCounters;

/// Convergence and control parameters shared by all solvers.
#[derive(Copy, Clone, Debug)]
pub struct SolverParams {
    /// Relative residual target `‖r‖ / ‖b‖` (the paper uses 1e-7 for
    /// single-precision modes and 1e-14 for double, Section VII-A).
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Reliable-update parameter δ: a high-precision residual replacement is
    /// triggered when the iterated residual drops by this factor relative to
    /// the maximum since the last update (δ = 10⁻³ single, 10⁻¹ mixed
    /// single-half, 10⁻⁵ double, 10⁻² mixed double-half in the paper).
    pub delta: f64,
}

impl Default for SolverParams {
    fn default() -> Self {
        SolverParams { tol: 1e-7, max_iter: 10_000, delta: 1e-1 }
    }
}

impl SolverParams {
    /// The paper's settings for a given solver mode name.
    pub fn paper_defaults(mode: &str) -> Self {
        match mode {
            "single" => SolverParams { tol: 1e-7, max_iter: 10_000, delta: 1e-3 },
            "single-half" => SolverParams { tol: 1e-7, max_iter: 10_000, delta: 1e-1 },
            "double" => SolverParams { tol: 1e-14, max_iter: 10_000, delta: 1e-5 },
            "double-half" => SolverParams { tol: 1e-14, max_iter: 10_000, delta: 1e-2 },
            _ => SolverParams::default(),
        }
    }
}

/// Outcome of a solve, with full work accounting.
#[derive(Clone, Debug, Default)]
pub struct SolveResult {
    /// Whether the residual target was met.
    pub converged: bool,
    /// Krylov iterations performed (in the sloppy precision for mixed
    /// solvers).
    pub iterations: usize,
    /// Operator applications (each is one fused even-odd matvec).
    pub matvecs: u64,
    /// High-precision residual replacements performed.
    pub reliable_updates: u64,
    /// Final true relative residual `‖b − M̂x‖ / ‖b‖`.
    pub final_residual: f64,
    /// Effective flops spent in operator applications.
    pub op_flops: u64,
    /// Blas work performed.
    pub blas: BlasCounters,
    /// Per-iteration relative residual norms (the solver's own iterated
    /// estimate, not the true residual). For mixed-precision solves the
    /// reliable-update "sawtooth" is visible here: the iterated residual
    /// jumps wherever a high-precision replacement corrected drift.
    pub residual_history: Vec<f64>,
    /// Checkpoint rollbacks performed after detected state corruption
    /// (NaN/diverged residuals — see DESIGN.md §7).
    pub recoveries: u64,
    /// Messages the communication layer recovered via link-level
    /// retransmission during this solve (filled in by the parallel driver;
    /// zero for single-device solves).
    pub comm_recoveries: u64,
    /// Terminal error that aborted the solve, if any (e.g. a dead rank
    /// reported by the operator's fault hook, or corruption persisting past
    /// the rollback budget). `None` for a clean — converged or merely
    /// stalled — solve.
    pub error: Option<String>,
}

impl SolveResult {
    /// Total effective flops (operator + blas).
    pub fn total_flops(&self) -> u64 {
        self.op_flops + self.blas.flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_vii() {
        assert_eq!(SolverParams::paper_defaults("single").delta, 1e-3);
        assert_eq!(SolverParams::paper_defaults("single-half").delta, 1e-1);
        assert_eq!(SolverParams::paper_defaults("double").delta, 1e-5);
        assert_eq!(SolverParams::paper_defaults("double-half").delta, 1e-2);
        assert_eq!(SolverParams::paper_defaults("single").tol, 1e-7);
        assert_eq!(SolverParams::paper_defaults("double").tol, 1e-14);
    }

    #[test]
    fn total_flops_sums_components() {
        let mut r = SolveResult { op_flops: 100, ..SolveResult::default() };
        r.blas.flops = 23;
        assert_eq!(r.total_flops(), 123);
    }
}
