//! # quda-solvers
//!
//! Krylov solvers for the even-odd preconditioned Wilson-clover system:
//!
//! * [`blas`] — fused, cost-accounted BLAS1 kernels (Section V-E);
//! * [`operator`] — the [`operator::LinearOperator`] abstraction with the
//!   global-reduction hook the parallel solver needs (Section VI-E);
//! * [`bicgstab`](mod@bicgstab) — the production non-symmetric solver;
//! * [`cg`](mod@cg) — CG on the normal equations (CGNR);
//! * [`mixed`] — mixed-precision reliable updates and the defect-correction
//!   baseline (Section V-D);
//! * [`multi`] — blocked multi-RHS variants of the above, batching
//!   compatible systems through fused gauge sweeps while staying
//!   bit-identical per RHS (DESIGN.md §14);
//! * [`params`] — solver parameters matching Section VII-A;
//! * [`spectral`] — power/inverse-power spectrum probes quantifying the
//!   condition-number claims of Section II.

#![warn(missing_docs)]
// The no-panic invariant (xtask lint rule `no-panic`), also machine-checked
// at compile time: a panicking rank hangs its peers mid-allreduce.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bicgstab;
pub mod blas;
pub mod cg;
pub mod checkpoint;
pub mod mixed;
pub mod multi;
pub mod operator;
pub mod params;
pub mod spectral;
#[cfg(test)]
pub(crate) mod test_faults;

pub use bicgstab::{bicgstab, bicgstab_ckpt};
pub use cg::{cgnr, cgnr_ckpt};
pub use checkpoint::{
    CheckpointCounters, CheckpointError, CheckpointSink, NoCheckpoint, SolverCheckpoint,
    CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
};
pub use mixed::{bicgstab_defect_correction, bicgstab_reliable, bicgstab_reliable_ckpt};
pub use multi::{bicgstab_multi, bicgstab_reliable_multi, cgnr_multi};
pub use operator::{LinearOperator, MatPcOp, OpFault};
pub use params::{SolveResult, SolverParams};
pub use spectral::{estimate_spectrum, lambda_max, lambda_min, SpectrumEstimate};
