//! Mixed-precision solvers (Section V-D).
//!
//! Two strategies are implemented:
//!
//! * [`bicgstab_reliable`] — QUDA's production approach: the Krylov
//!   iteration runs entirely in the fast *sloppy* precision; whenever the
//!   iterated residual has dropped by a factor δ relative to its maximum
//!   since the last update, the solution is accumulated into the
//!   high-precision vector and the *true* residual `b − M̂x` is recomputed
//!   in high precision and injected ("reliable updates", reference \[21\]). The
//!   direction is preserved across updates, so a single Krylov space is
//!   maintained throughout the solve.
//! * [`bicgstab_defect_correction`] — the traditional alternative the paper
//!   compares against conceptually: an outer loop that restarts a fresh
//!   low-precision solve on the current high-precision residual. Restarting
//!   discards the Krylov space and "increases the total number of solver
//!   iterations" (Section V-D); the ablation benchmark quantifies it.

use crate::blas::{self, BlasCounters};
use crate::checkpoint::{self, CheckpointCounters, CheckpointSink, NoCheckpoint};
use crate::operator::{residual_norm2, traced, traced_iter, LinearOperator};
use crate::params::{SolveResult, SolverParams};
use quda_fields::precision::Precision;
use quda_fields::SpinorFieldCb;
use quda_math::complex::C64;
use quda_obs::Phase;

/// Rollback budget: how many times a solve may restore its checkpoint after
/// detecting corrupted state before giving up with a terminal error. A
/// genuine transient (one corrupted reduction) needs exactly one rollback;
/// persistent corruption exhausts the budget quickly instead of looping
/// forever (DESIGN.md §7).
pub(crate) const MAX_RECOVERIES: u64 = 8;

/// A reliable update that *grows* the true residual by more than this
/// factor is treated as corrupted state rather than ordinary sloppy drift.
pub(crate) const DIVERGE_FACTOR: f64 = 1e6;

/// Outcome of one sloppy BiCGstab iteration (including any reliable
/// update): drives the control flow of [`bicgstab_reliable`]'s main loop.
enum Step {
    /// Iteration completed normally; keep going.
    Continue,
    /// The reliable update's true residual met the target.
    Converged,
    /// The outer precision's rounding floor was reached (stalled updates).
    Floor,
    /// `r0·v` or ρ vanished: re-seed the shadow residual and retry.
    Breakdown,
    /// `‖t‖² = 0`: the Krylov space is exhausted.
    Exhausted,
    /// A non-finite or diverged quantity appeared: the working state is
    /// corrupt and must be rolled back to the checkpoint.
    Corrupt,
}

/// Add a low-precision correction into a high-precision vector:
/// `x_hi += conv(e_lo)`.
pub(crate) fn accumulate<H: Precision, L: Precision>(
    x_hi: &mut SpinorFieldCb<H>,
    e_lo: &SpinorFieldCb<L>,
    scratch_hi: &mut SpinorFieldCb<H>,
    c: &mut BlasCounters,
) {
    scratch_hi.convert_from(e_lo);
    blas::axpy(1.0, scratch_hi, x_hi, c);
}

/// Mixed-precision BiCGstab with reliable updates.
///
/// `H` is the outer ("true") precision, `L` the sloppy precision the Krylov
/// iteration runs in. The paper's production modes are double-half,
/// single-half, and (for reference) double-single.
///
/// The solve is *self-healing* (DESIGN.md §7): the high-precision solution
/// is checkpointed at every good reliable update, and any non-finite or
/// wildly diverged quantity (e.g. a corrupted global reduction) rolls the
/// solve back to that checkpoint and rebuilds the Krylov space from a fresh
/// true residual. Rollbacks are counted in [`SolveResult::recoveries`] and
/// capped; a fault reported by the operators' [`LinearOperator::fault`]
/// hook (a dead rank, say) is not recoverable and aborts the solve with
/// [`SolveResult::error`] set.
pub fn bicgstab_reliable<H: Precision, L: Precision>(
    op_hi: &mut dyn LinearOperator<H>,
    op_lo: &mut dyn LinearOperator<L>,
    x: &mut SpinorFieldCb<H>,
    b: &SpinorFieldCb<H>,
    params: &SolverParams,
) -> SolveResult {
    bicgstab_reliable_ckpt(op_hi, op_lo, x, b, params, &mut NoCheckpoint)
}

/// [`bicgstab_reliable`] with an elastic-resilience checkpoint sink.
///
/// When `sink` is enabled, the solver deposits a [`SolverCheckpoint`] at
/// solve entry and at every good reliable update — the points where the
/// high-precision state has just been validated against the true residual.
/// Because the reliable-update decision is made from a globally reduced
/// norm, every rank deposits the same epochs at the same iterations, so no
/// extra collectives are needed and the numerics are bit-identical to the
/// checkpoint-free solve.
///
/// If `sink.resume()` yields a snapshot, the solve rolls *forward* from it
/// instead of starting at zero: the iterate and true residual are restored
/// and the Krylov space is rebuilt from the restored residual — exactly the
/// protocol the corruption-rollback path already uses — and all progress
/// counters continue from their checkpointed values. The supervisor must
/// install a resume snapshot on either all ranks or none, since resuming
/// changes the collective stream.
pub fn bicgstab_reliable_ckpt<H: Precision, L: Precision>(
    op_hi: &mut dyn LinearOperator<H>,
    op_lo: &mut dyn LinearOperator<L>,
    x: &mut SpinorFieldCb<H>,
    b: &SpinorFieldCb<H>,
    params: &SolverParams,
    sink: &mut dyn CheckpointSink,
) -> SolveResult {
    let mut c = BlasCounters::default();
    let mut matvecs_lo: u64 = 0;
    let mut matvecs_hi: u64 = 0;
    let mut reliable_updates: u64 = 0;
    // Both operators live on the same rank; either handle reaches the same
    // per-rank recorder. The sloppy one drives the iteration, so use it.
    let tracer = op_lo.tracer();

    let b_local = traced(&tracer, Phase::Blas, || blas::norm2(b, &mut c));
    let b_norm2 = traced(&tracer, Phase::Reduce, || op_hi.reduce(b_local));
    if b_norm2 == 0.0 {
        blas::zero(x);
        return SolveResult { converged: true, ..Default::default() };
    }
    let target2 = params.tol * params.tol * b_norm2;

    // A resume snapshot installed by the elastic supervisor: restore the
    // iterate and true residual instead of starting from the caller's
    // guess. A snapshot that does not fit this solve (wrong precision or
    // geometry) is ignored — the check is deterministic and identical on
    // every rank, so all ranks fall back together.
    let mut r_hi = op_hi.alloc();
    let mut resumed: Option<CheckpointCounters> = None;
    if let Some(ck) = sink.resume() {
        let mut span = tracer.span(Phase::Recovery);
        span.set_bytes(ck.payload_bytes() as u64);
        if ck.has_residual() && ck.restore_x(x).is_ok() && ck.restore_r(&mut r_hi).is_ok() {
            resumed = Some(ck.counters);
        }
    }

    // True residual in high precision (restored, or computed fresh).
    let mut r2;
    if let Some(ctr) = resumed {
        r2 = ctr.r2;
        matvecs_hi = ctr.matvecs_hi;
        matvecs_lo = ctr.matvecs_lo;
        reliable_updates = ctr.reliable_updates;
    } else {
        r2 = residual_norm2(op_hi, &mut r_hi, x, b, &mut c);
        matvecs_hi += 1;
        if r2 <= target2 {
            return SolveResult {
                converged: true,
                final_residual: (r2 / b_norm2).sqrt(),
                matvecs: matvecs_hi,
                op_flops: matvecs_hi * op_hi.flops_per_apply(),
                blas: c,
                ..Default::default()
            };
        }
    }
    let mut maxrr = r2.sqrt();

    // Sloppy-precision working set.
    let mut r = op_lo.alloc();
    r.convert_from(&r_hi);
    let mut r0 = op_lo.alloc();
    blas::copy(&mut r0, &r, &mut c);
    let mut p = op_lo.alloc();
    blas::copy(&mut p, &r, &mut c);
    let mut v = op_lo.alloc();
    let mut t = op_lo.alloc();
    let mut x_sloppy = op_lo.alloc();
    blas::zero(&mut x_sloppy);
    let mut scratch_hi = op_hi.alloc();
    // Rollback checkpoint: the high-precision solution as of the last known
    // good state (start, then every good reliable update).
    let mut checkpoint_x = op_hi.alloc();
    blas::copy(&mut checkpoint_x, x, &mut c);
    let mut recoveries: u64 = resumed.map_or(0, |ctr| ctr.recoveries);
    let mut abort_error: Option<String> = None;

    let mut rho = C64::new(r2, 0.0);
    let mut iterations = resumed.map_or(0, |ctr| ctr.iterations as usize);
    let mut converged = false;
    // Stall detection: when successive reliable updates stop improving the
    // true residual, the outer precision's rounding floor has been reached
    // and further sloppy iterations are wasted.
    let mut last_update_r2 = resumed.map_or(r2, |ctr| ctr.last_update_r2);
    let mut stalls = resumed.map_or(0u32, |ctr| ctr.stalls);
    // Sized for the worst case so steady-state pushes never reallocate.
    let mut history = Vec::with_capacity(params.max_iter);

    // Elastic checkpointing: deposit a snapshot of the just-validated
    // state at entry (epoch continues across incarnations), so a rank
    // death before the first reliable update still leaves a consistent
    // resume point behind.
    let mut ckpt_epoch: u64 = resumed.map_or(0, |ctr| ctr.epoch);
    if sink.enabled() {
        ckpt_epoch += 1;
        checkpoint::deposit(
            sink,
            &tracer,
            CheckpointCounters {
                epoch: ckpt_epoch,
                iterations: iterations as u64,
                matvecs_hi,
                matvecs_lo,
                reliable_updates,
                recoveries,
                stalls,
                r2,
                maxrr,
                last_update_r2,
            },
            x,
            Some(&r_hi),
        );
    }

    while iterations < params.max_iter {
        // A fault parked by a poisoned operator (dead rank, exhausted
        // retries) is terminal: no rollback can bring the peer back.
        if let Some(f) = op_lo.fault().or_else(|| op_hi.fault()) {
            abort_error = Some(f.message);
            break;
        }
        let iter_tag = iterations as u64 + 1;
        let step = 'body: {
            traced_iter(&tracer, Phase::Matvec, iter_tag, || op_lo.apply(&mut v, &mut p));
            matvecs_lo += 1;
            let r0v_local = traced(&tracer, Phase::Blas, || blas::cdot(&r0, &v, &mut c));
            let r0v = traced(&tracer, Phase::Reduce, || op_lo.reduce_c(r0v_local));
            if !r0v.re.is_finite() || !r0v.im.is_finite() {
                break 'body Step::Corrupt;
            }
            if r0v.norm_sqr() == 0.0 || rho.norm_sqr() == 0.0 {
                break 'body Step::Breakdown;
            }
            let alpha = rho.div(r0v);
            let s_local =
                traced(&tracer, Phase::Blas, || blas::caxpy_norm(-alpha, &v, &mut r, &mut c));
            let s2 = traced(&tracer, Phase::Reduce, || op_lo.reduce(s_local));
            if !s2.is_finite() {
                break 'body Step::Corrupt;
            }
            traced_iter(&tracer, Phase::Matvec, iter_tag, || op_lo.apply(&mut t, &mut r));
            matvecs_lo += 1;
            let (ts, tt) = {
                let (dot, n) = traced(&tracer, Phase::Blas, || blas::cdot_norm_a(&t, &r, &mut c));
                traced(&tracer, Phase::Reduce, || (op_lo.reduce_c(dot), op_lo.reduce(n)))
            };
            if !tt.is_finite() || !ts.re.is_finite() || !ts.im.is_finite() {
                break 'body Step::Corrupt;
            }
            if tt == 0.0 {
                break 'body Step::Exhausted;
            }
            let omega = ts.scale(1.0 / tt);
            let r2_local = traced(&tracer, Phase::Blas, || {
                blas::caxpbypz(alpha, &p, omega, &r, &mut x_sloppy, &mut c);
                blas::caxpy_norm(-omega, &t, &mut r, &mut c)
            });
            let r2_iter = traced(&tracer, Phase::Reduce, || op_lo.reduce(r2_local));
            if !r2_iter.is_finite() {
                break 'body Step::Corrupt;
            }
            let rho_local = traced(&tracer, Phase::Blas, || blas::cdot(&r0, &r, &mut c));
            let rho_new = traced(&tracer, Phase::Reduce, || op_lo.reduce_c(rho_local));
            let beta = rho_new.div(rho) * alpha.div(omega);
            rho = rho_new;
            traced(&tracer, Phase::Blas, || {
                blas::cxpaypbz(&r, -(beta * omega), &v, beta, &mut p, &mut c)
            });
            iterations += 1;
            history.push((r2_iter / b_norm2).sqrt());

            let r_norm = r2_iter.sqrt();
            maxrr = maxrr.max(r_norm);
            let want_update = r_norm < params.delta * maxrr || r2_iter <= target2;
            if want_update {
                // A guard (not a closure) so the `break 'body` exits below
                // still close the span on the way out.
                let mut ru_span = tracer.span(Phase::ReliableUpdate);
                ru_span.set_iter(iter_tag);
                // Reliable update: accumulate and recompute the true
                // residual in high precision.
                accumulate(x, &x_sloppy, &mut scratch_hi, &mut c);
                blas::zero(&mut x_sloppy);
                r2 = residual_norm2(op_hi, &mut r_hi, x, b, &mut c);
                matvecs_hi += 1;
                reliable_updates += 1;
                if !r2.is_finite() || r2 > last_update_r2 * DIVERGE_FACTOR {
                    break 'body Step::Corrupt;
                }
                if r2 <= target2 {
                    break 'body Step::Converged;
                }
                if r2 >= last_update_r2 * 0.8 {
                    stalls += 1;
                    if stalls >= 3 {
                        break 'body Step::Floor;
                    }
                } else {
                    stalls = 0;
                }
                last_update_r2 = r2;
                r.convert_from(&r_hi);
                maxrr = r2.sqrt();
                // The search direction p survives the update (single Krylov
                // space); only ρ is re-evaluated against the refreshed
                // residual.
                rho = op_lo.reduce_c(blas::cdot(&r0, &r, &mut c));
                // This state passed the high-precision check: refresh the
                // rollback checkpoint.
                blas::copy(&mut checkpoint_x, x, &mut c);
                // ... and deposit it for the elastic supervisor. The
                // reliable-update decision came from a globally reduced
                // norm, so every rank deposits this epoch.
                if sink.enabled() {
                    ckpt_epoch += 1;
                    checkpoint::deposit(
                        sink,
                        &tracer,
                        CheckpointCounters {
                            epoch: ckpt_epoch,
                            iterations: iterations as u64,
                            matvecs_hi,
                            matvecs_lo,
                            reliable_updates,
                            recoveries,
                            stalls,
                            r2,
                            maxrr,
                            last_update_r2,
                        },
                        x,
                        Some(&r_hi),
                    );
                }
            }
            Step::Continue
        };
        match step {
            Step::Continue => {}
            Step::Converged => {
                converged = true;
                break;
            }
            Step::Floor | Step::Exhausted => break,
            Step::Breakdown => {
                // BiCGstab breakdown: re-seed the shadow residual.
                blas::copy(&mut r0, &r, &mut c);
                rho = C64::new(op_lo.reduce(blas::norm2(&r, &mut c)), 0.0);
                blas::copy(&mut p, &r, &mut c);
            }
            Step::Corrupt => {
                // NaN caused by a comm failure is not transient; surface
                // the typed fault instead of burning the rollback budget.
                if let Some(f) = op_lo.fault().or_else(|| op_hi.fault()) {
                    abort_error = Some(f.message);
                    break;
                }
                recoveries += 1;
                if recoveries > MAX_RECOVERIES {
                    // Formatted at most once per solve, on the abort path
                    // that ends the iteration loop.
                    // quda-lint: allow(hot-alloc)
                    abort_error = Some(format!(
                        "corrupted solver state persisted after {MAX_RECOVERIES} rollbacks"
                    ));
                    break;
                }
                // Roll back to the checkpoint and rebuild the Krylov space
                // from a freshly computed true residual.
                blas::copy(x, &checkpoint_x, &mut c);
                r2 = residual_norm2(op_hi, &mut r_hi, x, b, &mut c);
                matvecs_hi += 1;
                r.convert_from(&r_hi);
                blas::copy(&mut r0, &r, &mut c);
                blas::copy(&mut p, &r, &mut c);
                blas::zero(&mut x_sloppy);
                rho = C64::new(r2, 0.0);
                maxrr = r2.sqrt();
                last_update_r2 = r2;
                stalls = 0;
            }
        }
    }

    // Fold in any un-accumulated sloppy progress (pointless after a
    // terminal error — the sloppy state is untrustworthy).
    if !converged && abort_error.is_none() {
        accumulate(x, &x_sloppy, &mut scratch_hi, &mut c);
        r2 = residual_norm2(op_hi, &mut r_hi, x, b, &mut c);
        matvecs_hi += 1;
        converged = r2 <= target2;
    }

    SolveResult {
        converged,
        iterations,
        matvecs: matvecs_lo + matvecs_hi,
        reliable_updates,
        final_residual: (r2 / b_norm2).sqrt(),
        op_flops: matvecs_lo * op_lo.flops_per_apply() + matvecs_hi * op_hi.flops_per_apply(),
        blas: c,
        residual_history: history,
        recoveries,
        comm_recoveries: 0,
        error: abort_error,
    }
}

/// Mixed-precision defect correction (restarted inner solves) — the
/// baseline strategy reliable updates improve on.
pub fn bicgstab_defect_correction<H: Precision, L: Precision>(
    op_hi: &mut dyn LinearOperator<H>,
    op_lo: &mut dyn LinearOperator<L>,
    x: &mut SpinorFieldCb<H>,
    b: &SpinorFieldCb<H>,
    params: &SolverParams,
    inner_tol: f64,
) -> SolveResult {
    let mut c = BlasCounters::default();
    let mut iterations = 0usize;
    let mut matvecs: u64 = 0;
    let mut op_flops: u64 = 0;
    let mut restarts: u64 = 0;
    let mut history: Vec<f64> = Vec::with_capacity(params.max_iter);
    let tracer = op_hi.tracer();

    let b_local = traced(&tracer, Phase::Blas, || blas::norm2(b, &mut c));
    let b_norm2 = traced(&tracer, Phase::Reduce, || op_hi.reduce(b_local));
    if b_norm2 == 0.0 {
        blas::zero(x);
        return SolveResult { converged: true, ..Default::default() };
    }
    let target2 = params.tol * params.tol * b_norm2;
    let mut r_hi = op_hi.alloc();
    let mut b_lo = op_lo.alloc();
    let mut e_lo = op_lo.alloc();
    let mut scratch_hi = op_hi.alloc();

    let mut r2 = residual_norm2(op_hi, &mut r_hi, x, b, &mut c);
    matvecs += 1;
    op_flops += op_hi.flops_per_apply();
    let max_outer = 100;
    let mut outer = 0;
    let mut abort_error: Option<String> = None;
    while r2 > target2 && outer < max_outer && iterations < params.max_iter {
        b_lo.convert_from(&r_hi);
        blas::zero(&mut e_lo);
        let inner = crate::bicgstab::bicgstab(
            op_lo,
            &mut e_lo,
            &b_lo,
            &SolverParams { tol: inner_tol, max_iter: params.max_iter - iterations, delta: 0.0 },
        );
        iterations += inner.iterations;
        history.extend(inner.residual_history.iter().copied());
        matvecs += inner.matvecs;
        op_flops += inner.matvecs * op_lo.flops_per_apply();
        c.merge(&inner.blas);
        if let Some(e) = inner.error {
            abort_error = Some(e);
            break;
        }
        r2 = traced_iter(&tracer, Phase::ReliableUpdate, restarts + 1, || {
            accumulate(x, &e_lo, &mut scratch_hi, &mut c);
            residual_norm2(op_hi, &mut r_hi, x, b, &mut c)
        });
        matvecs += 1;
        op_flops += op_hi.flops_per_apply();
        restarts += 1;
        outer += 1;
        if inner.iterations == 0 {
            break; // inner solver stalled; avoid spinning
        }
    }

    SolveResult {
        converged: r2 <= target2 && abort_error.is_none(),
        iterations,
        matvecs,
        reliable_updates: restarts,
        final_residual: (r2 / b_norm2).sqrt(),
        op_flops,
        blas: c,
        residual_history: history,
        recoveries: 0,
        comm_recoveries: 0,
        error: abort_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MatPcOp;
    use quda_dirac::{WilsonCloverOp, WilsonParams};
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_fields::precision::{Double, Half, Single};
    use quda_lattice::geometry::{LatticeDims, Parity};

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 4, 4)
    }

    fn ops<H: Precision, L: Precision>(seed: u64) -> (MatPcOp<H>, MatPcOp<L>, SpinorFieldCb<H>) {
        let d = dims();
        let cfg = weak_field(d, 0.15, seed);
        let params = WilsonParams { mass: 0.2, c_sw: 1.0 };
        let hi = MatPcOp::new(WilsonCloverOp::<H>::from_config(&cfg, params));
        let lo = MatPcOp::new(WilsonCloverOp::<L>::from_config(&cfg, params));
        let host = random_spinor_field(d, seed + 7);
        let mut b = hi.alloc();
        b.upload(&host, Parity::Odd);
        (hi, lo, b)
    }

    #[test]
    fn double_single_reaches_1e10() {
        let (mut hi, mut lo, b) = ops::<Double, Single>(1);
        let mut x = hi.alloc();
        blas::zero(&mut x);
        let params = SolverParams { tol: 1e-10, max_iter: 2000, delta: 1e-2 };
        let res = bicgstab_reliable(&mut hi, &mut lo, &mut x, &b, &params);
        assert!(res.converged, "residual {}", res.final_residual);
        assert!(res.reliable_updates > 0, "expected at least one reliable update");
    }

    #[test]
    fn single_half_reaches_2e7() {
        // The paper's workhorse mode near its production target (VII-A).
        // On a random right-hand side the f32 outer precision's rounding
        // floor sits at ≈1.4e-7 relative here, so the test targets 2e-7;
        // the paper's ‖r‖ = 1e-7 was measured on unit point sources at much
        // larger volume. (EXPERIMENTS.md discusses the floor.)
        let (mut hi, mut lo, b) = ops::<Single, Half>(2);
        let mut x = hi.alloc();
        blas::zero(&mut x);
        let mut params = SolverParams::paper_defaults("single-half");
        params.tol = 2e-7;
        let res = bicgstab_reliable(&mut hi, &mut lo, &mut x, &b, &params);
        assert!(res.converged, "residual {}", res.final_residual);
        assert!(res.final_residual <= 2e-7);
        assert!(res.reliable_updates > 0);
    }

    #[test]
    fn double_half_reaches_1e12() {
        // Half-precision iterations with a double-precision anchor still
        // reach deep targets — the point of reliable updates.
        let (mut hi, mut lo, b) = ops::<Double, Half>(3);
        let mut x = hi.alloc();
        blas::zero(&mut x);
        let params = SolverParams { tol: 1e-12, max_iter: 4000, delta: 1e-2 };
        let res = bicgstab_reliable(&mut hi, &mut lo, &mut x, &b, &params);
        assert!(res.converged, "residual {}", res.final_residual);
        assert!(res.final_residual <= 1e-12);
        assert!(res.reliable_updates >= 2);
    }

    #[test]
    fn mixed_solution_matches_uniform_double() {
        let (mut hi, mut lo, b) = ops::<Double, Single>(4);
        let params = SolverParams { tol: 1e-11, max_iter: 2000, delta: 1e-2 };
        let mut x_mixed = hi.alloc();
        blas::zero(&mut x_mixed);
        bicgstab_reliable(&mut hi, &mut lo, &mut x_mixed, &b, &params);
        let mut x_pure = hi.alloc();
        blas::zero(&mut x_pure);
        crate::bicgstab::bicgstab(&mut hi, &mut x_pure, &b, &params);
        let mut diff2 = 0.0;
        for cb in 0..x_pure.sites() {
            diff2 += (x_mixed.get(cb) - x_pure.get(cb)).norm_sqr();
        }
        let rel = (diff2 / x_pure.norm_sqr()).sqrt();
        assert!(rel < 1e-8, "solutions differ: rel={rel}");
    }

    #[test]
    fn defect_correction_converges_but_restarts() {
        let (mut hi, mut lo, b) = ops::<Double, Single>(5);
        let mut x = hi.alloc();
        blas::zero(&mut x);
        let params = SolverParams { tol: 1e-10, max_iter: 4000, delta: 1e-2 };
        let res = bicgstab_defect_correction(&mut hi, &mut lo, &mut x, &b, &params, 1e-2);
        assert!(res.converged, "residual {}", res.final_residual);
        assert!(res.reliable_updates >= 2, "expected multiple restarts");
    }

    #[test]
    fn corrupted_reduction_rolls_back_and_reconverges() {
        use crate::test_faults::FaultyOp;
        let (mut hi, lo, b) = ops::<Double, Single>(6);
        // Corrupt one sloppy global reduction mid-solve (call 12 lands a
        // few iterations in): the solver must roll back to its checkpoint
        // and still reach the target.
        let mut lo = FaultyOp::corrupting(lo, 12, f64::NAN);
        let mut x = hi.alloc();
        blas::zero(&mut x);
        let params = SolverParams { tol: 1e-10, max_iter: 2000, delta: 1e-2 };
        let res = bicgstab_reliable(&mut hi, &mut lo, &mut x, &b, &params);
        assert!(res.converged, "residual {} error {:?}", res.final_residual, res.error);
        assert!(res.recoveries >= 1, "expected a rollback, got {}", res.recoveries);
        assert!(res.error.is_none());
        assert!(res.final_residual <= 1e-10);
        // The recovered solution solves the same system: check against a
        // fault-free solve.
        let (mut hi2, mut lo2, b2) = ops::<Double, Single>(6);
        let mut x_clean = hi2.alloc();
        blas::zero(&mut x_clean);
        let clean = bicgstab_reliable(&mut hi2, &mut lo2, &mut x_clean, &b2, &params);
        assert!(clean.converged);
        assert_eq!(clean.recoveries, 0);
        let mut diff2 = 0.0;
        for cb in 0..x.sites() {
            diff2 += (x.get(cb) - x_clean.get(cb)).norm_sqr();
        }
        let rel = (diff2 / x_clean.norm_sqr()).sqrt();
        assert!(rel < 1e-7, "recovered solution drifted: rel={rel}");
    }

    #[test]
    fn persistent_corruption_exhausts_rollback_budget() {
        use crate::test_faults::FaultyOp;
        let (mut hi, lo, b) = ops::<Double, Single>(8);
        let mut lo = FaultyOp::corrupting_from(lo, 12, f64::NAN);
        let mut x = hi.alloc();
        blas::zero(&mut x);
        let params = SolverParams { tol: 1e-10, max_iter: 2000, delta: 1e-2 };
        let res = bicgstab_reliable(&mut hi, &mut lo, &mut x, &b, &params);
        assert!(!res.converged);
        assert!(res.error.is_some(), "persistent corruption must surface an error");
        assert!(res.recoveries >= super::MAX_RECOVERIES);
    }

    #[test]
    fn poisoned_operator_aborts_with_error_not_hang() {
        use crate::test_faults::FaultyOp;
        let (mut hi, lo, b) = ops::<Double, Single>(9);
        let mut lo = FaultyOp::poisoned(lo, "recv from rank 2 tag 1: rank 2 is dead");
        let mut x = hi.alloc();
        blas::zero(&mut x);
        let params = SolverParams { tol: 1e-10, max_iter: 2000, delta: 1e-2 };
        let res = bicgstab_reliable(&mut hi, &mut lo, &mut x, &b, &params);
        assert!(!res.converged);
        assert_eq!(res.error.as_deref(), Some("recv from rank 2 tag 1: rank 2 is dead"));
        assert_eq!(res.iterations, 0, "fault must abort before iterating");
        assert_eq!(res.recoveries, 0, "a comm fault is not a rollback");
    }

    #[test]
    fn reliable_updates_beat_defect_correction_on_hard_system() {
        // Use a disordered gauge field (ill-conditioned matrix) so the
        // restart penalty is visible, as claimed in Section V-D.
        let d = dims();
        let cfg = quda_fields::gauge_gen::random_field(d, 77);
        let wp = WilsonParams { mass: 0.05, c_sw: 1.0 };
        let mut hi = MatPcOp::new(WilsonCloverOp::<Double>::from_config(&cfg, wp));
        let mut lo = MatPcOp::new(WilsonCloverOp::<Single>::from_config(&cfg, wp));
        let host = random_spinor_field(d, 78);
        let mut b = hi.alloc();
        b.upload(&host, Parity::Odd);
        let params = SolverParams { tol: 1e-8, max_iter: 20_000, delta: 1e-1 };
        let mut x1 = hi.alloc();
        blas::zero(&mut x1);
        let rel = bicgstab_reliable(&mut hi, &mut lo, &mut x1, &b, &params);
        let mut x2 = hi.alloc();
        blas::zero(&mut x2);
        let dc = bicgstab_defect_correction(&mut hi, &mut lo, &mut x2, &b, &params, 1e-1);
        assert!(rel.converged && dc.converged);
        assert!(
            rel.iterations <= dc.iterations + dc.iterations / 4,
            "reliable {} vs defect-correction {}",
            rel.iterations,
            dc.iterations
        );
    }
}
