//! BiCGstab — the paper's production solver for the non-Hermitian
//! even-odd preconditioned Wilson-clover matrix (Section II, reference \[8\]).

use crate::blas::{self, BlasCounters};
use crate::checkpoint::{self, CheckpointCounters, CheckpointSink, NoCheckpoint};
use crate::operator::{residual_norm2, traced, traced_iter, LinearOperator};
use crate::params::{SolveResult, SolverParams};
use quda_fields::precision::Precision;
use quda_fields::SpinorFieldCb;
use quda_math::complex::C64;
use quda_obs::Phase;

/// Deposit a checkpoint every this many iterations when a sink is enabled
/// (matches the CG cadence; see `cg::CHECKPOINT_EVERY`).
const CHECKPOINT_EVERY: usize = 16;

/// Solve `M̂ x = b` with plain (uniform-precision) BiCGstab.
///
/// `x` is used as the initial guess and holds the solution on return.
pub fn bicgstab<P: Precision>(
    op: &mut dyn LinearOperator<P>,
    x: &mut SpinorFieldCb<P>,
    b: &SpinorFieldCb<P>,
    params: &SolverParams,
) -> SolveResult {
    bicgstab_ckpt(op, x, b, params, &mut NoCheckpoint)
}

/// [`bicgstab`] with an elastic-resilience checkpoint sink.
///
/// Uniform-precision BiCGstab has no reliable-update boundary, so the
/// snapshot (the iterate only — BiCGstab recomputes `r = b − M̂x` at entry,
/// so a resume is a warm start) is deposited at entry and every
/// [`CHECKPOINT_EVERY`] iterations; iteration/matvec counters continue
/// across incarnations.
pub fn bicgstab_ckpt<P: Precision>(
    op: &mut dyn LinearOperator<P>,
    x: &mut SpinorFieldCb<P>,
    b: &SpinorFieldCb<P>,
    params: &SolverParams,
    sink: &mut dyn CheckpointSink,
) -> SolveResult {
    let mut c = BlasCounters::default();
    let tracer = op.tracer();

    // A resume snapshot installed by the elastic supervisor: warm-start
    // from the checkpointed iterate and continue its counters.
    let mut resumed: Option<CheckpointCounters> = None;
    if let Some(ck) = sink.resume() {
        let mut span = tracer.span(Phase::Recovery);
        span.set_bytes(ck.payload_bytes() as u64);
        if ck.restore_x(x).is_ok() {
            resumed = Some(ck.counters);
        }
    }
    let mut matvecs: u64 = resumed.map_or(0, |ctr| ctr.matvecs_hi);

    let b_local = traced(&tracer, Phase::Blas, || blas::norm2(b, &mut c));
    let b_norm2 = traced(&tracer, Phase::Reduce, || op.reduce(b_local));
    if b_norm2 == 0.0 {
        blas::zero(x);
        return SolveResult { converged: true, ..Default::default() };
    }
    let target2 = params.tol * params.tol * b_norm2;

    // r = b − M̂ x.
    let mut r = op.alloc();
    let mut r_norm2 = residual_norm2(op, &mut r, x, b, &mut c);
    matvecs += 1;

    let mut r0 = op.alloc();
    blas::copy(&mut r0, &r, &mut c);
    let mut p = op.alloc();
    blas::copy(&mut p, &r, &mut c);
    let mut v = op.alloc();
    let mut t = op.alloc();

    let mut rho = C64::new(r_norm2, 0.0); // <r0, r> with r0 = r.
    let mut iterations = resumed.map_or(0, |ctr| ctr.iterations as usize);
    let mut converged = r_norm2 <= target2;
    // Sized for the worst case so steady-state pushes never reallocate.
    let mut history = Vec::with_capacity(params.max_iter);
    let mut abort_error: Option<String> = None;
    let mut ckpt_epoch: u64 = resumed.map_or(0, |ctr| ctr.epoch);
    let save = |sink: &mut dyn CheckpointSink,
                epoch: &mut u64,
                iterations: usize,
                matvecs: u64,
                r2: f64,
                x: &SpinorFieldCb<P>| {
        *epoch += 1;
        checkpoint::deposit(
            sink,
            &tracer,
            CheckpointCounters {
                epoch: *epoch,
                iterations: iterations as u64,
                matvecs_hi: matvecs,
                r2,
                ..Default::default()
            },
            x,
            None,
        );
    };
    if sink.enabled() {
        save(&mut *sink, &mut ckpt_epoch, iterations, matvecs, r_norm2, x);
    }

    while !converged && iterations < params.max_iter {
        // A fault parked by a poisoned operator (dead rank, exhausted
        // retries) is terminal for a uniform-precision solve: there is no
        // checkpoint to roll back to.
        if let Some(f) = op.fault() {
            abort_error = Some(f.message);
            break;
        }
        let iter_tag = iterations as u64 + 1;
        // v = M̂ p.
        traced_iter(&tracer, Phase::Matvec, iter_tag, || op.apply(&mut v, &mut p));
        matvecs += 1;
        let r0v_local = traced(&tracer, Phase::Blas, || blas::cdot(&r0, &v, &mut c));
        let r0v = traced(&tracer, Phase::Reduce, || op.reduce_c(r0v_local));
        if !r0v.re.is_finite() || !r0v.im.is_finite() {
            break; // corrupted reduction; the true-residual check decides
        }
        if r0v.norm_sqr() == 0.0 {
            break; // breakdown
        }
        let alpha = rho.div(r0v);
        // s = r − α v (stored in r), ‖s‖².
        let s_local = traced(&tracer, Phase::Blas, || blas::caxpy_norm(-alpha, &v, &mut r, &mut c));
        let s_norm2 = traced(&tracer, Phase::Reduce, || op.reduce(s_local));
        if !s_norm2.is_finite() {
            break;
        }
        if s_norm2 <= target2 {
            // Early exit on the half-step: x += α p.
            traced(&tracer, Phase::Blas, || blas::caxpy(alpha, &p, x, &mut c));
            iterations += 1;
            converged = true;
            break;
        }
        // t = M̂ s.
        traced_iter(&tracer, Phase::Matvec, iter_tag, || op.apply(&mut t, &mut r));
        matvecs += 1;
        // ω = <t, s> / <t, t>.
        let (ts, tt) = {
            let (dot, n) = traced(&tracer, Phase::Blas, || blas::cdot_norm_a(&t, &r, &mut c));
            traced(&tracer, Phase::Reduce, || (op.reduce_c(dot), op.reduce(n)))
        };
        if tt == 0.0 {
            break;
        }
        let omega = ts.scale(1.0 / tt);
        let (r_local, rho_local) = traced(&tracer, Phase::Blas, || {
            // x += α p + ω s.
            blas::caxpbypz(alpha, &p, omega, &r, x, &mut c);
            // r = s − ω t, ‖r‖².
            let r_local = blas::caxpy_norm(-omega, &t, &mut r, &mut c);
            // ρ' = <r0, r>.
            (r_local, blas::cdot(&r0, &r, &mut c))
        });
        r_norm2 = traced(&tracer, Phase::Reduce, || op.reduce(r_local));
        if !r_norm2.is_finite() {
            break;
        }
        let rho_new = traced(&tracer, Phase::Reduce, || op.reduce_c(rho_local));
        let beta = rho_new.div(rho) * alpha.div(omega);
        rho = rho_new;
        // p = r + β (p − ω v).
        traced(&tracer, Phase::Blas, || {
            blas::cxpaypbz(&r, -(beta * omega), &v, beta, &mut p, &mut c)
        });
        iterations += 1;
        history.push((r_norm2 / b_norm2).sqrt());
        converged = r_norm2 <= target2;
        if sink.enabled() && !converged && iterations % CHECKPOINT_EVERY == 0 {
            save(&mut *sink, &mut ckpt_epoch, iterations, matvecs, r_norm2, x);
        }
    }

    // True residual check.
    let mut rt = op.alloc();
    let true_r2 = residual_norm2(op, &mut rt, x, b, &mut c);
    matvecs += 1;
    let final_residual = (true_r2 / b_norm2).sqrt();
    SolveResult {
        converged: converged && final_residual <= params.tol * 10.0 && abort_error.is_none(),
        iterations,
        matvecs,
        reliable_updates: 0,
        final_residual,
        op_flops: matvecs * op.flops_per_apply(),
        blas: c,
        residual_history: history,
        recoveries: 0,
        comm_recoveries: 0,
        error: abort_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MatPcOp;
    use quda_dirac::{WilsonCloverOp, WilsonParams};
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_fields::precision::{Double, Single};
    use quda_lattice::geometry::{LatticeDims, Parity};

    fn setup<P: Precision>(seed: u64) -> (MatPcOp<P>, SpinorFieldCb<P>) {
        let d = LatticeDims::new(4, 4, 4, 4);
        let cfg = weak_field(d, 0.15, seed);
        let op = WilsonCloverOp::<P>::from_config(&cfg, WilsonParams { mass: 0.2, c_sw: 1.0 });
        let wrapped = MatPcOp::new(op);
        let host = random_spinor_field(d, seed + 100);
        let mut b = wrapped.alloc();
        b.upload(&host, Parity::Odd);
        (wrapped, b)
    }

    #[test]
    fn converges_in_double_to_1e10() {
        let (mut op, b) = setup::<Double>(1);
        let mut x = op.alloc();
        blas::zero(&mut x);
        let params = SolverParams { tol: 1e-10, max_iter: 500, delta: 0.0 };
        let res = bicgstab(&mut op, &mut x, &b, &params);
        assert!(res.converged, "final residual {}", res.final_residual);
        assert!(res.final_residual <= 1e-9);
        assert!(res.iterations > 1);
    }

    #[test]
    fn converges_in_single_to_1e5() {
        let (mut op, b) = setup::<Single>(2);
        let mut x = op.alloc();
        blas::zero(&mut x);
        let params = SolverParams { tol: 1e-5, max_iter: 500, delta: 0.0 };
        let res = bicgstab(&mut op, &mut x, &b, &params);
        assert!(res.converged, "final residual {}", res.final_residual);
    }

    #[test]
    fn zero_rhs_returns_zero_solution() {
        let (mut op, _) = setup::<Double>(3);
        let b = op.alloc();
        let mut x = op.alloc();
        let res = bicgstab(&mut op, &mut x, &b, &SolverParams::default());
        assert!(res.converged);
        assert_eq!(x.norm_sqr(), 0.0);
    }

    #[test]
    fn solution_actually_solves_system() {
        let (mut op, b) = setup::<Double>(4);
        let mut x = op.alloc();
        blas::zero(&mut x);
        let params = SolverParams { tol: 1e-11, max_iter: 500, delta: 0.0 };
        let res = bicgstab(&mut op, &mut x, &b, &params);
        assert!(res.converged);
        let mut mx = op.alloc();
        op.apply(&mut mx, &mut x);
        let mut diff2 = 0.0;
        for cb in 0..b.sites() {
            diff2 += (mx.get(cb) - b.get(cb)).norm_sqr();
        }
        let rel = (diff2 / b.norm_sqr()).sqrt();
        assert!(rel < 1e-10, "rel={rel}");
    }

    #[test]
    fn poisoned_operator_reports_error() {
        use crate::test_faults::FaultyOp;
        let (op, b) = setup::<Double>(6);
        let mut op = FaultyOp::poisoned(op, "allreduce failed: rank 1 is dead");
        let mut x = op.alloc();
        blas::zero(&mut x);
        let res =
            bicgstab(&mut op, &mut x, &b, &SolverParams { tol: 1e-8, max_iter: 100, delta: 0.0 });
        assert!(!res.converged);
        assert_eq!(res.error.as_deref(), Some("allreduce failed: rank 1 is dead"));
    }

    #[test]
    fn flop_accounting_is_positive_and_consistent() {
        let (mut op, b) = setup::<Double>(5);
        let mut x = op.alloc();
        blas::zero(&mut x);
        let res =
            bicgstab(&mut op, &mut x, &b, &SolverParams { tol: 1e-8, max_iter: 500, delta: 0.0 });
        assert!(res.op_flops > 0);
        assert!(res.blas.flops > 0);
        assert_eq!(res.op_flops, res.matvecs * op.flops_per_apply());
        // Blas overhead should be a modest fraction of the matvec work
        // ("the complete solver typically runs 10 to 20% slower than would
        // the matrix-vector product in isolation", Section V-E).
        let frac = res.blas.flops as f64 / res.op_flops as f64;
        assert!(frac < 0.5, "blas fraction {frac}");
    }
}
