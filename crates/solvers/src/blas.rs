//! Fused vector-vector (BLAS1-like) kernels on checkerboard spinor fields.
//!
//! Section V-E: QUDA's solvers are built from streaming kernels fused
//! "wherever possible to reduce memory traffic". We mirror that structure:
//! each routine makes exactly one pass over its operands, reductions
//! accumulate in f64 (as QUDA does on the device), and each routine reports
//! its flop/byte cost through [`BlasOp`] so the performance model can charge
//! the 10–20% solver overhead the paper quotes honestly.
//!
//! All reductions run over data sites only — the ghost end zone is excluded
//! by construction (Section VI-C).
//!
//! Each kernel has two implementations with bit-identical results:
//!
//! * a [`fast`] path for the float precisions, which streams the blocked
//!   storage (Eq. 5) directly through `arith_blocks` — contiguous slices,
//!   no per-real index computation, no bounds checks in the hot loop;
//! * a per-site fallback for the normalized fixed-point precisions, built
//!   on the sanctioned `SpinorFieldCb` combinators (`fill_sites`,
//!   `fold_sites`, `update_fold_sites`), which own the quantization.

use quda_fields::precision::Precision;
use quda_fields::SpinorFieldCb;
use quda_math::complex::{Complex, C64};
use quda_math::real::Real;
use quda_math::spinor::Spinor;

/// Identity of a fused kernel, with per-site costs for the perf model.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlasOp {
    /// Kernel name (matches the QUDA naming style).
    pub name: &'static str,
    /// Effective flops per site.
    pub flops_per_site: u64,
    /// Reals streamed per site (reads + writes).
    pub reals_per_site: u64,
    /// Whether the kernel ends in a global reduction.
    pub is_reduction: bool,
}

/// Per-solve accounting of blas work.
#[derive(Clone, Debug, Default)]
pub struct BlasCounters {
    /// Total effective flops.
    pub flops: u64,
    /// Total reals streamed.
    pub reals: u64,
    /// Number of reduction kernels launched (each needs an MPI allreduce in
    /// the parallel solver, Section VI-E).
    pub reductions: u64,
}

impl BlasCounters {
    /// Charge one launch of `op` over `sites` sites.
    pub fn charge(&mut self, op: &BlasOp, sites: usize) {
        self.flops += op.flops_per_site * sites as u64;
        self.reals += op.reals_per_site * sites as u64;
        if op.is_reduction {
            self.reductions += 1;
        }
    }

    /// Merge another counter set (e.g. from a second solve phase).
    pub fn merge(&mut self, other: &BlasCounters) {
        self.flops += other.flops;
        self.reals += other.reals;
        self.reductions += other.reductions;
    }
}

/// `y ← x` (24 reals read, 24 written).
pub const OP_COPY: BlasOp =
    BlasOp { name: "copy", flops_per_site: 0, reals_per_site: 48, is_reduction: false };
/// `y ← a·x + y` with real `a`.
pub const OP_AXPY: BlasOp =
    BlasOp { name: "axpy", flops_per_site: 48, reals_per_site: 72, is_reduction: false };
/// `y ← x + a·y` with real `a`.
pub const OP_XPAY: BlasOp =
    BlasOp { name: "xpay", flops_per_site: 48, reals_per_site: 72, is_reduction: false };
/// `y ← a·x + y` with complex `a`.
pub const OP_CAXPY: BlasOp =
    BlasOp { name: "caxpy", flops_per_site: 96, reals_per_site: 72, is_reduction: false };
/// `z ← x + a·y + b·z` with complex `a`, `b` (the fused BiCGstab update).
pub const OP_CXPAYPBZ: BlasOp =
    BlasOp { name: "cxpaypbz", flops_per_site: 216, reals_per_site: 120, is_reduction: false };
/// `x ← x + a·p + b·s` with complex `a`, `b`.
pub const OP_CAXPBYPZ: BlasOp =
    BlasOp { name: "caxpbypz", flops_per_site: 192, reals_per_site: 120, is_reduction: false };
/// `‖x‖²` reduction.
pub const OP_NORM2: BlasOp =
    BlasOp { name: "norm2", flops_per_site: 48, reals_per_site: 24, is_reduction: true };
/// `⟨x, y⟩` complex reduction.
pub const OP_CDOT: BlasOp =
    BlasOp { name: "cDotProduct", flops_per_site: 96, reals_per_site: 48, is_reduction: true };
/// Fused `y ← x − a·y; return ‖y‖²`.
pub const OP_XMAY_NORM: BlasOp =
    BlasOp { name: "xmayNormCB", flops_per_site: 96, reals_per_site: 72, is_reduction: true };
/// Fused `⟨x, y⟩` and `‖y‖²` in one pass (BiCGstab's ω numerator/denominator).
pub const OP_CDOT_NORM: BlasOp = BlasOp {
    name: "cDotProductNormB",
    flops_per_site: 144,
    reals_per_site: 48,
    is_reduction: true,
};

/// Direct streaming implementations over the blocked float storage.
///
/// Every routine here is bit-identical to the per-site combinator path:
/// the element-wise kernels apply the same scalar operations to the same
/// stored reals (storage *is* the arithmetic type, `get`/`set` are pure
/// load/store), and the reduction kernels replay the exact accumulation
/// tree of `Spinor::norm_sqr`/`Spinor::dot` — per-colorvec partials
/// folded from zero in ascending complex order, a four-way fold per site,
/// and a global fold in ascending site order — out of tile-sized stack
/// partials. No heap allocation anywhere, so steady-state solver
/// iterations stay allocation-free.
mod fast {
    use super::*;

    /// Sites per reduction tile: bounds the stack partials while letting
    /// every block row be streamed in long contiguous runs.
    const TILE: usize = 64;
    /// Upper bound on `layout.blocks()` (24 reals/site, scalar worst case).
    const MAX_BLOCKS: usize = 24;

    /// Gather the per-block body slices into a stack array; `None` when
    /// the precision has no direct arithmetic view.
    fn blocks_of<'a, P: Precision>(
        f: &'a SpinorFieldCb<P>,
        out: &mut [&'a [P::Arith]; MAX_BLOCKS],
    ) -> Option<usize> {
        let mut n = 0;
        for (slot, b) in out.iter_mut().zip(f.arith_blocks()?) {
            *slot = b;
            n += 1;
        }
        Some(n)
    }

    /// Zero every live real.
    pub fn fill_zero<P: Precision>(x: &mut SpinorFieldCb<P>) -> bool {
        let Some(blocks) = x.arith_blocks_mut() else { return false };
        for b in blocks {
            b.fill(P::Arith::ZERO);
        }
        true
    }

    /// `dst ← src` over every live real.
    pub fn copy<P: Precision>(dst: &mut SpinorFieldCb<P>, src: &SpinorFieldCb<P>) -> bool {
        let Some(s) = src.arith_blocks() else { return false };
        let Some(d) = dst.arith_blocks_mut() else { return false };
        for (db, sb) in d.zip(s) {
            db.copy_from_slice(sb);
        }
        true
    }

    /// `y_i ← f(x_i, y_i)` over every live real.
    pub fn zip2<P: Precision>(
        x: &SpinorFieldCb<P>,
        y: &mut SpinorFieldCb<P>,
        f: impl Fn(P::Arith, P::Arith) -> P::Arith,
    ) -> bool {
        let Some(xb) = x.arith_blocks() else { return false };
        let Some(yb) = y.arith_blocks_mut() else { return false };
        for (xs, ys) in xb.zip(yb) {
            for (xv, yv) in xs.iter().zip(ys.iter_mut()) {
                *yv = f(*xv, *yv);
            }
        }
        true
    }

    /// `y_k ← f(x_k, y_k)` over every live complex.
    pub fn zip2c<P: Precision>(
        x: &SpinorFieldCb<P>,
        y: &mut SpinorFieldCb<P>,
        f: impl Fn(Complex<P::Arith>, Complex<P::Arith>) -> Complex<P::Arith>,
    ) -> bool {
        let Some(xb) = x.arith_blocks() else { return false };
        let Some(yb) = y.arith_blocks_mut() else { return false };
        for (xs, ys) in xb.zip(yb) {
            for (xz, yz) in xs.chunks_exact(2).zip(ys.chunks_exact_mut(2)) {
                let v = f(Complex::new(xz[0], xz[1]), Complex::new(yz[0], yz[1]));
                yz[0] = v.re;
                yz[1] = v.im;
            }
        }
        true
    }

    /// `w_k ← f(u_k, v_k, w_k)` over every live complex.
    pub fn zip3c<P: Precision>(
        u: &SpinorFieldCb<P>,
        v: &SpinorFieldCb<P>,
        w: &mut SpinorFieldCb<P>,
        f: impl Fn(Complex<P::Arith>, Complex<P::Arith>, Complex<P::Arith>) -> Complex<P::Arith>,
    ) -> bool {
        let Some(ub) = u.arith_blocks() else { return false };
        let Some(vb) = v.arith_blocks() else { return false };
        let Some(wb) = w.arith_blocks_mut() else { return false };
        for ((us, vs), ws) in ub.zip(vb).zip(wb) {
            for ((uz, vz), wz) in
                us.chunks_exact(2).zip(vs.chunks_exact(2)).zip(ws.chunks_exact_mut(2))
            {
                let r = f(
                    Complex::new(uz[0], uz[1]),
                    Complex::new(vz[0], vz[1]),
                    Complex::new(wz[0], wz[1]),
                );
                wz[0] = r.re;
                wz[1] = r.im;
            }
        }
        true
    }

    /// Fold a tile's four colorvec partials per site and accumulate into
    /// `acc`, replaying `Spinor::norm_sqr`'s four-way fold and the
    /// site-order global fold.
    fn fold_tile(partial: &[[f64; TILE]; 4], tl: usize, acc: &mut f64) {
        let [p0, p1, p2, p3] = partial;
        for (((&a0, &a1), &a2), &a3) in p0.iter().zip(p1).zip(p2).zip(p3).take(tl) {
            let mut site = 0.0;
            site += a0;
            site += a1;
            site += a2;
            site += a3;
            *acc += site;
        }
    }

    /// Complex counterpart of [`fold_tile`] for `Spinor::dot`.
    fn fold_tile_c(partial: &[[C64; TILE]; 4], tl: usize, acc: &mut C64) {
        let [p0, p1, p2, p3] = partial;
        for (((&a0, &a1), &a2), &a3) in p0.iter().zip(p1).zip(p2).zip(p3).take(tl) {
            let mut site = C64::zero();
            site += a0;
            site += a1;
            site += a2;
            site += a3;
            *acc += site;
        }
    }

    /// `‖x‖²` with the exact per-site fold tree.
    pub fn norm2<P: Precision>(x: &SpinorFieldCb<P>) -> Option<f64> {
        let mut blk: [&[P::Arith]; MAX_BLOCKS] = [&[]; MAX_BLOCKS];
        let nb = blocks_of(x, &mut blk)?;
        let nv = x.layout.n_vec;
        let half = nv / 2;
        if half == 0 {
            return None;
        }
        let sites = x.sites();
        let mut n = 0.0;
        let mut t0 = 0;
        while t0 < sites {
            let tl = TILE.min(sites - t0);
            // partial[cv][t] accumulates colorvec cv's complex norms of
            // tile site t in ascending complex order — the fold of
            // ColorVec::norm_sqr, started from 0.0.
            let mut partial = [[0.0f64; TILE]; 4];
            for (b, &body) in blk.iter().take(nb).enumerate() {
                let seg = &body[nv * t0..nv * (t0 + tl)];
                for (t, site) in seg.chunks_exact(nv).enumerate() {
                    for (c, z) in site.chunks_exact(2).enumerate() {
                        let cv = (b * half + c) / 3;
                        partial[cv][t] += Complex::new(z[0], z[1]).norm_sqr().to_f64();
                    }
                }
            }
            fold_tile(&partial, tl, &mut n);
            t0 += TILE;
        }
        Some(n)
    }

    /// `⟨x, y⟩` with the exact per-site fold tree.
    pub fn cdot<P: Precision>(x: &SpinorFieldCb<P>, y: &SpinorFieldCb<P>) -> Option<C64> {
        let mut xblk: [&[P::Arith]; MAX_BLOCKS] = [&[]; MAX_BLOCKS];
        let mut yblk: [&[P::Arith]; MAX_BLOCKS] = [&[]; MAX_BLOCKS];
        let nb = blocks_of(x, &mut xblk)?;
        blocks_of(y, &mut yblk)?;
        let nv = x.layout.n_vec;
        let half = nv / 2;
        if half == 0 {
            return None;
        }
        let sites = x.sites();
        let mut acc = C64::zero();
        let mut t0 = 0;
        while t0 < sites {
            let tl = TILE.min(sites - t0);
            let mut partial = [[C64::zero(); TILE]; 4];
            for (b, (&xs, &ys)) in xblk.iter().zip(yblk.iter()).take(nb).enumerate() {
                let xseg = &xs[nv * t0..nv * (t0 + tl)];
                let yseg = &ys[nv * t0..nv * (t0 + tl)];
                for (t, (xsite, ysite)) in
                    xseg.chunks_exact(nv).zip(yseg.chunks_exact(nv)).enumerate()
                {
                    for (c, (xz, yz)) in
                        xsite.chunks_exact(2).zip(ysite.chunks_exact(2)).enumerate()
                    {
                        let cv = (b * half + c) / 3;
                        let xv = Complex::new(xz[0], xz[1]).cast::<f64>();
                        let yv = Complex::new(yz[0], yz[1]).cast::<f64>();
                        partial[cv][t] += xv.conj() * yv;
                    }
                }
            }
            fold_tile_c(&partial, tl, &mut acc);
            t0 += TILE;
        }
        Some(acc)
    }

    /// Fused `(⟨x, y⟩, ‖x‖²)` with the exact per-site fold trees.
    pub fn cdot_norm_a<P: Precision>(
        x: &SpinorFieldCb<P>,
        y: &SpinorFieldCb<P>,
    ) -> Option<(C64, f64)> {
        let mut xblk: [&[P::Arith]; MAX_BLOCKS] = [&[]; MAX_BLOCKS];
        let mut yblk: [&[P::Arith]; MAX_BLOCKS] = [&[]; MAX_BLOCKS];
        let nb = blocks_of(x, &mut xblk)?;
        blocks_of(y, &mut yblk)?;
        let nv = x.layout.n_vec;
        let half = nv / 2;
        if half == 0 {
            return None;
        }
        let sites = x.sites();
        let mut dot = C64::zero();
        let mut n = 0.0;
        let mut t0 = 0;
        while t0 < sites {
            let tl = TILE.min(sites - t0);
            let mut dpart = [[C64::zero(); TILE]; 4];
            let mut npart = [[0.0f64; TILE]; 4];
            for (b, (&xs, &ys)) in xblk.iter().zip(yblk.iter()).take(nb).enumerate() {
                let xseg = &xs[nv * t0..nv * (t0 + tl)];
                let yseg = &ys[nv * t0..nv * (t0 + tl)];
                for (t, (xsite, ysite)) in
                    xseg.chunks_exact(nv).zip(yseg.chunks_exact(nv)).enumerate()
                {
                    for (c, (xz, yz)) in
                        xsite.chunks_exact(2).zip(ysite.chunks_exact(2)).enumerate()
                    {
                        let cv = (b * half + c) / 3;
                        let xa = Complex::new(xz[0], xz[1]);
                        let xv = xa.cast::<f64>();
                        let yv = Complex::new(yz[0], yz[1]).cast::<f64>();
                        dpart[cv][t] += xv.conj() * yv;
                        npart[cv][t] += xa.norm_sqr().to_f64();
                    }
                }
            }
            fold_tile_c(&dpart, tl, &mut dot);
            fold_tile(&npart, tl, &mut n);
            t0 += TILE;
        }
        Some((dot, n))
    }

    /// Fused `y_k ← f(x_k, y_k); return ‖y‖²` with the exact fold tree —
    /// the shape of `xmay_norm`, `xmy_norm` and `caxpy_norm`.
    pub fn zip2c_norm<P: Precision>(
        x: &SpinorFieldCb<P>,
        y: &mut SpinorFieldCb<P>,
        f: impl Fn(Complex<P::Arith>, Complex<P::Arith>) -> Complex<P::Arith>,
    ) -> Option<f64> {
        let mut xblk: [&[P::Arith]; MAX_BLOCKS] = [&[]; MAX_BLOCKS];
        let nb = blocks_of(x, &mut xblk)?;
        let nv = y.layout.n_vec;
        let half = nv / 2;
        if half == 0 {
            return None;
        }
        let row = nv * y.layout.stride();
        let live = nv * y.layout.sites;
        let body_len = y.layout.body_len();
        let ybody = P::arith_view_mut(&mut y.data[..body_len])?;
        let sites = x.sites();
        let mut n = 0.0;
        let mut t0 = 0;
        while t0 < sites {
            let tl = TILE.min(sites - t0);
            let mut partial = [[0.0f64; TILE]; 4];
            for (b, yrow) in ybody.chunks_exact_mut(row).take(nb).enumerate() {
                let yseg = &mut yrow[..live][nv * t0..nv * (t0 + tl)];
                let xseg = &xblk[b][nv * t0..nv * (t0 + tl)];
                for (t, (xsite, ysite)) in
                    xseg.chunks_exact(nv).zip(yseg.chunks_exact_mut(nv)).enumerate()
                {
                    for (c, (xz, yz)) in
                        xsite.chunks_exact(2).zip(ysite.chunks_exact_mut(2)).enumerate()
                    {
                        let v = f(Complex::new(xz[0], xz[1]), Complex::new(yz[0], yz[1]));
                        yz[0] = v.re;
                        yz[1] = v.im;
                        let cv = (b * half + c) / 3;
                        partial[cv][t] += v.norm_sqr().to_f64();
                    }
                }
            }
            fold_tile(&partial, tl, &mut n);
            t0 += TILE;
        }
        Some(n)
    }
}

/// Set every site to zero.
pub fn zero<P: Precision>(x: &mut SpinorFieldCb<P>) {
    if fast::fill_zero(x) {
        return;
    }
    x.fill_sites(|_| Spinor::zero());
}

/// `dst ← src`.
pub fn copy<P: Precision>(
    dst: &mut SpinorFieldCb<P>,
    src: &SpinorFieldCb<P>,
    c: &mut BlasCounters,
) {
    debug_assert_eq!(dst.sites(), src.sites());
    if !fast::copy(dst, src) {
        dst.fill_sites(|cb| src.get(cb));
    }
    c.charge(&OP_COPY, src.sites());
}

/// `y ← a·x + y` (real `a`).
pub fn axpy<P: Precision>(
    a: f64,
    x: &SpinorFieldCb<P>,
    y: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) {
    let a = P::Arith::from_f64(a);
    if !fast::zip2(x, y, |xv, yv| yv + xv * a) {
        y.update_sites(|cb, yv| yv + x.get(cb).scale_re(a));
    }
    c.charge(&OP_AXPY, x.sites());
}

/// `y ← x + a·y` (real `a`).
pub fn xpay<P: Precision>(
    x: &SpinorFieldCb<P>,
    a: f64,
    y: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) {
    let a = P::Arith::from_f64(a);
    if !fast::zip2(x, y, |xv, yv| xv + yv * a) {
        y.update_sites(|cb, yv| x.get(cb) + yv.scale_re(a));
    }
    c.charge(&OP_XPAY, x.sites());
}

/// `y ← a·x + y` (complex `a`).
pub fn caxpy<P: Precision>(
    a: C64,
    x: &SpinorFieldCb<P>,
    y: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) {
    let a = cast_c::<P>(a);
    if !fast::zip2c(x, y, |xz, yz| yz + xz * a) {
        y.update_sites(|cb, yv| yv + x.get(cb).scale(a));
    }
    c.charge(&OP_CAXPY, x.sites());
}

/// `z ← x + a·y + b·z` (complex `a`, `b`) — BiCGstab's search-direction
/// update `p = r + β(p − ω v)` in one fused pass.
pub fn cxpaypbz<P: Precision>(
    x: &SpinorFieldCb<P>,
    a: C64,
    y: &SpinorFieldCb<P>,
    b: C64,
    z: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) {
    let a = cast_c::<P>(a);
    let b = cast_c::<P>(b);
    if !fast::zip3c(x, y, z, |xz, yz, zz| xz + yz * a + zz * b) {
        z.update_sites(|cb, zv| x.get(cb) + y.get(cb).scale(a) + zv.scale(b));
    }
    c.charge(&OP_CXPAYPBZ, x.sites());
}

/// `x ← x + a·p + b·s` (complex `a`, `b`) — BiCGstab's solution update.
pub fn caxpbypz<P: Precision>(
    a: C64,
    p: &SpinorFieldCb<P>,
    b: C64,
    s: &SpinorFieldCb<P>,
    x: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) {
    let a = cast_c::<P>(a);
    let b = cast_c::<P>(b);
    if !fast::zip3c(p, s, x, |pz, sz, xz| xz + pz * a + sz * b) {
        x.update_sites(|cb, xv| xv + p.get(cb).scale(a) + s.get(cb).scale(b));
    }
    c.charge(&OP_CAXPBYPZ, p.sites());
}

/// `‖x‖²` with f64 accumulation (local part; the parallel solver allreduces).
pub fn norm2<P: Precision>(x: &SpinorFieldCb<P>, c: &mut BlasCounters) -> f64 {
    c.charge(&OP_NORM2, x.sites());
    match fast::norm2(x) {
        Some(n) => n,
        None => x.fold_sites(0.0, |n, _, v| n + v.norm_sqr()),
    }
}

/// `⟨x, y⟩` with f64 accumulation (local part).
pub fn cdot<P: Precision>(x: &SpinorFieldCb<P>, y: &SpinorFieldCb<P>, c: &mut BlasCounters) -> C64 {
    c.charge(&OP_CDOT, x.sites());
    match fast::cdot(x, y) {
        Some(d) => d,
        None => x.fold_sites(C64::zero(), |acc, cb, xv| acc + xv.dot(&y.get(cb))),
    }
}

/// Fused `y ← x − a·y; return ‖y‖²` (BiCGstab's `s = r − α v` step).
pub fn xmay_norm<P: Precision>(
    x: &SpinorFieldCb<P>,
    a: C64,
    y: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) -> f64 {
    let ac = cast_c::<P>(a);
    let n = match fast::zip2c_norm(x, y, |xz, yz| xz - yz * ac) {
        Some(n) => n,
        None => y.update_fold_sites(0.0, |n, cb, yv| {
            let v = x.get(cb) - yv.scale(ac);
            (v, n + v.norm_sqr())
        }),
    };
    c.charge(&OP_XMAY_NORM, x.sites());
    n
}

/// Fused `y ← x − y; return ‖y‖²` — residual formation against a fresh
/// operator application (`r ← b − Ax` with `Ax` staged in `y`). Like every
/// reduction kernel here this returns the *local* part; partitioned callers
/// route it through `LinearOperator::reduce`.
pub fn xmy_norm<P: Precision>(
    x: &SpinorFieldCb<P>,
    y: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) -> f64 {
    let n = match fast::zip2c_norm(x, y, |xz, yz| xz - yz) {
        Some(n) => n,
        None => y.update_fold_sites(0.0, |n, cb, yv| {
            let v = x.get(cb) - yv;
            (v, n + v.norm_sqr())
        }),
    };
    c.charge(&OP_XMAY_NORM, x.sites());
    n
}

/// Fused `y ← y + a·x; return ‖y‖²` (complex `a`) — the `s = r − αv` and
/// `r = s − ωt` steps of BiCGstab with their norms folded in.
pub const OP_CAXPY_NORM: BlasOp =
    BlasOp { name: "caxpyNorm", flops_per_site: 144, reals_per_site: 72, is_reduction: true };

/// Fused `y ← y + a·x; return ‖y‖²`.
pub fn caxpy_norm<P: Precision>(
    a: C64,
    x: &SpinorFieldCb<P>,
    y: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) -> f64 {
    let ac = cast_c::<P>(a);
    let n = match fast::zip2c_norm(x, y, |xz, yz| yz + xz * ac) {
        Some(n) => n,
        None => y.update_fold_sites(0.0, |n, cb, yv| {
            let v = yv + x.get(cb).scale(ac);
            (v, n + v.norm_sqr())
        }),
    };
    c.charge(&OP_CAXPY_NORM, x.sites());
    n
}

/// Fused `(⟨x, y⟩, ‖x‖²)` in one pass — ω's numerator and denominator.
pub fn cdot_norm_a<P: Precision>(
    x: &SpinorFieldCb<P>,
    y: &SpinorFieldCb<P>,
    c: &mut BlasCounters,
) -> (C64, f64) {
    c.charge(&OP_CDOT_NORM, x.sites());
    match fast::cdot_norm_a(x, y) {
        Some(r) => r,
        None => x.fold_sites((C64::zero(), 0.0), |(dot, n), cb, xs| {
            (dot + xs.dot(&y.get(cb)), n + xs.norm_sqr())
        }),
    }
}

#[inline(always)]
fn cast_c<P: Precision>(a: C64) -> Complex<P::Arith> {
    Complex::new(P::Arith::from_f64(a.re), P::Arith::from_f64(a.im))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::gauge_gen::random_spinor_field;
    use quda_fields::precision::{Double, Half, Single};
    use quda_lattice::geometry::{LatticeDims, Parity};

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 2, 4)
    }

    fn field(seed: u64) -> SpinorFieldCb<Double> {
        let host = random_spinor_field(dims(), seed);
        let mut f = SpinorFieldCb::new(dims(), false);
        f.upload(&host, Parity::Odd);
        f
    }

    /// A lattice whose site count is not a multiple of the reduction tile,
    /// so the partial-tile tail path is exercised.
    fn odd_dims() -> LatticeDims {
        LatticeDims::new(4, 4, 2, 6)
    }

    fn field_p<P: Precision>(d: LatticeDims, seed: u64) -> SpinorFieldCb<P> {
        let host = random_spinor_field(d, seed);
        let mut f = SpinorFieldCb::new(d, false);
        f.upload(&host, Parity::Odd);
        f
    }

    #[test]
    fn axpy_matches_manual() {
        let x = field(1);
        let mut y = field(2);
        let y0 = y.clone();
        let mut c = BlasCounters::default();
        axpy(0.5, &x, &mut y, &mut c);
        for cb in 0..x.sites() {
            let expect = y0.get(cb) + x.get(cb).scale_re(0.5);
            assert!((y.get(cb) - expect).norm_sqr() < 1e-28);
        }
        assert_eq!(c.flops, 48 * x.sites() as u64);
        assert_eq!(c.reductions, 0);
    }

    #[test]
    fn norm_and_dot_consistent() {
        let x = field(3);
        let mut c = BlasCounters::default();
        let n = norm2(&x, &mut c);
        let d = cdot(&x, &x, &mut c);
        assert!((n - d.re).abs() < 1e-10);
        assert!(d.im.abs() < 1e-10);
        assert_eq!(c.reductions, 2);
    }

    #[test]
    fn fused_xmay_norm_matches_composition() {
        let x = field(4);
        let mut y = field(5);
        let y0 = y.clone();
        let a = C64::new(0.3, -0.7);
        let mut c = BlasCounters::default();
        let n = xmay_norm(&x, a, &mut y, &mut c);
        let mut expect_norm = 0.0;
        for cb in 0..x.sites() {
            let expect = x.get(cb) - y0.get(cb).scale(a.cast());
            expect_norm += expect.norm_sqr();
            assert!((y.get(cb) - expect).norm_sqr() < 1e-26);
        }
        assert!((n - expect_norm).abs() < 1e-10);
    }

    #[test]
    fn fused_xmy_norm_matches_composition() {
        let x = field(16);
        let mut y = field(17);
        let y0 = y.clone();
        let mut c = BlasCounters::default();
        let n = xmy_norm(&x, &mut y, &mut c);
        let mut expect_norm = 0.0;
        for cb in 0..x.sites() {
            let expect = x.get(cb) - y0.get(cb);
            expect_norm += expect.norm_sqr();
            assert!((y.get(cb) - expect).norm_sqr() < 1e-26);
        }
        assert!((n - expect_norm).abs() < 1e-10);
        assert_eq!(c.reductions, 1);
    }

    #[test]
    fn fused_bicgstab_updates_match_composition() {
        let p = field(6);
        let s = field(7);
        let mut x = field(8);
        let x0 = x.clone();
        let a = C64::new(1.1, 0.2);
        let b = C64::new(-0.4, 0.9);
        let mut c = BlasCounters::default();
        caxpbypz(a, &p, b, &s, &mut x, &mut c);
        for cb in 0..p.sites() {
            let expect = x0.get(cb) + p.get(cb).scale(a.cast()) + s.get(cb).scale(b.cast());
            assert!((x.get(cb) - expect).norm_sqr() < 1e-26);
        }
        let r = field(9);
        let v = field(10);
        let mut z = field(11);
        let z0 = z.clone();
        cxpaypbz(&r, a, &v, b, &mut z, &mut c);
        for cb in 0..r.sites() {
            let expect = r.get(cb) + v.get(cb).scale(a.cast()) + z0.get(cb).scale(b.cast());
            assert!((z.get(cb) - expect).norm_sqr() < 1e-26);
        }
    }

    #[test]
    fn cdot_norm_fusion() {
        let x = field(12);
        let y = field(13);
        let mut c = BlasCounters::default();
        let (d, n) = cdot_norm_a(&x, &y, &mut c);
        let d2 = cdot(&x, &y, &mut c);
        let n2 = norm2(&x, &mut c);
        assert!((d.re - d2.re).abs() < 1e-10 && (d.im - d2.im).abs() < 1e-10);
        assert!((n - n2).abs() < 1e-10);
    }

    #[test]
    fn zero_and_copy() {
        let mut x = field(14);
        let mut c = BlasCounters::default();
        let y = field(15);
        copy(&mut x, &y, &mut c);
        for cb in 0..x.sites() {
            assert_eq!(x.get(cb), y.get(cb));
        }
        zero(&mut x);
        assert_eq!(norm2(&x, &mut c), 0.0);
    }

    #[test]
    fn single_precision_blas_accumulates_in_f64() {
        // Summing many equal values stays exact in the f64 accumulator even
        // when the storage is f32.
        let d = dims();
        let mut x = SpinorFieldCb::<Single>::new(d, false);
        let mut sp = quda_math::spinor::Spinor::<f32>::zero();
        sp.s[0].c[0].re = 1.0;
        for cb in 0..x.sites() {
            x.set(cb, &sp);
        }
        let mut c = BlasCounters::default();
        let n = norm2(&x, &mut c);
        assert_eq!(n, x.sites() as f64);
    }

    /// The fast streaming paths must reproduce the per-site reference
    /// *bit for bit*: same reals, same operations, same fold order. This
    /// is what keeps solver trajectories byte-stable across the refactor.
    fn assert_fast_paths_bit_identical<P: Precision>(d: LatticeDims) {
        let x = field_p::<P>(d, 31);
        let y0 = field_p::<P>(d, 32);
        let mut c = BlasCounters::default();
        let a = C64::new(0.375, -1.25);
        let ar = 0.8125;

        // norm2 / cdot / cdot_norm_a against explicit per-site folds.
        let mut n_ref = 0.0;
        let mut d_ref = C64::zero();
        for cb in 0..x.sites() {
            n_ref += x.get(cb).norm_sqr();
            d_ref += x.get(cb).dot(&y0.get(cb));
        }
        assert_eq!(norm2(&x, &mut c).to_bits(), n_ref.to_bits());
        let dd = cdot(&x, &y0, &mut c);
        assert_eq!((dd.re.to_bits(), dd.im.to_bits()), (d_ref.re.to_bits(), d_ref.im.to_bits()));
        let (dn, nn) = cdot_norm_a(&x, &y0, &mut c);
        assert_eq!(dn.re.to_bits(), d_ref.re.to_bits());
        assert_eq!(nn.to_bits(), n_ref.to_bits());

        // Element-wise kernels against a per-site get/set replay.
        let mut y = y0.clone();
        let mut y_ref = y0.clone();
        axpy(ar, &x, &mut y, &mut c);
        let art = P::Arith::from_f64(ar);
        for cb in 0..x.sites() {
            let v = y_ref.get(cb) + x.get(cb).scale_re(art);
            y_ref.set(cb, &v);
        }
        for cb in 0..x.sites() {
            assert_eq!(y.get(cb), y_ref.get(cb), "axpy site {cb}");
        }
        caxpy(a, &x, &mut y, &mut c);
        let act = Complex::new(P::Arith::from_f64(a.re), P::Arith::from_f64(a.im));
        for cb in 0..x.sites() {
            let v = y_ref.get(cb) + x.get(cb).scale(act);
            y_ref.set(cb, &v);
        }
        for cb in 0..x.sites() {
            assert_eq!(y.get(cb), y_ref.get(cb), "caxpy site {cb}");
        }

        // Fused write+norm kernel against a per-site replay.
        let n = xmay_norm(&x, a, &mut y, &mut c);
        let mut n_ref2 = 0.0;
        for cb in 0..x.sites() {
            let v = x.get(cb) - y_ref.get(cb).scale(act);
            n_ref2 += v.norm_sqr();
            y_ref.set(cb, &v);
        }
        assert_eq!(n.to_bits(), n_ref2.to_bits());
        for cb in 0..x.sites() {
            assert_eq!(y.get(cb), y_ref.get(cb), "xmay_norm site {cb}");
        }
    }

    #[test]
    fn fast_paths_bit_identical_double() {
        assert_fast_paths_bit_identical::<Double>(dims());
        assert_fast_paths_bit_identical::<Double>(odd_dims());
    }

    #[test]
    fn fast_paths_bit_identical_single() {
        assert_fast_paths_bit_identical::<Single>(dims());
        assert_fast_paths_bit_identical::<Single>(odd_dims());
    }

    #[test]
    fn half_precision_fallback_still_works() {
        // Half has no direct view; the combinator path carries it.
        let x = field_p::<Half>(odd_dims(), 41);
        let mut y = field_p::<Half>(odd_dims(), 42);
        let y0 = y.clone();
        let mut c = BlasCounters::default();
        axpy(0.5, &x, &mut y, &mut c);
        for cb in 0..x.sites() {
            let expect = y0.get(cb) + x.get(cb).scale_re(0.5);
            let bound = expect.max_abs() / 16000.0 + 1e-5;
            assert!((y.get(cb) - expect).max_abs() <= bound);
        }
        let n = norm2(&x, &mut c);
        let mut n_ref = 0.0;
        for cb in 0..x.sites() {
            n_ref += x.get(cb).norm_sqr();
        }
        assert_eq!(n.to_bits(), n_ref.to_bits());
    }
}
