//! Fused vector-vector (BLAS1-like) kernels on checkerboard spinor fields.
//!
//! Section V-E: QUDA's solvers are built from streaming kernels fused
//! "wherever possible to reduce memory traffic". We mirror that structure:
//! each routine makes exactly one pass over its operands, reductions
//! accumulate in f64 (as QUDA does on the device), and each routine reports
//! its flop/byte cost through [`BlasOp`] so the performance model can charge
//! the 10–20% solver overhead the paper quotes honestly.
//!
//! All reductions run over data sites only — the ghost end zone is excluded
//! by construction (Section VI-C).

use quda_fields::precision::Precision;
use quda_fields::SpinorFieldCb;
use quda_math::complex::{Complex, C64};
use quda_math::real::Real;

/// Identity of a fused kernel, with per-site costs for the perf model.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlasOp {
    /// Kernel name (matches the QUDA naming style).
    pub name: &'static str,
    /// Effective flops per site.
    pub flops_per_site: u64,
    /// Reals streamed per site (reads + writes).
    pub reals_per_site: u64,
    /// Whether the kernel ends in a global reduction.
    pub is_reduction: bool,
}

/// Per-solve accounting of blas work.
#[derive(Clone, Debug, Default)]
pub struct BlasCounters {
    /// Total effective flops.
    pub flops: u64,
    /// Total reals streamed.
    pub reals: u64,
    /// Number of reduction kernels launched (each needs an MPI allreduce in
    /// the parallel solver, Section VI-E).
    pub reductions: u64,
}

impl BlasCounters {
    /// Charge one launch of `op` over `sites` sites.
    pub fn charge(&mut self, op: &BlasOp, sites: usize) {
        self.flops += op.flops_per_site * sites as u64;
        self.reals += op.reals_per_site * sites as u64;
        if op.is_reduction {
            self.reductions += 1;
        }
    }

    /// Merge another counter set (e.g. from a second solve phase).
    pub fn merge(&mut self, other: &BlasCounters) {
        self.flops += other.flops;
        self.reals += other.reals;
        self.reductions += other.reductions;
    }
}

/// `y ← x` (24 reals read, 24 written).
pub const OP_COPY: BlasOp =
    BlasOp { name: "copy", flops_per_site: 0, reals_per_site: 48, is_reduction: false };
/// `y ← a·x + y` with real `a`.
pub const OP_AXPY: BlasOp =
    BlasOp { name: "axpy", flops_per_site: 48, reals_per_site: 72, is_reduction: false };
/// `y ← x + a·y` with real `a`.
pub const OP_XPAY: BlasOp =
    BlasOp { name: "xpay", flops_per_site: 48, reals_per_site: 72, is_reduction: false };
/// `y ← a·x + y` with complex `a`.
pub const OP_CAXPY: BlasOp =
    BlasOp { name: "caxpy", flops_per_site: 96, reals_per_site: 72, is_reduction: false };
/// `z ← x + a·y + b·z` with complex `a`, `b` (the fused BiCGstab update).
pub const OP_CXPAYPBZ: BlasOp =
    BlasOp { name: "cxpaypbz", flops_per_site: 216, reals_per_site: 120, is_reduction: false };
/// `x ← x + a·p + b·s` with complex `a`, `b`.
pub const OP_CAXPBYPZ: BlasOp =
    BlasOp { name: "caxpbypz", flops_per_site: 192, reals_per_site: 120, is_reduction: false };
/// `‖x‖²` reduction.
pub const OP_NORM2: BlasOp =
    BlasOp { name: "norm2", flops_per_site: 48, reals_per_site: 24, is_reduction: true };
/// `⟨x, y⟩` complex reduction.
pub const OP_CDOT: BlasOp =
    BlasOp { name: "cDotProduct", flops_per_site: 96, reals_per_site: 48, is_reduction: true };
/// Fused `y ← x − a·y; return ‖y‖²`.
pub const OP_XMAY_NORM: BlasOp =
    BlasOp { name: "xmayNormCB", flops_per_site: 96, reals_per_site: 72, is_reduction: true };
/// Fused `⟨x, y⟩` and `‖y‖²` in one pass (BiCGstab's ω numerator/denominator).
pub const OP_CDOT_NORM: BlasOp = BlasOp {
    name: "cDotProductNormB",
    flops_per_site: 144,
    reals_per_site: 48,
    is_reduction: true,
};

/// Set every site to zero.
pub fn zero<P: Precision>(x: &mut SpinorFieldCb<P>) {
    let z = quda_math::spinor::Spinor::zero();
    for cb in 0..x.sites() {
        x.set(cb, &z);
    }
}

/// `dst ← src`.
pub fn copy<P: Precision>(
    dst: &mut SpinorFieldCb<P>,
    src: &SpinorFieldCb<P>,
    c: &mut BlasCounters,
) {
    debug_assert_eq!(dst.sites(), src.sites());
    for cb in 0..src.sites() {
        dst.set(cb, &src.get(cb));
    }
    c.charge(&OP_COPY, src.sites());
}

/// `y ← a·x + y` (real `a`).
pub fn axpy<P: Precision>(
    a: f64,
    x: &SpinorFieldCb<P>,
    y: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) {
    let a = P::Arith::from_f64(a);
    for cb in 0..x.sites() {
        let v = y.get(cb) + x.get(cb).scale_re(a);
        y.set(cb, &v);
    }
    c.charge(&OP_AXPY, x.sites());
}

/// `y ← x + a·y` (real `a`).
pub fn xpay<P: Precision>(
    x: &SpinorFieldCb<P>,
    a: f64,
    y: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) {
    let a = P::Arith::from_f64(a);
    for cb in 0..x.sites() {
        let v = x.get(cb) + y.get(cb).scale_re(a);
        y.set(cb, &v);
    }
    c.charge(&OP_XPAY, x.sites());
}

/// `y ← a·x + y` (complex `a`).
pub fn caxpy<P: Precision>(
    a: C64,
    x: &SpinorFieldCb<P>,
    y: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) {
    let a = cast_c::<P>(a);
    for cb in 0..x.sites() {
        let v = y.get(cb) + x.get(cb).scale(a);
        y.set(cb, &v);
    }
    c.charge(&OP_CAXPY, x.sites());
}

/// `z ← x + a·y + b·z` (complex `a`, `b`) — BiCGstab's search-direction
/// update `p = r + β(p − ω v)` in one fused pass.
pub fn cxpaypbz<P: Precision>(
    x: &SpinorFieldCb<P>,
    a: C64,
    y: &SpinorFieldCb<P>,
    b: C64,
    z: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) {
    let a = cast_c::<P>(a);
    let b = cast_c::<P>(b);
    for cb in 0..x.sites() {
        let v = x.get(cb) + y.get(cb).scale(a) + z.get(cb).scale(b);
        z.set(cb, &v);
    }
    c.charge(&OP_CXPAYPBZ, x.sites());
}

/// `x ← x + a·p + b·s` (complex `a`, `b`) — BiCGstab's solution update.
pub fn caxpbypz<P: Precision>(
    a: C64,
    p: &SpinorFieldCb<P>,
    b: C64,
    s: &SpinorFieldCb<P>,
    x: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) {
    let a = cast_c::<P>(a);
    let b = cast_c::<P>(b);
    for cb in 0..p.sites() {
        let v = x.get(cb) + p.get(cb).scale(a) + s.get(cb).scale(b);
        x.set(cb, &v);
    }
    c.charge(&OP_CAXPBYPZ, p.sites());
}

/// `‖x‖²` with f64 accumulation (local part; the parallel solver allreduces).
pub fn norm2<P: Precision>(x: &SpinorFieldCb<P>, c: &mut BlasCounters) -> f64 {
    c.charge(&OP_NORM2, x.sites());
    (0..x.sites()).map(|cb| x.get(cb).norm_sqr()).sum()
}

/// `⟨x, y⟩` with f64 accumulation (local part).
pub fn cdot<P: Precision>(x: &SpinorFieldCb<P>, y: &SpinorFieldCb<P>, c: &mut BlasCounters) -> C64 {
    c.charge(&OP_CDOT, x.sites());
    let mut acc = C64::zero();
    for cb in 0..x.sites() {
        acc += x.get(cb).dot(&y.get(cb));
    }
    acc
}

/// Fused `y ← x − a·y; return ‖y‖²` (BiCGstab's `s = r − α v` step).
pub fn xmay_norm<P: Precision>(
    x: &SpinorFieldCb<P>,
    a: C64,
    y: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) -> f64 {
    let ac = cast_c::<P>(a);
    let mut n = 0.0;
    for cb in 0..x.sites() {
        let v = x.get(cb) - y.get(cb).scale(ac);
        n += v.norm_sqr();
        y.set(cb, &v);
    }
    c.charge(&OP_XMAY_NORM, x.sites());
    n
}

/// Fused `y ← x − y; return ‖y‖²` — residual formation against a fresh
/// operator application (`r ← b − Ax` with `Ax` staged in `y`). Like every
/// reduction kernel here this returns the *local* part; partitioned callers
/// route it through `LinearOperator::reduce`.
pub fn xmy_norm<P: Precision>(
    x: &SpinorFieldCb<P>,
    y: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) -> f64 {
    let mut n = 0.0;
    for cb in 0..x.sites() {
        let v = x.get(cb) - y.get(cb);
        n += v.norm_sqr();
        y.set(cb, &v);
    }
    c.charge(&OP_XMAY_NORM, x.sites());
    n
}

/// Fused `y ← y + a·x; return ‖y‖²` (complex `a`) — the `s = r − αv` and
/// `r = s − ωt` steps of BiCGstab with their norms folded in.
pub const OP_CAXPY_NORM: BlasOp =
    BlasOp { name: "caxpyNorm", flops_per_site: 144, reals_per_site: 72, is_reduction: true };

/// Fused `y ← y + a·x; return ‖y‖²`.
pub fn caxpy_norm<P: Precision>(
    a: C64,
    x: &SpinorFieldCb<P>,
    y: &mut SpinorFieldCb<P>,
    c: &mut BlasCounters,
) -> f64 {
    let ac = cast_c::<P>(a);
    let mut n = 0.0;
    for cb in 0..x.sites() {
        let v = y.get(cb) + x.get(cb).scale(ac);
        n += v.norm_sqr();
        y.set(cb, &v);
    }
    c.charge(&OP_CAXPY_NORM, x.sites());
    n
}

/// Fused `(⟨x, y⟩, ‖x‖²)` in one pass — ω's numerator and denominator.
pub fn cdot_norm_a<P: Precision>(
    x: &SpinorFieldCb<P>,
    y: &SpinorFieldCb<P>,
    c: &mut BlasCounters,
) -> (C64, f64) {
    c.charge(&OP_CDOT_NORM, x.sites());
    let mut dot = C64::zero();
    let mut n = 0.0;
    for cb in 0..x.sites() {
        let xs = x.get(cb);
        dot += xs.dot(&y.get(cb));
        n += xs.norm_sqr();
    }
    (dot, n)
}

#[inline(always)]
fn cast_c<P: Precision>(a: C64) -> Complex<P::Arith> {
    Complex::new(P::Arith::from_f64(a.re), P::Arith::from_f64(a.im))
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_fields::gauge_gen::random_spinor_field;
    use quda_fields::precision::{Double, Single};
    use quda_lattice::geometry::{LatticeDims, Parity};

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 2, 4)
    }

    fn field(seed: u64) -> SpinorFieldCb<Double> {
        let host = random_spinor_field(dims(), seed);
        let mut f = SpinorFieldCb::new(dims(), false);
        f.upload(&host, Parity::Odd);
        f
    }

    #[test]
    fn axpy_matches_manual() {
        let x = field(1);
        let mut y = field(2);
        let y0 = y.clone();
        let mut c = BlasCounters::default();
        axpy(0.5, &x, &mut y, &mut c);
        for cb in 0..x.sites() {
            let expect = y0.get(cb) + x.get(cb).scale_re(0.5);
            assert!((y.get(cb) - expect).norm_sqr() < 1e-28);
        }
        assert_eq!(c.flops, 48 * x.sites() as u64);
        assert_eq!(c.reductions, 0);
    }

    #[test]
    fn norm_and_dot_consistent() {
        let x = field(3);
        let mut c = BlasCounters::default();
        let n = norm2(&x, &mut c);
        let d = cdot(&x, &x, &mut c);
        assert!((n - d.re).abs() < 1e-10);
        assert!(d.im.abs() < 1e-10);
        assert_eq!(c.reductions, 2);
    }

    #[test]
    fn fused_xmay_norm_matches_composition() {
        let x = field(4);
        let mut y = field(5);
        let y0 = y.clone();
        let a = C64::new(0.3, -0.7);
        let mut c = BlasCounters::default();
        let n = xmay_norm(&x, a, &mut y, &mut c);
        let mut expect_norm = 0.0;
        for cb in 0..x.sites() {
            let expect = x.get(cb) - y0.get(cb).scale(a.cast());
            expect_norm += expect.norm_sqr();
            assert!((y.get(cb) - expect).norm_sqr() < 1e-26);
        }
        assert!((n - expect_norm).abs() < 1e-10);
    }

    #[test]
    fn fused_xmy_norm_matches_composition() {
        let x = field(16);
        let mut y = field(17);
        let y0 = y.clone();
        let mut c = BlasCounters::default();
        let n = xmy_norm(&x, &mut y, &mut c);
        let mut expect_norm = 0.0;
        for cb in 0..x.sites() {
            let expect = x.get(cb) - y0.get(cb);
            expect_norm += expect.norm_sqr();
            assert!((y.get(cb) - expect).norm_sqr() < 1e-26);
        }
        assert!((n - expect_norm).abs() < 1e-10);
        assert_eq!(c.reductions, 1);
    }

    #[test]
    fn fused_bicgstab_updates_match_composition() {
        let p = field(6);
        let s = field(7);
        let mut x = field(8);
        let x0 = x.clone();
        let a = C64::new(1.1, 0.2);
        let b = C64::new(-0.4, 0.9);
        let mut c = BlasCounters::default();
        caxpbypz(a, &p, b, &s, &mut x, &mut c);
        for cb in 0..p.sites() {
            let expect = x0.get(cb) + p.get(cb).scale(a.cast()) + s.get(cb).scale(b.cast());
            assert!((x.get(cb) - expect).norm_sqr() < 1e-26);
        }
        let r = field(9);
        let v = field(10);
        let mut z = field(11);
        let z0 = z.clone();
        cxpaypbz(&r, a, &v, b, &mut z, &mut c);
        for cb in 0..r.sites() {
            let expect = r.get(cb) + v.get(cb).scale(a.cast()) + z0.get(cb).scale(b.cast());
            assert!((z.get(cb) - expect).norm_sqr() < 1e-26);
        }
    }

    #[test]
    fn cdot_norm_fusion() {
        let x = field(12);
        let y = field(13);
        let mut c = BlasCounters::default();
        let (d, n) = cdot_norm_a(&x, &y, &mut c);
        let d2 = cdot(&x, &y, &mut c);
        let n2 = norm2(&x, &mut c);
        assert!((d.re - d2.re).abs() < 1e-10 && (d.im - d2.im).abs() < 1e-10);
        assert!((n - n2).abs() < 1e-10);
    }

    #[test]
    fn zero_and_copy() {
        let mut x = field(14);
        let mut c = BlasCounters::default();
        let y = field(15);
        copy(&mut x, &y, &mut c);
        for cb in 0..x.sites() {
            assert_eq!(x.get(cb), y.get(cb));
        }
        zero(&mut x);
        assert_eq!(norm2(&x, &mut c), 0.0);
    }

    #[test]
    fn single_precision_blas_accumulates_in_f64() {
        // Summing many equal values stays exact in the f64 accumulator even
        // when the storage is f32.
        let d = dims();
        let mut x = SpinorFieldCb::<Single>::new(d, false);
        let mut sp = quda_math::spinor::Spinor::<f32>::zero();
        sp.s[0].c[0].re = 1.0;
        for cb in 0..x.sites() {
            x.set(cb, &sp);
        }
        let mut c = BlasCounters::default();
        let n = norm2(&x, &mut c);
        assert_eq!(n, x.sites() as f64);
    }
}
