//! Blocked (multi-right-hand-side) Krylov solvers.
//!
//! The inversion service batches compatible solve requests so the gauge
//! links are read **once per Dslash sweep** for the whole block instead of
//! once per right-hand side — the dominant memory traffic of the solver
//! (Section IV-B: the Dslash is memory-bandwidth bound). The solvers here
//! drive that fused sweep through [`LinearOperator::apply_multi`] while
//! keeping every scalar recurrence *per RHS*:
//!
//! * each right-hand side carries its own residual, search direction, and
//!   scalar state (α, β, ρ, ω, …);
//! * the per-RHS reductions of each algorithmic point are packed, in RHS
//!   order, into **one fused vector allreduce**
//!   ([`LinearOperator::reduce_vec`]). A vector allreduce combines every
//!   component in the same rank order as a scalar allreduce, so the
//!   reduced values — and therefore the iteration counts and the
//!   solutions — stay **bit-identical** to a sequence of batch-1 solves,
//!   while the collective count per iteration drops from `O(batch)` to a
//!   constant;
//! * a right-hand side that converges (or breaks down) drops out of the
//!   *active mask*: its vectors are frozen and the remaining systems keep
//!   iterating in a smaller fused sweep.
//!
//! Because every active-mask decision is derived from globally reduced
//! values, the mask is identical on every rank and the collective stream
//! stays rank-uniform — the batched solvers pass the `QUDA_LOCKSTEP=1`
//! sanitizer unchanged. Rollbacks, reliable updates, and true-residual
//! tails go through the single-RHS operator paths, which the
//! [`LinearOperator::apply_multi`] contract guarantees are bit-identical
//! to the batched sweep.
//!
//! Elastic checkpoint sinks are intentionally *not* supported here: the
//! service retries a failed batch member as a fresh request instead of
//! resuming mid-Krylov (DESIGN.md §14).

use crate::blas::{self, BlasCounters};
use crate::mixed::{accumulate, DIVERGE_FACTOR, MAX_RECOVERIES};
use crate::operator::{residual_norm2, traced, traced_iter, LinearOperator};
use crate::params::{SolveResult, SolverParams};
use quda_fields::precision::Precision;
use quda_fields::SpinorFieldCb;
use quda_math::complex::C64;
use quda_obs::Phase;

/// Refresh the CGNR rollback checkpoint every this many iterations
/// (matches `cg::CHECKPOINT_EVERY`).
const CHECKPOINT_EVERY: usize = 16;

/// Compute `rs[k] ← bs[k] − M̂ xs[k]` and the *global* `‖rs[k]‖²` into
/// `out[k]` for every lane with `live[k]`, in one fused sweep and one
/// fused reduction.
///
/// Bit-identical per lane to [`residual_norm2`]: the
/// [`LinearOperator::apply_multi`] contract pins the batched mat-vec to
/// the single apply, and [`LinearOperator::reduce_vec`] combines each
/// component in the same rank order as the scalar allreduce. Dead lanes
/// keep their `out` slot untouched locally (the collective still sums the
/// stale slot; it is never read back).
fn residual_norm2_multi<P: Precision>(
    op: &mut dyn LinearOperator<P>,
    rs: &mut [SpinorFieldCb<P>],
    xs: &mut [SpinorFieldCb<P>],
    bs: &[SpinorFieldCb<P>],
    cs: &mut [BlasCounters],
    live: &[bool],
    out: &mut [f64],
) {
    let tracer = op.tracer();
    traced(&tracer, Phase::Matvec, || op.apply_multi(rs, xs, live));
    for (k, alive) in live.iter().enumerate() {
        if *alive {
            out[k] =
                traced(&tracer, Phase::Blas, || blas::xmy_norm(&bs[k], &mut rs[k], &mut cs[k]));
        }
    }
    traced(&tracer, Phase::Reduce, || op.reduce_vec(out));
}

/// Outcome of one per-RHS iteration body; mirrors `mixed::Step` but is
/// recorded per right-hand side and resolved once per fused sweep.
#[derive(Clone, Copy)]
enum Step {
    /// Iteration completed normally; keep going.
    Continue,
    /// The reliable update's true residual met the target.
    Converged,
    /// The outer precision's rounding floor was reached (stalled updates).
    Floor,
    /// `r0·v` or ρ vanished: re-seed the shadow residual and retry.
    Breakdown,
    /// `‖t‖² = 0`: the Krylov space is exhausted.
    Exhausted,
    /// A non-finite or diverged quantity appeared: roll this RHS back.
    Corrupt,
}

/// Solve `M̂ xs[k] = bs[k]` for every `k` with blocked uniform-precision
/// BiCGstab.
///
/// Each `xs[k]` is used as the initial guess and holds its solution on
/// return. The returned results are in RHS order, and each is bit-identical
/// (solution, iteration count, residual history) to what
/// [`bicgstab`](crate::bicgstab::bicgstab) would produce for that system
/// alone — the batching changes memory traffic, not numerics.
pub fn bicgstab_multi<P: Precision>(
    op: &mut dyn LinearOperator<P>,
    xs: &mut [SpinorFieldCb<P>],
    bs: &[SpinorFieldCb<P>],
    params: &SolverParams,
) -> Vec<SolveResult> {
    let n = xs.len();
    assert_eq!(bs.len(), n, "solution/source batch length mismatch");
    if n == 0 {
        return Vec::new();
    }
    let tracer = op.tracer();
    let mut cs: Vec<BlasCounters> = (0..n).map(|_| BlasCounters::default()).collect();
    let mut matvecs = vec![0u64; n];
    let mut iterations = vec![0usize; n];
    let mut converged = vec![false; n];
    let mut zero_b = vec![false; n];
    let mut active = vec![false; n];
    let mut abort_error: Vec<Option<String>> = (0..n).map(|_| None).collect();
    let mut history: Vec<Vec<f64>> = (0..n).map(|_| Vec::with_capacity(params.max_iter)).collect();

    let mut b_norm2 = vec![0.0f64; n];
    for k in 0..n {
        b_norm2[k] = traced(&tracer, Phase::Blas, || blas::norm2(&bs[k], &mut cs[k]));
    }
    traced(&tracer, Phase::Reduce, || op.reduce_vec(&mut b_norm2));
    for k in 0..n {
        if b_norm2[k] == 0.0 {
            blas::zero(&mut xs[k]);
            zero_b[k] = true;
            converged[k] = true;
        } else {
            active[k] = true;
        }
    }
    let target2: Vec<f64> = (0..n).map(|k| params.tol * params.tol * b_norm2[k]).collect();

    // Entry residuals r = b − M̂ x: one fused sweep, one fused reduction.
    let mut rs: Vec<_> = (0..n).map(|_| op.alloc()).collect();
    let mut r_norm2 = vec![0.0f64; n];
    residual_norm2_multi(op, &mut rs, xs, bs, &mut cs, &active, &mut r_norm2);
    for k in 0..n {
        if !active[k] {
            continue;
        }
        matvecs[k] += 1;
        if r_norm2[k] <= target2[k] {
            converged[k] = true;
            active[k] = false;
        }
    }

    let mut r0s: Vec<_> = (0..n).map(|_| op.alloc()).collect();
    let mut ps: Vec<_> = (0..n).map(|_| op.alloc()).collect();
    let mut vs: Vec<_> = (0..n).map(|_| op.alloc()).collect();
    let mut ts: Vec<_> = (0..n).map(|_| op.alloc()).collect();
    for k in 0..n {
        if zero_b[k] {
            continue;
        }
        blas::copy(&mut r0s[k], &rs[k], &mut cs[k]);
        blas::copy(&mut ps[k], &rs[k], &mut cs[k]);
    }
    let mut rho: Vec<C64> = (0..n).map(|k| C64::new(r_norm2[k], 0.0)).collect();
    let mut alphas = vec![C64::new(0.0, 0.0); n];
    let mut omegas = vec![C64::new(0.0, 0.0); n];
    let mut stage = vec![false; n];
    // Staging buffers for the fused reductions, one slot layout per
    // algorithmic point. Slots of lanes that dropped out carry stale
    // values: they are still summed by the collective (every rank agrees
    // on the lane masks) but never read back.
    let mut red_a = vec![0.0f64; 2 * n]; // r0·v as (re, im) per lane
    let mut red_b = vec![0.0f64; n]; // ‖s‖² per lane
    let mut red_d = vec![0.0f64; 3 * n]; // (t·s re, t·s im, ‖t‖²) / (‖r‖², ρ re, ρ im)
    let mut sweep: u64 = 0;

    loop {
        for k in 0..n {
            if active[k] && iterations[k] >= params.max_iter {
                active[k] = false;
            }
        }
        if !active.iter().any(|&a| a) {
            break;
        }
        // A fault parked by a poisoned operator is terminal for every
        // in-flight system: there is no checkpoint to roll back to.
        if let Some(f) = op.fault() {
            for k in 0..n {
                if active[k] {
                    // Abort path, entered at most once per batch.
                    // quda-lint: allow(hot-alloc)
                    abort_error[k] = Some(f.message.clone());
                    active[k] = false;
                }
            }
            break;
        }
        sweep += 1;
        // v = M̂ p for the whole active block: one fused gauge sweep.
        traced_iter(&tracer, Phase::Matvec, sweep, || op.apply_multi(&mut vs, &mut ps, &active));
        stage.copy_from_slice(&active);
        // α needs the globally reduced r0·v before the half-step residual
        // can be formed, so the sweep's scalar work runs in packed passes
        // around each fused collective.
        for k in 0..n {
            if !active[k] {
                continue;
            }
            matvecs[k] += 1;
            let r0v_local =
                traced(&tracer, Phase::Blas, || blas::cdot(&r0s[k], &vs[k], &mut cs[k]));
            red_a[2 * k] = r0v_local.re;
            red_a[2 * k + 1] = r0v_local.im;
        }
        traced(&tracer, Phase::Reduce, || op.reduce_vec(&mut red_a));
        for k in 0..n {
            if !active[k] {
                continue;
            }
            let r0v = C64::new(red_a[2 * k], red_a[2 * k + 1]);
            if !r0v.re.is_finite() || !r0v.im.is_finite() {
                active[k] = false; // corrupted reduction; the tail decides
                stage[k] = false;
                continue;
            }
            if r0v.norm_sqr() == 0.0 {
                active[k] = false; // breakdown
                stage[k] = false;
                continue;
            }
            let alpha = rho[k].div(r0v);
            alphas[k] = alpha;
            red_b[k] = traced(&tracer, Phase::Blas, || {
                blas::caxpy_norm(-alpha, &vs[k], &mut rs[k], &mut cs[k])
            });
        }
        traced(&tracer, Phase::Reduce, || op.reduce_vec(&mut red_b));
        for k in 0..n {
            if !stage[k] {
                continue;
            }
            let s_norm2 = red_b[k];
            if !s_norm2.is_finite() {
                active[k] = false;
                stage[k] = false;
                continue;
            }
            if s_norm2 <= target2[k] {
                // Early exit on the half-step: x += α p.
                traced(&tracer, Phase::Blas, || {
                    blas::caxpy(alphas[k], &ps[k], &mut xs[k], &mut cs[k])
                });
                iterations[k] += 1;
                converged[k] = true;
                active[k] = false;
                stage[k] = false;
            }
        }
        if stage.iter().any(|&s| s) {
            // t = M̂ s for the systems still in flight this sweep.
            traced_iter(&tracer, Phase::Matvec, sweep, || op.apply_multi(&mut ts, &mut rs, &stage));
        }
        if !stage.iter().any(|&s| s) {
            continue;
        }
        for k in 0..n {
            if !stage[k] {
                continue;
            }
            matvecs[k] += 1;
            let (dot, nn) =
                traced(&tracer, Phase::Blas, || blas::cdot_norm_a(&ts[k], &rs[k], &mut cs[k]));
            red_d[3 * k] = dot.re;
            red_d[3 * k + 1] = dot.im;
            red_d[3 * k + 2] = nn;
        }
        traced(&tracer, Phase::Reduce, || op.reduce_vec(&mut red_d));
        for k in 0..n {
            if !stage[k] {
                continue;
            }
            let ts_c = C64::new(red_d[3 * k], red_d[3 * k + 1]);
            let tt = red_d[3 * k + 2];
            if tt == 0.0 {
                active[k] = false;
                stage[k] = false;
                continue;
            }
            let omega = ts_c.scale(1.0 / tt);
            omegas[k] = omega;
            let (r_local, rho_local) = traced(&tracer, Phase::Blas, || {
                blas::caxpbypz(alphas[k], &ps[k], omega, &rs[k], &mut xs[k], &mut cs[k]);
                let r_local = blas::caxpy_norm(-omega, &ts[k], &mut rs[k], &mut cs[k]);
                (r_local, blas::cdot(&r0s[k], &rs[k], &mut cs[k]))
            });
            red_d[3 * k] = r_local;
            red_d[3 * k + 1] = rho_local.re;
            red_d[3 * k + 2] = rho_local.im;
        }
        traced(&tracer, Phase::Reduce, || op.reduce_vec(&mut red_d));
        for k in 0..n {
            if !stage[k] {
                continue;
            }
            r_norm2[k] = red_d[3 * k];
            if !r_norm2[k].is_finite() {
                active[k] = false;
                continue;
            }
            let rho_new = C64::new(red_d[3 * k + 1], red_d[3 * k + 2]);
            let beta = rho_new.div(rho[k]) * alphas[k].div(omegas[k]);
            rho[k] = rho_new;
            traced(&tracer, Phase::Blas, || {
                blas::cxpaypbz(&rs[k], -(beta * omegas[k]), &vs[k], beta, &mut ps[k], &mut cs[k])
            });
            iterations[k] += 1;
            history[k].push((r_norm2[k] / b_norm2[k]).sqrt());
            if r_norm2[k] <= target2[k] {
                converged[k] = true;
                active[k] = false;
            }
        }
    }

    // True-residual checks: one fused sweep, one fused reduction (the
    // `t` workspaces are dead after the loop and serve as scratch).
    for k in 0..n {
        stage[k] = !zero_b[k];
    }
    let mut true_r2 = vec![0.0f64; n];
    residual_norm2_multi(op, &mut ts, xs, bs, &mut cs, &stage, &mut true_r2);
    let mut results = Vec::with_capacity(n);
    for k in 0..n {
        if zero_b[k] {
            results.push(SolveResult { converged: true, ..Default::default() });
            continue;
        }
        matvecs[k] += 1;
        let final_residual = (true_r2[k] / b_norm2[k]).sqrt();
        results.push(SolveResult {
            converged: converged[k]
                && final_residual <= params.tol * 10.0
                && abort_error[k].is_none(),
            iterations: iterations[k],
            matvecs: matvecs[k],
            reliable_updates: 0,
            final_residual,
            op_flops: matvecs[k] * op.flops_per_apply(),
            blas: std::mem::take(&mut cs[k]),
            residual_history: std::mem::take(&mut history[k]),
            recoveries: 0,
            comm_recoveries: 0,
            error: abort_error[k].take(),
        });
    }
    results
}

/// Solve `M̂ xs[k] = bs[k]` for every `k` with blocked CG on the normal
/// equations.
///
/// Bit-identical per RHS to [`cgnr`](crate::cg::cgnr), including the
/// corruption rollback protocol (each RHS keeps its own rollback
/// checkpoint and recovery budget).
pub fn cgnr_multi<P: Precision>(
    op: &mut dyn LinearOperator<P>,
    xs: &mut [SpinorFieldCb<P>],
    bs: &[SpinorFieldCb<P>],
    params: &SolverParams,
) -> Vec<SolveResult> {
    let n = xs.len();
    assert_eq!(bs.len(), n, "solution/source batch length mismatch");
    if n == 0 {
        return Vec::new();
    }
    let tracer = op.tracer();
    let mut cs: Vec<BlasCounters> = (0..n).map(|_| BlasCounters::default()).collect();
    let mut matvecs = vec![0u64; n];
    let mut iterations = vec![0usize; n];
    let mut converged = vec![false; n];
    let mut zero_b = vec![false; n];
    let mut active = vec![false; n];
    let mut recoveries = vec![0u64; n];
    let mut abort_error: Vec<Option<String>> = (0..n).map(|_| None).collect();
    let mut history: Vec<Vec<f64>> = (0..n).map(|_| Vec::with_capacity(params.max_iter)).collect();

    let mut b_norm2 = vec![0.0f64; n];
    for k in 0..n {
        b_norm2[k] = traced(&tracer, Phase::Blas, || blas::norm2(&bs[k], &mut cs[k]));
    }
    traced(&tracer, Phase::Reduce, || op.reduce_vec(&mut b_norm2));
    for k in 0..n {
        if b_norm2[k] == 0.0 {
            blas::zero(&mut xs[k]);
            zero_b[k] = true;
            converged[k] = true;
        } else {
            active[k] = true;
        }
    }

    // Normal-equation right-hand sides b' = M̂† b, one fused dagger sweep.
    let mut b_works: Vec<_> = (0..n).map(|_| op.alloc()).collect();
    let mut bps: Vec<_> = (0..n).map(|_| op.alloc()).collect();
    for k in 0..n {
        if active[k] {
            blas::copy(&mut b_works[k], &bs[k], &mut cs[k]);
        }
    }
    op.apply_dagger_multi(&mut bps, &mut b_works, &active);
    let mut bp_norm2 = vec![0.0f64; n];
    for k in 0..n {
        if !active[k] {
            continue;
        }
        matvecs[k] += 1;
        bp_norm2[k] = blas::norm2(&bps[k], &mut cs[k]);
    }
    traced(&tracer, Phase::Reduce, || op.reduce_vec(&mut bp_norm2));
    let target2: Vec<f64> = (0..n).map(|k| params.tol * params.tol * bp_norm2[k]).collect();

    // r = b' − A x with A = M̂†M̂ (each x may carry an initial guess).
    let mut mids: Vec<_> = (0..n).map(|_| op.alloc()).collect();
    let mut rs: Vec<_> = (0..n).map(|_| op.alloc()).collect();
    op.apply_multi(&mut mids, xs, &active);
    op.apply_dagger_multi(&mut rs, &mut mids, &active);
    let mut rsq = vec![0.0f64; n];
    for k in 0..n {
        if !active[k] {
            continue;
        }
        matvecs[k] += 2;
        rsq[k] = blas::xmy_norm(&bps[k], &mut rs[k], &mut cs[k]);
    }
    traced(&tracer, Phase::Reduce, || op.reduce_vec(&mut rsq));
    for k in 0..n {
        if active[k] && rsq[k] <= target2[k] {
            converged[k] = true;
            active[k] = false;
        }
    }

    let mut ps: Vec<_> = (0..n).map(|_| op.alloc()).collect();
    let mut aps: Vec<_> = (0..n).map(|_| op.alloc()).collect();
    let mut checkpoint_xs: Vec<_> = (0..n).map(|_| op.alloc()).collect();
    for k in 0..n {
        if zero_b[k] {
            continue;
        }
        blas::copy(&mut ps[k], &rs[k], &mut cs[k]);
        blas::copy(&mut checkpoint_xs[k], &xs[k], &mut cs[k]);
    }
    // Per-sweep lane masks and the fused-reduction staging buffer (stale
    // slots of dropped lanes are summed but never read).
    let mut stage = vec![false; n];
    let mut corrupt = vec![false; n];
    let mut red = vec![0.0f64; n];
    let mut sweep: u64 = 0;

    loop {
        for k in 0..n {
            if active[k] && iterations[k] >= params.max_iter {
                active[k] = false;
            }
        }
        if !active.iter().any(|&a| a) {
            break;
        }
        if let Some(f) = op.fault() {
            for k in 0..n {
                if active[k] {
                    // Abort path, entered at most once per batch.
                    // quda-lint: allow(hot-alloc)
                    abort_error[k] = Some(f.message.clone());
                    active[k] = false;
                }
            }
            break;
        }
        sweep += 1;
        // Ap = M̂† M̂ p for the whole active block: two fused gauge sweeps.
        traced_iter(&tracer, Phase::Matvec, sweep, || {
            op.apply_multi(&mut mids, &mut ps, &active);
            op.apply_dagger_multi(&mut aps, &mut mids, &active);
        });
        // α needs the globally reduced p·Ap before x and r can move, so
        // the sweep's scalar work runs in packed passes around each fused
        // collective.
        stage.copy_from_slice(&active);
        corrupt.fill(false);
        for k in 0..n {
            if !active[k] {
                continue;
            }
            matvecs[k] += 2;
            red[k] = traced(&tracer, Phase::Blas, || blas::cdot(&ps[k], &aps[k], &mut cs[k]).re);
        }
        traced(&tracer, Phase::Reduce, || op.reduce_vec(&mut red));
        for k in 0..n {
            if !active[k] {
                continue;
            }
            let p_ap = red[k];
            // Non-finiteness must be tested before positivity (a NaN would
            // sail through the check and poison x via α).
            if !p_ap.is_finite() {
                corrupt[k] = true;
                stage[k] = false;
                continue;
            }
            if p_ap <= 0.0 {
                active[k] = false; // loss of positivity: breakdown
                stage[k] = false;
                continue;
            }
            let alpha = rsq[k] / p_ap;
            red[k] = traced(&tracer, Phase::Blas, || {
                blas::axpy(alpha, &ps[k], &mut xs[k], &mut cs[k]);
                blas::caxpy_norm(C64::new(-alpha, 0.0), &aps[k], &mut rs[k], &mut cs[k])
            });
        }
        traced(&tracer, Phase::Reduce, || op.reduce_vec(&mut red));
        for k in 0..n {
            if !active[k] {
                continue;
            }
            let mut rsq_new = rsq[k];
            if stage[k] {
                rsq_new = red[k];
                corrupt[k] = !rsq_new.is_finite();
            }
            if corrupt[k] {
                if let Some(f) = op.fault() {
                    // quda-lint: allow(hot-alloc)
                    abort_error[k] = Some(f.message);
                    active[k] = false;
                    continue;
                }
                recoveries[k] += 1;
                if recoveries[k] > MAX_RECOVERIES {
                    // Formatted at most once per RHS, on its abort path.
                    // quda-lint: allow(hot-alloc)
                    abort_error[k] = Some(format!(
                        "corrupted solver state persisted after {MAX_RECOVERIES} rollbacks"
                    ));
                    active[k] = false;
                    continue;
                }
                // Roll this RHS back and rebuild r = b' − A x from its
                // checkpoint; the single-RHS applies are bit-identical to
                // the fused sweep, so only this system is perturbed.
                blas::copy(&mut xs[k], &checkpoint_xs[k], &mut cs[k]);
                op.apply(&mut mids[k], &mut xs[k]);
                op.apply_dagger(&mut rs[k], &mut mids[k]);
                matvecs[k] += 2;
                rsq[k] = op.reduce(blas::xmy_norm(&bps[k], &mut rs[k], &mut cs[k]));
                blas::copy(&mut ps[k], &rs[k], &mut cs[k]);
                continue;
            }
            let beta = rsq_new / rsq[k];
            rsq[k] = rsq_new;
            traced(&tracer, Phase::Blas, || blas::xpay(&rs[k], beta, &mut ps[k], &mut cs[k]));
            iterations[k] += 1;
            history[k].push((rsq[k] / bp_norm2[k].max(f64::MIN_POSITIVE)).sqrt());
            if iterations[k] % CHECKPOINT_EVERY == 0 {
                blas::copy(&mut checkpoint_xs[k], &xs[k], &mut cs[k]);
            }
            if rsq[k] <= target2[k] {
                converged[k] = true;
                active[k] = false;
            }
        }
    }

    // True residuals of the original systems: one fused sweep, one fused
    // reduction (the `Ap` workspaces are dead after the loop).
    for k in 0..n {
        stage[k] = !zero_b[k];
    }
    let mut true_r2 = vec![0.0f64; n];
    residual_norm2_multi(op, &mut aps, xs, bs, &mut cs, &stage, &mut true_r2);
    let mut results = Vec::with_capacity(n);
    for k in 0..n {
        if zero_b[k] {
            results.push(SolveResult { converged: true, ..Default::default() });
            continue;
        }
        matvecs[k] += 1;
        let final_residual = (true_r2[k] / b_norm2[k]).sqrt();
        results.push(SolveResult {
            converged: converged[k] && abort_error[k].is_none(),
            iterations: iterations[k],
            matvecs: matvecs[k],
            reliable_updates: 0,
            final_residual,
            op_flops: matvecs[k] * op.flops_per_apply(),
            blas: std::mem::take(&mut cs[k]),
            residual_history: std::mem::take(&mut history[k]),
            recoveries: recoveries[k],
            comm_recoveries: 0,
            error: abort_error[k].take(),
        });
    }
    results
}

/// Solve `M̂ xs[k] = bs[k]` for every `k` with blocked mixed-precision
/// BiCGstab with reliable updates.
///
/// The sloppy Krylov sweeps are fused across the active block; reliable
/// updates, rollbacks, and the tail run per RHS in high precision through
/// the single-RHS paths. Bit-identical per RHS to
/// [`bicgstab_reliable`](crate::mixed::bicgstab_reliable).
pub fn bicgstab_reliable_multi<H: Precision, L: Precision>(
    op_hi: &mut dyn LinearOperator<H>,
    op_lo: &mut dyn LinearOperator<L>,
    xs: &mut [SpinorFieldCb<H>],
    bs: &[SpinorFieldCb<H>],
    params: &SolverParams,
) -> Vec<SolveResult> {
    let n = xs.len();
    assert_eq!(bs.len(), n, "solution/source batch length mismatch");
    if n == 0 {
        return Vec::new();
    }
    // Both operators live on the same rank; the sloppy one drives the
    // iteration, so use its recorder handle.
    let tracer = op_lo.tracer();
    let mut cs: Vec<BlasCounters> = (0..n).map(|_| BlasCounters::default()).collect();
    let mut matvecs_lo = vec![0u64; n];
    let mut matvecs_hi = vec![0u64; n];
    let mut reliable_updates = vec![0u64; n];
    let mut recoveries = vec![0u64; n];
    let mut iterations = vec![0usize; n];
    let mut converged = vec![false; n];
    let mut stalls = vec![0u32; n];
    let mut abort_error: Vec<Option<String>> = (0..n).map(|_| None).collect();
    let mut history: Vec<Vec<f64>> = (0..n).map(|_| Vec::with_capacity(params.max_iter)).collect();
    // Slots resolved before the loop (zero sources, converged guesses).
    let mut results: Vec<Option<SolveResult>> = (0..n).map(|_| None).collect();

    let mut b_norm2 = vec![0.0f64; n];
    for k in 0..n {
        b_norm2[k] = traced(&tracer, Phase::Blas, || blas::norm2(&bs[k], &mut cs[k]));
    }
    traced(&tracer, Phase::Reduce, || op_hi.reduce_vec(&mut b_norm2));
    for k in 0..n {
        if b_norm2[k] == 0.0 {
            blas::zero(&mut xs[k]);
            results[k] = Some(SolveResult { converged: true, ..Default::default() });
        }
    }
    let target2: Vec<f64> = (0..n).map(|k| params.tol * params.tol * b_norm2[k]).collect();

    // Entry true residuals in high precision: one fused sweep, one fused
    // reduction.
    let mut r_his: Vec<_> = (0..n).map(|_| op_hi.alloc()).collect();
    let mut r2 = vec![0.0f64; n];
    let live: Vec<bool> = (0..n).map(|k| results[k].is_none()).collect();
    residual_norm2_multi(op_hi, &mut r_his, xs, bs, &mut cs, &live, &mut r2);
    for k in 0..n {
        if results[k].is_some() {
            continue;
        }
        matvecs_hi[k] += 1;
        if r2[k] <= target2[k] {
            results[k] = Some(SolveResult {
                converged: true,
                final_residual: (r2[k] / b_norm2[k]).sqrt(),
                matvecs: matvecs_hi[k],
                op_flops: matvecs_hi[k] * op_hi.flops_per_apply(),
                blas: std::mem::take(&mut cs[k]),
                ..Default::default()
            });
        }
    }
    let mut active: Vec<bool> = (0..n).map(|k| results[k].is_none()).collect();
    let mut maxrr: Vec<f64> = (0..n).map(|k| r2[k].sqrt()).collect();
    let mut last_update_r2 = r2.clone();

    // Sloppy-precision working sets.
    let mut rs: Vec<_> = (0..n).map(|_| op_lo.alloc()).collect();
    let mut r0s: Vec<_> = (0..n).map(|_| op_lo.alloc()).collect();
    let mut ps: Vec<_> = (0..n).map(|_| op_lo.alloc()).collect();
    let mut vs: Vec<_> = (0..n).map(|_| op_lo.alloc()).collect();
    let mut ts: Vec<_> = (0..n).map(|_| op_lo.alloc()).collect();
    let mut x_sloppys: Vec<_> = (0..n).map(|_| op_lo.alloc()).collect();
    let mut scratch_his: Vec<_> = (0..n).map(|_| op_hi.alloc()).collect();
    // Per-RHS rollback checkpoints: the high-precision solution as of the
    // last known good state (start, then every good reliable update).
    let mut checkpoint_xs: Vec<_> = (0..n).map(|_| op_hi.alloc()).collect();
    for k in 0..n {
        if !active[k] {
            continue;
        }
        rs[k].convert_from(&r_his[k]);
        blas::copy(&mut r0s[k], &rs[k], &mut cs[k]);
        blas::copy(&mut ps[k], &rs[k], &mut cs[k]);
        blas::zero(&mut x_sloppys[k]);
        blas::copy(&mut checkpoint_xs[k], &xs[k], &mut cs[k]);
    }
    let mut rho: Vec<C64> = (0..n).map(|k| C64::new(r2[k], 0.0)).collect();
    let mut alphas = vec![C64::new(0.0, 0.0); n];
    let mut omegas = vec![C64::new(0.0, 0.0); n];
    let mut stage = vec![false; n];
    let mut steps = vec![Step::Continue; n];
    // Staging buffers for the fused sloppy-precision reductions (stale
    // slots of dropped lanes are summed but never read). Reliable updates
    // stay on the per-RHS high-precision paths.
    let mut red_a = vec![0.0f64; 2 * n]; // r0·v as (re, im) per lane
    let mut red_b = vec![0.0f64; n]; // ‖s‖² per lane
    let mut red_d = vec![0.0f64; 3 * n]; // (t·s re, t·s im, ‖t‖²) / (‖r‖², ρ re, ρ im)
    let mut sweep: u64 = 0;

    loop {
        for k in 0..n {
            if active[k] && iterations[k] >= params.max_iter {
                active[k] = false;
            }
        }
        if !active.iter().any(|&a| a) {
            break;
        }
        // A fault parked by a poisoned operator (dead rank, exhausted
        // retries) is terminal: no rollback can bring the peer back.
        if let Some(f) = op_lo.fault().or_else(|| op_hi.fault()) {
            for k in 0..n {
                if active[k] {
                    // Abort path, entered at most once per batch.
                    // quda-lint: allow(hot-alloc)
                    abort_error[k] = Some(f.message.clone());
                    active[k] = false;
                }
            }
            break;
        }
        sweep += 1;
        // v = M̂ p for the whole active block: one fused sloppy sweep.
        traced_iter(&tracer, Phase::Matvec, sweep, || op_lo.apply_multi(&mut vs, &mut ps, &active));
        stage.copy_from_slice(&active);
        steps.fill(Step::Continue);
        // α needs the globally reduced r0·v before the half-step residual
        // can be formed, so the sweep's scalar work runs in packed passes
        // around each fused collective.
        for k in 0..n {
            if !active[k] {
                continue;
            }
            matvecs_lo[k] += 1;
            let r0v_local =
                traced(&tracer, Phase::Blas, || blas::cdot(&r0s[k], &vs[k], &mut cs[k]));
            red_a[2 * k] = r0v_local.re;
            red_a[2 * k + 1] = r0v_local.im;
        }
        traced(&tracer, Phase::Reduce, || op_lo.reduce_vec(&mut red_a));
        for k in 0..n {
            if !active[k] {
                continue;
            }
            let r0v = C64::new(red_a[2 * k], red_a[2 * k + 1]);
            if !r0v.re.is_finite() || !r0v.im.is_finite() {
                steps[k] = Step::Corrupt;
                stage[k] = false;
                continue;
            }
            if r0v.norm_sqr() == 0.0 || rho[k].norm_sqr() == 0.0 {
                steps[k] = Step::Breakdown;
                stage[k] = false;
                continue;
            }
            let alpha = rho[k].div(r0v);
            alphas[k] = alpha;
            red_b[k] = traced(&tracer, Phase::Blas, || {
                blas::caxpy_norm(-alpha, &vs[k], &mut rs[k], &mut cs[k])
            });
        }
        traced(&tracer, Phase::Reduce, || op_lo.reduce_vec(&mut red_b));
        for k in 0..n {
            if !stage[k] {
                continue;
            }
            if !red_b[k].is_finite() {
                steps[k] = Step::Corrupt;
                stage[k] = false;
            }
        }
        if stage.iter().any(|&s| s) {
            // t = M̂ s for the systems still in flight this sweep.
            traced_iter(&tracer, Phase::Matvec, sweep, || {
                op_lo.apply_multi(&mut ts, &mut rs, &stage)
            });
        }
        for k in 0..n {
            if !stage[k] {
                continue;
            }
            matvecs_lo[k] += 1;
            let (dot, nn) =
                traced(&tracer, Phase::Blas, || blas::cdot_norm_a(&ts[k], &rs[k], &mut cs[k]));
            red_d[3 * k] = dot.re;
            red_d[3 * k + 1] = dot.im;
            red_d[3 * k + 2] = nn;
        }
        if stage.iter().any(|&s| s) {
            traced(&tracer, Phase::Reduce, || op_lo.reduce_vec(&mut red_d));
        }
        for k in 0..n {
            if !stage[k] {
                continue;
            }
            let ts_c = C64::new(red_d[3 * k], red_d[3 * k + 1]);
            let tt = red_d[3 * k + 2];
            if !tt.is_finite() || !ts_c.re.is_finite() || !ts_c.im.is_finite() {
                steps[k] = Step::Corrupt;
                stage[k] = false;
                continue;
            }
            if tt == 0.0 {
                steps[k] = Step::Exhausted;
                stage[k] = false;
                continue;
            }
            let omega = ts_c.scale(1.0 / tt);
            omegas[k] = omega;
            let (r2_local, rho_local) = traced(&tracer, Phase::Blas, || {
                blas::caxpbypz(alphas[k], &ps[k], omega, &rs[k], &mut x_sloppys[k], &mut cs[k]);
                let r2_local = blas::caxpy_norm(-omega, &ts[k], &mut rs[k], &mut cs[k]);
                (r2_local, blas::cdot(&r0s[k], &rs[k], &mut cs[k]))
            });
            red_d[3 * k] = r2_local;
            red_d[3 * k + 1] = rho_local.re;
            red_d[3 * k + 2] = rho_local.im;
        }
        if stage.iter().any(|&s| s) {
            traced(&tracer, Phase::Reduce, || op_lo.reduce_vec(&mut red_d));
        }
        for k in 0..n {
            if !stage[k] {
                continue;
            }
            steps[k] = 'body: {
                let r2_iter = red_d[3 * k];
                if !r2_iter.is_finite() {
                    break 'body Step::Corrupt;
                }
                let rho_new = C64::new(red_d[3 * k + 1], red_d[3 * k + 2]);
                let omega = omegas[k];
                let beta = rho_new.div(rho[k]) * alphas[k].div(omega);
                rho[k] = rho_new;
                traced(&tracer, Phase::Blas, || {
                    blas::cxpaypbz(&rs[k], -(beta * omega), &vs[k], beta, &mut ps[k], &mut cs[k])
                });
                iterations[k] += 1;
                history[k].push((r2_iter / b_norm2[k]).sqrt());

                let r_norm = r2_iter.sqrt();
                maxrr[k] = maxrr[k].max(r_norm);
                let want_update = r_norm < params.delta * maxrr[k] || r2_iter <= target2[k];
                if want_update {
                    // A guard (not a closure) so the `break 'body` exits
                    // below still close the span on the way out.
                    let mut ru_span = tracer.span(Phase::ReliableUpdate);
                    ru_span.set_iter(sweep);
                    // Reliable update: accumulate and recompute the true
                    // residual in high precision, for this RHS only.
                    accumulate(&mut xs[k], &x_sloppys[k], &mut scratch_his[k], &mut cs[k]);
                    blas::zero(&mut x_sloppys[k]);
                    r2[k] = residual_norm2(op_hi, &mut r_his[k], &mut xs[k], &bs[k], &mut cs[k]);
                    matvecs_hi[k] += 1;
                    reliable_updates[k] += 1;
                    if !r2[k].is_finite() || r2[k] > last_update_r2[k] * DIVERGE_FACTOR {
                        break 'body Step::Corrupt;
                    }
                    if r2[k] <= target2[k] {
                        break 'body Step::Converged;
                    }
                    if r2[k] >= last_update_r2[k] * 0.8 {
                        stalls[k] += 1;
                        if stalls[k] >= 3 {
                            break 'body Step::Floor;
                        }
                    } else {
                        stalls[k] = 0;
                    }
                    last_update_r2[k] = r2[k];
                    rs[k].convert_from(&r_his[k]);
                    maxrr[k] = r2[k].sqrt();
                    // The search direction p survives the update (single
                    // Krylov space); only ρ is re-evaluated against the
                    // refreshed residual.
                    rho[k] = op_lo.reduce_c(blas::cdot(&r0s[k], &rs[k], &mut cs[k]));
                    // This state passed the high-precision check: refresh
                    // this RHS's rollback checkpoint.
                    blas::copy(&mut checkpoint_xs[k], &xs[k], &mut cs[k]);
                }
                Step::Continue
            };
        }
        // Resolve each RHS's step once per sweep, exactly where the
        // batch-1 solver resolves it once per iteration.
        for k in 0..n {
            if !active[k] {
                continue;
            }
            match steps[k] {
                Step::Continue => {}
                Step::Converged => {
                    converged[k] = true;
                    active[k] = false;
                }
                Step::Floor | Step::Exhausted => {
                    active[k] = false;
                }
                Step::Breakdown => {
                    // BiCGstab breakdown: re-seed the shadow residual.
                    blas::copy(&mut r0s[k], &rs[k], &mut cs[k]);
                    rho[k] = C64::new(op_lo.reduce(blas::norm2(&rs[k], &mut cs[k])), 0.0);
                    blas::copy(&mut ps[k], &rs[k], &mut cs[k]);
                }
                Step::Corrupt => {
                    // NaN caused by a comm failure is not transient;
                    // surface the typed fault instead of burning the
                    // rollback budget.
                    if let Some(f) = op_lo.fault().or_else(|| op_hi.fault()) {
                        // quda-lint: allow(hot-alloc)
                        abort_error[k] = Some(f.message);
                        active[k] = false;
                        continue;
                    }
                    recoveries[k] += 1;
                    if recoveries[k] > MAX_RECOVERIES {
                        // Formatted at most once per RHS, on its abort path.
                        // quda-lint: allow(hot-alloc)
                        abort_error[k] = Some(format!(
                            "corrupted solver state persisted after {MAX_RECOVERIES} rollbacks"
                        ));
                        active[k] = false;
                        continue;
                    }
                    // Roll this RHS back to its checkpoint and rebuild its
                    // Krylov space from a fresh true residual.
                    blas::copy(&mut xs[k], &checkpoint_xs[k], &mut cs[k]);
                    r2[k] = residual_norm2(op_hi, &mut r_his[k], &mut xs[k], &bs[k], &mut cs[k]);
                    matvecs_hi[k] += 1;
                    rs[k].convert_from(&r_his[k]);
                    blas::copy(&mut r0s[k], &rs[k], &mut cs[k]);
                    blas::copy(&mut ps[k], &rs[k], &mut cs[k]);
                    blas::zero(&mut x_sloppys[k]);
                    rho[k] = C64::new(r2[k], 0.0);
                    maxrr[k] = r2[k].sqrt();
                    last_update_r2[k] = r2[k];
                    stalls[k] = 0;
                }
            }
        }
    }

    // Per-RHS tails: fold in any un-accumulated sloppy progress (pointless
    // after a terminal error — the sloppy state is untrustworthy).
    for k in 0..n {
        if results[k].is_some() {
            continue;
        }
        if !converged[k] && abort_error[k].is_none() {
            accumulate(&mut xs[k], &x_sloppys[k], &mut scratch_his[k], &mut cs[k]);
            r2[k] = residual_norm2(op_hi, &mut r_his[k], &mut xs[k], &bs[k], &mut cs[k]);
            matvecs_hi[k] += 1;
            converged[k] = r2[k] <= target2[k];
        }
        results[k] = Some(SolveResult {
            converged: converged[k],
            iterations: iterations[k],
            matvecs: matvecs_lo[k] + matvecs_hi[k],
            reliable_updates: reliable_updates[k],
            final_residual: (r2[k] / b_norm2[k]).sqrt(),
            op_flops: matvecs_lo[k] * op_lo.flops_per_apply()
                + matvecs_hi[k] * op_hi.flops_per_apply(),
            blas: std::mem::take(&mut cs[k]),
            residual_history: std::mem::take(&mut history[k]),
            recoveries: recoveries[k],
            comm_recoveries: 0,
            error: abort_error[k].take(),
        });
    }
    results.into_iter().map(|r| r.unwrap_or_default()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::MatPcOp;
    use quda_dirac::{WilsonCloverOp, WilsonParams};
    use quda_fields::gauge_gen::{random_spinor_field, weak_field};
    use quda_fields::precision::{Double, Single};
    use quda_lattice::geometry::{LatticeDims, Parity};

    const N: usize = 3;

    fn op<P: Precision>(seed: u64) -> MatPcOp<P> {
        let d = LatticeDims::new(4, 4, 4, 4);
        let cfg = weak_field(d, 0.15, seed);
        MatPcOp::new(WilsonCloverOp::<P>::from_config(&cfg, WilsonParams { mass: 0.2, c_sw: 1.0 }))
    }

    fn sources<P: Precision>(op: &MatPcOp<P>, seed: u64, n: usize) -> Vec<SpinorFieldCb<P>> {
        let d = op.op.dims;
        (0..n)
            .map(|k| {
                let host = random_spinor_field(d, seed + k as u64);
                let mut b = op.alloc();
                b.upload(&host, Parity::Odd);
                b
            })
            .collect()
    }

    fn assert_bit_identical<P: Precision>(
        multi: &SpinorFieldCb<P>,
        solo: &SpinorFieldCb<P>,
        k: usize,
    ) {
        let mut diff2 = 0.0;
        for cb in 0..solo.sites() {
            diff2 += (multi.get(cb) - solo.get(cb)).norm_sqr();
        }
        assert_eq!(diff2, 0.0, "rhs {k}: batched solution differs from sequential");
    }

    #[test]
    fn blocked_bicgstab_bit_identical_to_sequential() {
        let mut op = op::<Double>(21);
        let bs = sources(&op, 300, N);
        let params = SolverParams { tol: 1e-10, max_iter: 500, delta: 0.0 };

        let mut xs: Vec<_> = (0..N).map(|_| op.alloc()).collect();
        for x in &mut xs {
            blas::zero(x);
        }
        let multi = bicgstab_multi(&mut op, &mut xs, &bs, &params);

        for k in 0..N {
            let mut x = op.alloc();
            blas::zero(&mut x);
            let solo = crate::bicgstab::bicgstab(&mut op, &mut x, &bs[k], &params);
            assert!(solo.converged && multi[k].converged, "rhs {k} did not converge");
            assert_eq!(multi[k].iterations, solo.iterations, "rhs {k}: iteration count");
            assert_eq!(multi[k].matvecs, solo.matvecs, "rhs {k}: matvec count");
            assert_eq!(
                multi[k].final_residual.to_bits(),
                solo.final_residual.to_bits(),
                "rhs {k}: final residual"
            );
            assert_eq!(multi[k].residual_history, solo.residual_history, "rhs {k}: history");
            assert_bit_identical(&xs[k], &x, k);
        }
    }

    #[test]
    fn blocked_cgnr_bit_identical_to_sequential() {
        let mut op = op::<Double>(22);
        let bs = sources(&op, 400, N);
        let params = SolverParams { tol: 1e-10, max_iter: 1000, delta: 0.0 };

        let mut xs: Vec<_> = (0..N).map(|_| op.alloc()).collect();
        for x in &mut xs {
            blas::zero(x);
        }
        let multi = cgnr_multi(&mut op, &mut xs, &bs, &params);

        for k in 0..N {
            let mut x = op.alloc();
            blas::zero(&mut x);
            let solo = crate::cg::cgnr(&mut op, &mut x, &bs[k], &params);
            assert!(solo.converged && multi[k].converged, "rhs {k} did not converge");
            assert_eq!(multi[k].iterations, solo.iterations, "rhs {k}: iteration count");
            assert_eq!(multi[k].matvecs, solo.matvecs, "rhs {k}: matvec count");
            assert_bit_identical(&xs[k], &x, k);
        }
    }

    #[test]
    fn blocked_reliable_bicgstab_bit_identical_to_sequential() {
        let mut hi = op::<Double>(23);
        let mut lo = op::<Single>(23);
        let bs = sources(&hi, 500, N);
        let params = SolverParams { tol: 1e-10, max_iter: 2000, delta: 1e-2 };

        let mut xs: Vec<_> = (0..N).map(|_| hi.alloc()).collect();
        for x in &mut xs {
            blas::zero(x);
        }
        let multi = bicgstab_reliable_multi(&mut hi, &mut lo, &mut xs, &bs, &params);

        for k in 0..N {
            let mut x = hi.alloc();
            blas::zero(&mut x);
            let solo = crate::mixed::bicgstab_reliable(&mut hi, &mut lo, &mut x, &bs[k], &params);
            assert!(solo.converged && multi[k].converged, "rhs {k} did not converge");
            assert_eq!(multi[k].iterations, solo.iterations, "rhs {k}: iteration count");
            assert_eq!(multi[k].matvecs, solo.matvecs, "rhs {k}: matvec count");
            assert_eq!(
                multi[k].reliable_updates, solo.reliable_updates,
                "rhs {k}: reliable updates"
            );
            assert_bit_identical(&xs[k], &x, k);
        }
    }

    #[test]
    fn zero_source_slot_resolves_trivially_amid_live_systems() {
        let mut op = op::<Double>(24);
        let mut bs = sources(&op, 600, N);
        blas::zero(&mut bs[1]);
        let params = SolverParams { tol: 1e-10, max_iter: 500, delta: 0.0 };
        let mut xs: Vec<_> = (0..N).map(|_| op.alloc()).collect();
        for x in &mut xs {
            blas::zero(x);
        }
        let multi = bicgstab_multi(&mut op, &mut xs, &bs, &params);
        assert!(multi[1].converged);
        assert_eq!(multi[1].iterations, 0);
        assert_eq!(xs[1].norm_sqr(), 0.0);
        assert!(multi[0].converged && multi[2].converged);
        assert!(multi[0].iterations > 0 && multi[2].iterations > 0);
    }

    #[test]
    fn empty_batch_returns_no_results() {
        let mut op = op::<Double>(25);
        let params = SolverParams::default();
        let res = bicgstab_multi(&mut op, &mut [], &[], &params);
        assert!(res.is_empty());
    }

    #[test]
    fn poisoned_operator_aborts_every_rhs() {
        use crate::test_faults::FaultyOp;
        let base = op::<Double>(26);
        let bs = {
            let d = base.op.dims;
            (0..N)
                .map(|k| {
                    let host = random_spinor_field(d, 700 + k as u64);
                    let mut b = base.alloc();
                    b.upload(&host, Parity::Odd);
                    b
                })
                .collect::<Vec<_>>()
        };
        let mut op = FaultyOp::poisoned(base, "allreduce failed: rank 1 is dead");
        let mut xs: Vec<_> = (0..N).map(|_| op.alloc()).collect();
        for x in &mut xs {
            blas::zero(x);
        }
        let params = SolverParams { tol: 1e-8, max_iter: 100, delta: 0.0 };
        let res = bicgstab_multi(&mut op, &mut xs, &bs, &params);
        for (k, r) in res.iter().enumerate() {
            assert!(!r.converged, "rhs {k} must not converge");
            assert_eq!(r.error.as_deref(), Some("allreduce failed: rank 1 is dead"));
        }
    }
}
