//! Trace-layer invariants: span nesting, exclusive-time accounting,
//! chrome-trace round-tripping and the zero-cost `Off` path.

use std::thread;
use std::time::Duration;

use quda_obs::{validate_chrome_trace, Phase, Recorder, Span, TraceConfig, Tracer};

fn busy(us: u64) {
    thread::sleep(Duration::from_micros(us));
}

/// Record a realistic nested workload on one rank: a matvec containing a
/// gather, an interior kernel, a wire wait and an exterior kernel.
fn record_iteration(tracer: &Tracer, iter: u64) {
    let mut matvec = tracer.span(Phase::Matvec);
    matvec.set_iter(iter);
    {
        let mut g = tracer.span(Phase::Gather);
        g.set_bytes(256);
        busy(50);
    }
    {
        let _g = tracer.span(Phase::Interior);
        busy(200);
    }
    {
        let mut g = tracer.span(Phase::Wire);
        g.set_bytes(256);
        busy(80);
    }
    {
        let _g = tracer.span(Phase::Exterior);
        busy(60);
    }
}

fn spans_of_rank(spans: &[Span], rank: usize) -> Vec<Span> {
    spans.iter().copied().filter(|s| s.rank == rank).collect()
}

#[test]
fn spans_nest_and_never_overlap_within_a_rank() {
    let rec = Recorder::new(3, TraceConfig::Full);
    thread::scope(|scope| {
        for rank in 0..3 {
            let tracer = rec.tracer(rank);
            scope.spawn(move || {
                for iter in 1..=4 {
                    record_iteration(&tracer, iter);
                }
            });
        }
    });
    let trace = rec.finish();
    assert_eq!(trace.unbalanced, 0);
    for rank in 0..3 {
        let spans = spans_of_rank(&trace.spans, rank);
        assert!(!spans.is_empty());
        for (i, a) in spans.iter().enumerate() {
            assert!(a.t_end >= a.t_start);
            for b in &spans[i + 1..] {
                let disjoint = a.t_end <= b.t_start || b.t_end <= a.t_start;
                let a_in_b = b.t_start <= a.t_start && a.t_end <= b.t_end;
                let b_in_a = a.t_start <= b.t_start && b.t_end <= a.t_end;
                assert!(
                    disjoint || a_in_b || b_in_a,
                    "rank {rank}: spans {a:?} and {b:?} partially overlap"
                );
            }
        }
    }
}

#[test]
fn exclusive_times_sum_to_at_most_the_wall_time() {
    let rec = Recorder::new(2, TraceConfig::Summary);
    thread::scope(|scope| {
        for rank in 0..2 {
            let tracer = rec.tracer(rank);
            scope.spawn(move || {
                for iter in 1..=8 {
                    record_iteration(&tracer, iter);
                }
            });
        }
    });
    let trace = rec.finish();
    // Summary depth keeps no raw events but still reduces.
    assert!(trace.spans.is_empty());
    let bd = trace.breakdown();
    assert!(!bd.phases.is_empty());
    assert!(bd.total_wall_s > 0.0);
    assert!(
        bd.accounted_s() <= bd.total_wall_s * (1.0 + 1e-9),
        "accounted {} > wall {}",
        bd.accounted_s(),
        bd.total_wall_s
    );
    // The matvec parent's self time excludes its children: its inclusive
    // time dominates its exclusive time.
    let matvec = bd.get(Phase::Matvec).unwrap();
    assert!(matvec.inclusive_seconds > matvec.seconds);
    // Byte counts flow into the per-phase totals: 2 ranks × 8 iters × 256.
    assert_eq!(bd.get(Phase::Gather).unwrap().bytes, 2 * 8 * 256);
}

#[test]
fn off_config_records_zero_events_and_reads_no_state() {
    let rec = Recorder::new(2, TraceConfig::Off);
    let tracer = rec.tracer(0);
    assert!(!tracer.enabled());
    for iter in 1..=4 {
        record_iteration(&tracer, iter);
    }
    tracer.record_since(Phase::Retry, Duration::ZERO, 0);
    let trace = rec.finish();
    assert!(trace.is_empty());
    assert_eq!(trace.spans.len(), 0);
    assert!(trace.breakdown().phases.is_empty());
    assert_eq!(trace.breakdown().total_wall_s, 0.0);
}

#[test]
fn disabled_tracer_is_the_default() {
    let tracer = Tracer::default();
    assert!(!tracer.enabled());
    // Guards through a disabled tracer are inert.
    let mut g = tracer.span(Phase::Kernel);
    g.set_bytes(1);
    drop(g);
}

#[test]
fn chrome_trace_round_trips_through_serde_json() {
    let rec = Recorder::new(2, TraceConfig::Full);
    thread::scope(|scope| {
        for rank in 0..2 {
            let tracer = rec.tracer(rank);
            scope.spawn(move || record_iteration(&tracer, 1));
        }
    });
    let trace = rec.finish();
    let json = trace.to_chrome_trace();

    let value = serde_json::from_str(&json).expect("exported trace parses");
    let reprinted = serde_json::to_string(&value).expect("reserialize");
    assert_eq!(serde_json::from_str(&reprinted).expect("reparse"), value);

    let summary = validate_chrome_trace(&json).expect("schema-valid");
    assert_eq!(summary.complete_events, trace.spans.len());
    assert_eq!(summary.ranks, 2);
    assert!(summary.events >= summary.complete_events);

    // Spot-check one complete event's shape.
    let events = value.get("traceEvents").unwrap().as_array().unwrap();
    let ev = events.iter().find(|e| e.get("ph").unwrap().as_str() == Some("X")).unwrap();
    assert!(ev.get("name").unwrap().as_str().is_some());
    assert!(ev.get("ts").unwrap().as_f64().unwrap() >= 0.0);
    assert!(ev.get("dur").unwrap().as_f64().unwrap() >= 0.0);
}

#[test]
fn validator_rejects_malformed_documents() {
    assert!(validate_chrome_trace("not json").is_err());
    assert!(validate_chrome_trace("{}").is_err());
    assert!(validate_chrome_trace(r#"{"traceEvents":[{"ph":"X"}]}"#).is_err());
    assert!(validate_chrome_trace(
        r#"{"traceEvents":[{"name":"k","ph":"X","ts":-1,"dur":0,"pid":0,"tid":0}]}"#
    )
    .is_err());
    assert!(validate_chrome_trace(r#"{"traceEvents":[]}"#).is_ok());
}

#[test]
fn retry_leaf_spans_integrate_into_parent_accounting() {
    let rec = Recorder::new(1, TraceConfig::Full);
    let tracer = rec.tracer(0);
    {
        let _recv = tracer.span(Phase::CommRecv);
        let t0 = quda_obs::clock::monotonic();
        busy(100);
        tracer.record_since(Phase::Retry, t0, 0);
        busy(50);
    }
    let trace = rec.finish();
    assert_eq!(trace.unbalanced, 0);
    let bd = trace.breakdown();
    let retry = bd.get(Phase::Retry).unwrap();
    let recv = bd.get(Phase::CommRecv).unwrap();
    assert!(retry.seconds > 0.0);
    // The retry tick is accounted as a child: recv self time excludes it.
    assert!(recv.seconds < recv.inclusive_seconds);
    assert!(bd.accounted_s() <= bd.total_wall_s * (1.0 + 1e-9));
}

#[test]
fn event_ring_bounds_memory_and_counts_drops() {
    let rec = Recorder::new(1, TraceConfig::Full);
    let tracer = rec.tracer(0);
    let n = (1 << 16) + 100;
    for _ in 0..n {
        let _g = tracer.span(Phase::Blas);
    }
    let trace = rec.finish();
    assert_eq!(trace.spans.len(), 1 << 16);
    assert_eq!(trace.dropped, 100);
    // Aggregates still count every span.
    assert_eq!(trace.breakdown().get(Phase::Blas).unwrap().count, n as u64);
    // The retained ring is chronologically ordered.
    for w in trace.spans.windows(2) {
        assert!(w[0].t_start <= w[1].t_start);
    }
}

#[test]
fn overlap_efficiency_is_zero_without_interior_and_bounded_otherwise() {
    // No interior phase at all → 0.
    let rec = Recorder::new(1, TraceConfig::Summary);
    let tracer = rec.tracer(0);
    {
        let _g = tracer.span(Phase::Wire);
        busy(50);
    }
    let bd = rec.finish().breakdown();
    assert_eq!(bd.overlap_efficiency, 0.0);

    // Interior + wire → strictly inside (0, 1].
    let rec = Recorder::new(1, TraceConfig::Summary);
    let tracer = rec.tracer(0);
    {
        let _g = tracer.span(Phase::Interior);
        busy(150);
    }
    {
        let _g = tracer.span(Phase::Wire);
        busy(50);
    }
    let bd = rec.finish().breakdown();
    assert!(bd.overlap_efficiency > 0.0 && bd.overlap_efficiency <= 1.0);
}
