//! The drained trace: per-rank aggregates, raw spans, the reduced
//! [`PhaseBreakdown`] and chrome-trace JSON export/validation.

use std::time::Duration;

use serde_json::{Map, Value};

use crate::phase::{Phase, PHASE_COUNT};
use crate::recorder::{PhaseAgg, Span, TraceConfig};

/// One rank's aggregated view of a solve.
#[derive(Debug, Clone, Copy)]
pub struct RankAgg {
    /// Per-phase totals, indexed by [`Phase::index`].
    pub phases: [PhaseAgg; PHASE_COUNT],
    /// Start of the first recorded span (`None` if the rank recorded
    /// nothing).
    pub t_first: Option<Duration>,
    /// End of the last recorded span.
    pub t_last: Duration,
}

impl RankAgg {
    /// Total self time across all phases: how long the rank was inside
    /// *some* span, with no double counting.
    pub fn busy(&self) -> Duration {
        self.phases.iter().map(|a| a.exclusive).sum()
    }

    /// Wall-clock extent of this rank's activity.
    pub fn wall(&self) -> Duration {
        match self.t_first {
            Some(first) => self.t_last.saturating_sub(first),
            None => Duration::ZERO,
        }
    }
}

/// Everything a [`crate::Recorder`] captured for one solve.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The depth the trace was recorded at.
    pub config: TraceConfig,
    /// Per-rank aggregates (always populated unless `Off`).
    pub ranks: Vec<RankAgg>,
    /// Raw span events in per-rank chronological order
    /// ([`TraceConfig::Full`] only).
    pub spans: Vec<Span>,
    /// Raw events evicted from the per-rank rings.
    pub dropped: u64,
    /// Span guards dropped out of LIFO order or left open at finish —
    /// always 0 unless the instrumentation itself has a bug.
    pub unbalanced: u64,
}

impl Default for Trace {
    /// The empty `Off` trace.
    fn default() -> Self {
        Trace {
            config: TraceConfig::Off,
            ranks: Vec::new(),
            spans: Vec::new(),
            dropped: 0,
            unbalanced: 0,
        }
    }
}

/// Reduced per-phase statistics for one phase (see [`PhaseBreakdown`]).
#[derive(Debug, Clone, Copy)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: Phase,
    /// Mean over ranks of the phase's *exclusive* (self) seconds. Across
    /// all phases these sum to at most [`PhaseBreakdown::total_wall_s`].
    pub seconds: f64,
    /// Mean over ranks of the phase's inclusive seconds (children
    /// counted; overlapping phases can sum past the wall time).
    pub inclusive_seconds: f64,
    /// Total payload bytes attributed to the phase, all ranks.
    pub bytes: u64,
    /// Total number of spans, all ranks.
    pub count: u64,
}

/// The measured phase breakdown of a solve — the run-derived counterpart
/// of the analytic model in `core::perf` (SC10 Fig. 5).
#[derive(Debug, Clone, Default)]
pub struct PhaseBreakdown {
    /// World size the trace was recorded over.
    pub n_ranks: usize,
    /// Per-phase statistics, largest self time first; phases that never
    /// occurred are omitted.
    pub phases: Vec<PhaseStat>,
    /// Wall time of the traced region: the maximum over ranks of
    /// last-span-end minus first-span-start.
    pub total_wall_s: f64,
    /// Hidden-communication fraction in `[0, 1]`: interior-kernel time
    /// (compute running while faces are in flight) over interior plus
    /// exposed wire-wait time. 0 when nothing overlapped (`NoOverlap`
    /// runs have no interior phase by construction).
    pub overlap_efficiency: f64,
    /// Load imbalance: max minus min over ranks of total busy (self)
    /// time.
    pub rank_skew_s: f64,
    /// Total bytes enqueued by `comm_send` across all ranks.
    pub bytes_moved: u64,
    /// Raw events evicted from the ring buffers (aggregates still count
    /// them).
    pub dropped_events: u64,
}

impl PhaseBreakdown {
    /// The stat for `phase`, if it occurred.
    pub fn get(&self, phase: Phase) -> Option<&PhaseStat> {
        self.phases.iter().find(|s| s.phase == phase)
    }

    /// Sum over phases of mean exclusive seconds; ≤ `total_wall_s` up to
    /// clock-read jitter.
    pub fn accounted_s(&self) -> f64 {
        self.phases.iter().map(|s| s.seconds).sum()
    }
}

impl Trace {
    /// `true` iff nothing was recorded at any depth.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.ranks.iter().all(|r| r.t_first.is_none())
    }

    /// Reduce the per-rank aggregates to a [`PhaseBreakdown`]. Works at
    /// `Summary` depth and above (raw spans are not required).
    pub fn breakdown(&self) -> PhaseBreakdown {
        let n = self.ranks.len();
        if n == 0 {
            return PhaseBreakdown::default();
        }
        let mut phases = Vec::new();
        for phase in Phase::ALL {
            let i = phase.index();
            let mut excl = Duration::ZERO;
            let mut incl = Duration::ZERO;
            let mut bytes = 0u64;
            let mut count = 0u64;
            for r in &self.ranks {
                excl += r.phases[i].exclusive;
                incl += r.phases[i].inclusive;
                bytes += r.phases[i].bytes;
                count += r.phases[i].count;
            }
            if count > 0 {
                phases.push(PhaseStat {
                    phase,
                    seconds: excl.as_secs_f64() / n as f64,
                    inclusive_seconds: incl.as_secs_f64() / n as f64,
                    bytes,
                    count,
                });
            }
        }
        phases.sort_by(|a, b| b.seconds.total_cmp(&a.seconds));

        let total_wall_s =
            self.ranks.iter().map(|r| r.wall()).max().unwrap_or(Duration::ZERO).as_secs_f64();
        let busies: Vec<Duration> = self.ranks.iter().map(|r| r.busy()).collect();
        let rank_skew_s = match (busies.iter().max(), busies.iter().min()) {
            (Some(max), Some(min)) => max.saturating_sub(*min).as_secs_f64(),
            _ => 0.0,
        };

        let hidden: f64 =
            phases.iter().find(|s| s.phase == Phase::Interior).map_or(0.0, |s| s.inclusive_seconds);
        // Exposed wire-wait sums every per-direction wait of the 4-d
        // decomposition (T keeps the plain `Wire` phase).
        let exposed: f64 = phases
            .iter()
            .filter(|s| matches!(s.phase, Phase::Wire | Phase::WireX | Phase::WireY | Phase::WireZ))
            .map(|s| s.inclusive_seconds)
            .sum();
        let overlap_efficiency =
            if hidden + exposed > 0.0 { hidden / (hidden + exposed) } else { 0.0 };

        let bytes_moved = phases.iter().find(|s| s.phase == Phase::CommSend).map_or(0, |s| s.bytes);

        PhaseBreakdown {
            n_ranks: n,
            phases,
            total_wall_s,
            overlap_efficiency,
            rank_skew_s,
            bytes_moved,
            dropped_events: self.dropped,
        }
    }

    /// Export the raw spans in the chrome trace-event format (open in
    /// `chrome://tracing`, Perfetto, or Speedscope): one JSON object with
    /// a `traceEvents` array of complete (`"ph":"X"`) events, `tid` =
    /// rank, timestamps in microseconds. `Summary`-depth traces export a
    /// valid document with thread-name metadata only.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<Value> = Vec::with_capacity(self.spans.len() + self.ranks.len());
        for rank in 0..self.ranks.len() {
            let mut args = Map::new();
            args.insert("name".to_owned(), Value::from(format!("rank {rank}")));
            let mut ev = Map::new();
            ev.insert("ph".to_owned(), Value::from("M"));
            ev.insert("name".to_owned(), Value::from("thread_name"));
            ev.insert("pid".to_owned(), Value::from(0u64));
            ev.insert("tid".to_owned(), Value::from(rank));
            ev.insert("args".to_owned(), Value::Object(args));
            events.push(Value::Object(ev));
        }
        for span in &self.spans {
            let mut args = Map::new();
            if span.bytes > 0 {
                args.insert("bytes".to_owned(), Value::from(span.bytes));
            }
            if span.iter > 0 {
                args.insert("iter".to_owned(), Value::from(span.iter));
            }
            let mut ev = Map::new();
            ev.insert("name".to_owned(), Value::from(span.phase.name()));
            ev.insert("cat".to_owned(), Value::from(phase_cat(span.phase)));
            ev.insert("ph".to_owned(), Value::from("X"));
            ev.insert("ts".to_owned(), Value::from(span.t_start.as_secs_f64() * 1e6));
            ev.insert("dur".to_owned(), Value::from(span.dur().as_secs_f64() * 1e6));
            ev.insert("pid".to_owned(), Value::from(0u64));
            ev.insert("tid".to_owned(), Value::from(span.rank));
            if !args.is_empty() {
                ev.insert("args".to_owned(), Value::Object(args));
            }
            events.push(Value::Object(ev));
        }
        let mut root = Map::new();
        root.insert("displayTimeUnit".to_owned(), Value::from("ms"));
        root.insert("traceEvents".to_owned(), Value::Array(events));
        // Every number above is a finite duration or count, so
        // serialization cannot fail; fall back to an empty document
        // rather than panicking inside observability code.
        serde_json::to_string(&Value::Object(root))
            .unwrap_or_else(|_| "{\"traceEvents\":[]}".to_owned())
    }
}

impl Span {
    /// The span's duration.
    pub fn dur(&self) -> Duration {
        self.t_end.saturating_sub(self.t_start)
    }
}

fn phase_cat(phase: Phase) -> &'static str {
    match phase {
        Phase::CommSend | Phase::CommRecv | Phase::Retry | Phase::AllReduce | Phase::Lockstep => {
            "comm"
        }
        Phase::Gather
        | Phase::Wire
        | Phase::WireX
        | Phase::WireY
        | Phase::WireZ
        | Phase::Scatter => "ghost",
        Phase::Interior
        | Phase::Exterior
        | Phase::ExteriorX
        | Phase::ExteriorY
        | Phase::ExteriorZ
        | Phase::Kernel => "kernel",
        Phase::Matvec
        | Phase::Blas
        | Phase::Reduce
        | Phase::ReliableUpdate
        | Phase::Prepare
        | Phase::Reconstruct
        | Phase::Batch => "solver",
        Phase::Checkpoint | Phase::Recovery => "resilience",
    }
}

/// What [`validate_chrome_trace`] found in a structurally valid export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// Total events, metadata included.
    pub events: usize,
    /// Complete (`"ph":"X"`) span events.
    pub complete_events: usize,
    /// Distinct `tid` (rank) values seen on complete events.
    pub ranks: usize,
}

/// Validate a chrome-trace document against the schema the exporter
/// emits: a root object with a `traceEvents` array whose entries carry a
/// string `name` and `ph`, and — for complete (`X`) events — finite
/// non-negative `ts`/`dur` plus integral `pid`/`tid`. This is the check
/// the CI `trace` job runs on the exported artifact.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceSummary, String> {
    let root = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let events = root
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "root object must have a `traceEvents` array".to_owned())?;
    let mut complete = 0;
    let mut ranks = std::collections::BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let obj = ev.as_object().ok_or_else(|| format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} lacks a string `ph`"))?;
        if obj.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("event {i} lacks a string `name`"));
        }
        if ph == "X" {
            for key in ["ts", "dur"] {
                let n = obj
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i} lacks a numeric `{key}`"))?;
                if !n.is_finite() || n < 0.0 {
                    return Err(format!("event {i} has a negative or non-finite `{key}`"));
                }
            }
            let tid = obj
                .get("tid")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("event {i} lacks an integral `tid`"))?;
            if obj.get("pid").and_then(Value::as_u64).is_none() {
                return Err(format!("event {i} lacks an integral `pid`"));
            }
            ranks.insert(tid);
            complete += 1;
        }
    }
    Ok(ChromeTraceSummary { events: events.len(), complete_events: complete, ranks: ranks.len() })
}
