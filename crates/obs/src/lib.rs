//! # quda-obs
//!
//! Per-rank phase tracing for the parallel solver: a lightweight,
//! thread-safe span/counter recorder measuring the phase breakdown the
//! paper reports (Babich/Clark/Joó SC10, Section VI-D, Fig. 5) — interior
//! kernel vs. face gather vs. wire time — from the run itself rather than
//! from the analytic model in `perf.rs`.
//!
//! Design:
//!
//! * [`clock`] — one process-wide monotonic epoch; the **only** place in
//!   the comm/multigpu/solvers stack allowed to call `Instant::now()`
//!   (xtask lint rule `no-raw-instant`).
//! * [`Phase`] — the closed phase taxonomy (communication, ghost
//!   exchange, kernel and solver-algebra phases).
//! * [`Recorder`] — one per solve; hands a cheap clonable [`Tracer`] to
//!   every rank thread. Spans are recorded via RAII [`SpanGuard`]s onto a
//!   per-rank buffer behind its own mutex, so ranks never contend.
//! * [`Trace`] — the drained result: per-rank aggregates plus (in
//!   [`TraceConfig::Full`]) a bounded ring of raw span events, reducible
//!   to a [`PhaseBreakdown`] or exported with [`Trace::to_chrome_trace`].
//!
//! When tracing is off every guard is a no-op around an `Option` that is
//! `None` — no clock reads, no locks, no allocation.

#![warn(missing_docs)]
// Observability must never take down the solve it is observing: the same
// no-panic discipline as the hot path it instruments.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod clock;
mod phase;
mod recorder;
mod trace;

pub use phase::{Phase, PHASE_COUNT};
pub use recorder::{PhaseAgg, Recorder, Span, SpanGuard, TraceConfig, Tracer};
pub use trace::{
    validate_chrome_trace, ChromeTraceSummary, PhaseBreakdown, PhaseStat, RankAgg, Trace,
};
