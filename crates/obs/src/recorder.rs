//! The span recorder: per-rank buffers, RAII span guards and the
//! clonable [`Tracer`] handle threaded through the hot path.

use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use crate::clock;
use crate::phase::{Phase, PHASE_COUNT};
use crate::trace::{RankAgg, Trace};

/// How much a traced solve records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceConfig {
    /// Record nothing; tracers are disabled and spans are free.
    #[default]
    Off,
    /// Record per-rank per-phase aggregates only (constant memory).
    Summary,
    /// Aggregates plus a bounded ring of raw span events per rank, for
    /// chrome-trace export.
    Full,
}

impl TraceConfig {
    /// `true` iff nothing is recorded.
    pub fn is_off(self) -> bool {
        matches!(self, TraceConfig::Off)
    }
}

/// One closed span: half-open interval `[t_start, t_end)` on `rank`,
/// attributed to `phase`. Timestamps are offsets from the process epoch
/// ([`clock::monotonic`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Rank the span was recorded on.
    pub rank: usize,
    /// Phase attribution.
    pub phase: Phase,
    /// Start, relative to the process epoch.
    pub t_start: Duration,
    /// End, relative to the process epoch.
    pub t_end: Duration,
    /// Payload bytes attributed to the span (0 if not a transfer).
    pub bytes: u64,
    /// Solver iteration the span belongs to (0 outside the Krylov loop).
    pub iter: u64,
}

/// Per-phase running totals for one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Total span duration, children included.
    pub inclusive: Duration,
    /// Self time: span duration minus time spent in nested spans. Within
    /// a rank, exclusive times over all phases sum to at most the rank's
    /// busy interval — nothing is double-counted.
    pub exclusive: Duration,
    /// Total payload bytes.
    pub bytes: u64,
    /// Number of spans.
    pub count: u64,
}

/// An open span on the per-rank stack.
struct Frame {
    phase: Phase,
    start: Duration,
    /// Accumulated inclusive time of already-closed children; subtracted
    /// from this frame's duration to get its exclusive (self) time.
    child: Duration,
}

/// Cap on raw events retained per rank under [`TraceConfig::Full`]; the
/// ring keeps the newest events and counts what it had to drop.
const EVENT_CAP: usize = 1 << 16;

struct RankBuf {
    stack: Vec<Frame>,
    agg: [PhaseAgg; PHASE_COUNT],
    /// Raw events (Full only), as a ring once `EVENT_CAP` is reached.
    events: Vec<Span>,
    /// Next overwrite position once the ring is full.
    head: usize,
    dropped: u64,
    /// Guards dropped out of LIFO order (a recorder bug, surfaced rather
    /// than silently mis-attributed).
    unbalanced: u64,
    t_first: Option<Duration>,
    t_last: Duration,
}

impl RankBuf {
    fn new() -> Self {
        RankBuf {
            stack: Vec::with_capacity(8),
            agg: [PhaseAgg::default(); PHASE_COUNT],
            events: Vec::new(),
            head: 0,
            dropped: 0,
            unbalanced: 0,
            t_first: None,
            t_last: Duration::ZERO,
        }
    }

    fn push_event(&mut self, span: Span) {
        if self.events.len() < EVENT_CAP {
            self.events.push(span);
        } else {
            self.events[self.head] = span;
            self.head = (self.head + 1) % EVENT_CAP;
            self.dropped += 1;
        }
    }

    /// Close a span: fold it into the aggregates, credit the parent's
    /// child accumulator and (in Full mode) store the raw event.
    fn close(&mut self, rank: usize, phase: Phase, full: bool, bytes: u64, iter: u64) {
        // Out-of-order drops should be impossible (guards are scoped
        // values), but a search keeps one bug from corrupting the stack.
        let Some(pos) = self.stack.iter().rposition(|f| f.phase == phase) else {
            self.unbalanced += 1;
            return;
        };
        self.unbalanced += (self.stack.len() - 1 - pos) as u64;
        self.stack.truncate(pos + 1);
        // `pos` < len, so the pop cannot fail; destructure defensively.
        let Some(frame) = self.stack.pop() else { return };

        let end = clock::monotonic();
        let dur = end.saturating_sub(frame.start);
        let exclusive = dur.saturating_sub(frame.child);
        if let Some(parent) = self.stack.last_mut() {
            parent.child += dur;
        }

        let a = &mut self.agg[phase.index()];
        a.inclusive += dur;
        a.exclusive += exclusive;
        a.bytes += bytes;
        a.count += 1;

        // Parents close after their children, so take the min: the rank's
        // busy interval must cover every span's full extent for the
        // "exclusive times sum to ≤ wall" invariant to hold.
        self.t_first = Some(self.t_first.map_or(frame.start, |t| t.min(frame.start)));
        self.t_last = self.t_last.max(end);

        if full {
            self.push_event(Span { rank, phase, t_start: frame.start, t_end: end, bytes, iter });
        }
    }

    /// Record an already-timed leaf span (no children). Used for
    /// intervals whose start predates the decision to record them, e.g.
    /// an expired retry tick.
    fn record_leaf(
        &mut self,
        rank: usize,
        phase: Phase,
        t_start: Duration,
        full: bool,
        bytes: u64,
    ) {
        let end = clock::monotonic();
        let dur = end.saturating_sub(t_start);
        if let Some(parent) = self.stack.last_mut() {
            parent.child += dur;
        }
        let a = &mut self.agg[phase.index()];
        a.inclusive += dur;
        a.exclusive += dur;
        a.bytes += bytes;
        a.count += 1;
        self.t_first = Some(self.t_first.map_or(t_start, |t| t.min(t_start)));
        self.t_last = self.t_last.max(end);
        if full {
            self.push_event(Span { rank, phase, t_start, t_end: end, bytes, iter: 0 });
        }
    }

    /// Drain into a [`RankAgg`] plus this rank's raw events in
    /// chronological order.
    fn drain(&mut self, into: &mut Vec<Span>) -> (RankAgg, u64, u64) {
        // Ring order: the oldest retained event sits at `head`.
        into.extend_from_slice(&self.events[self.head..]);
        into.extend_from_slice(&self.events[..self.head]);
        let agg = RankAgg { phases: self.agg, t_first: self.t_first, t_last: self.t_last };
        (agg, self.dropped, self.unbalanced)
    }
}

struct Shared {
    config: TraceConfig,
    ranks: Vec<Mutex<RankBuf>>,
}

/// One recorder per solve. Create it with the world size, hand each rank
/// thread its [`Tracer`], then [`Recorder::finish`] after the join to
/// collect the [`Trace`].
pub struct Recorder {
    shared: Arc<Shared>,
}

impl Recorder {
    /// A recorder for `n_ranks` ranks at the given depth.
    pub fn new(n_ranks: usize, config: TraceConfig) -> Recorder {
        let ranks = (0..n_ranks).map(|_| Mutex::new(RankBuf::new())).collect();
        Recorder { shared: Arc::new(Shared { config, ranks }) }
    }

    /// The tracing depth this recorder was created with.
    pub fn config(&self) -> TraceConfig {
        self.shared.config
    }

    /// The tracer handle for `rank`. Disabled (free) when the config is
    /// [`TraceConfig::Off`] or the rank is out of range.
    pub fn tracer(&self, rank: usize) -> Tracer {
        if self.shared.config.is_off() || rank >= self.shared.ranks.len() {
            return Tracer::disabled();
        }
        Tracer { shared: Some(Arc::clone(&self.shared)), rank }
    }

    /// Drain every rank buffer into a [`Trace`]. Call after all rank
    /// threads have been joined; spans still open at this point are
    /// discarded (counted as unbalanced).
    pub fn finish(&self) -> Trace {
        let mut spans = Vec::new();
        let mut ranks = Vec::with_capacity(self.shared.ranks.len());
        let mut dropped = 0;
        let mut unbalanced = 0;
        for buf in &self.shared.ranks {
            let mut buf = buf.lock().unwrap_or_else(PoisonError::into_inner);
            unbalanced += buf.stack.len() as u64;
            let (agg, d, u) = buf.drain(&mut spans);
            ranks.push(agg);
            dropped += d;
            unbalanced += u;
        }
        Trace { config: self.shared.config, ranks, spans, dropped, unbalanced }
    }
}

/// A cheap, clonable handle recording spans for one rank. The disabled
/// tracer (the default) records nothing and never reads the clock.
#[derive(Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
    rank: usize,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.shared.is_some())
            .field("rank", &self.rank)
            .finish()
    }
}

impl Tracer {
    /// The no-op tracer.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// `true` iff spans recorded through this handle are kept.
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The rank this handle records for (0 when disabled).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Open a span; it closes (and is recorded) when the guard drops.
    /// Spans opened while another is open nest inside it.
    pub fn span(&self, phase: Phase) -> SpanGuard {
        if let Some(shared) = &self.shared {
            if let Some(buf) = shared.ranks.get(self.rank) {
                let mut buf = buf.lock().unwrap_or_else(PoisonError::into_inner);
                buf.stack.push(Frame { phase, start: clock::monotonic(), child: Duration::ZERO });
            }
        }
        SpanGuard { tracer: self.clone(), phase, bytes: 0, iter: 0 }
    }

    /// Record a leaf span that started at `t_start` (from
    /// [`clock::monotonic`]) and ends now — for intervals only known to
    /// be interesting after the fact, like an expired retry tick.
    pub fn record_since(&self, phase: Phase, t_start: Duration, bytes: u64) {
        if let Some(shared) = &self.shared {
            if let Some(buf) = shared.ranks.get(self.rank) {
                let full = shared.config == TraceConfig::Full;
                let mut buf = buf.lock().unwrap_or_else(PoisonError::into_inner);
                buf.record_leaf(self.rank, phase, t_start, full, bytes);
            }
        }
    }
}

/// RAII guard for an open span; recording happens on drop.
#[must_use = "the span closes when the guard drops; binding it to `_` closes it immediately"]
pub struct SpanGuard {
    tracer: Tracer,
    phase: Phase,
    bytes: u64,
    iter: u64,
}

impl SpanGuard {
    /// Attribute `bytes` payload bytes to this span.
    pub fn set_bytes(&mut self, bytes: u64) {
        self.bytes = bytes;
    }

    /// Add to the span's payload byte count.
    pub fn add_bytes(&mut self, bytes: u64) {
        self.bytes += bytes;
    }

    /// Tag the span with the solver iteration it belongs to.
    pub fn set_iter(&mut self, iter: u64) {
        self.iter = iter;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(shared) = &self.tracer.shared {
            if let Some(buf) = shared.ranks.get(self.tracer.rank) {
                let full = shared.config == TraceConfig::Full;
                let mut buf = buf.lock().unwrap_or_else(PoisonError::into_inner);
                buf.close(self.tracer.rank, self.phase, full, self.bytes, self.iter);
            }
        }
    }
}
