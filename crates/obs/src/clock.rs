//! The process-wide monotonic clock every span timestamp derives from.
//!
//! All timestamps are durations since a lazily-pinned epoch (the first
//! call in the process), so spans recorded on different rank threads are
//! directly comparable and serialize as small numbers. This module is the
//! single sanctioned `Instant::now()` call site for the comm, multigpu
//! and solvers crates — everywhere else the xtask lint rule
//! `no-raw-instant` rejects raw `Instant` reads, so that all hot-path
//! timing flows through the recorder and stays comparable across ranks.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic time since the process-wide epoch.
///
/// The first call pins the epoch; every later call (from any thread)
/// measures against it. Monotonicity is inherited from [`Instant`].
pub fn monotonic() -> Duration {
    EPOCH.get_or_init(Instant::now).elapsed()
}
