//! The closed phase taxonomy (see DESIGN.md §9).
//!
//! Phases come in four layers, mirroring the call stack of a traced
//! solve: solver algebra (`Matvec`/`Blas`/`Reduce`/`ReliableUpdate`),
//! operator kernels (`Interior`/`Exterior`/`Kernel` plus
//! `Prepare`/`Reconstruct`), ghost exchange (`Gather`/`Wire`/`Scatter`)
//! and raw communication (`CommSend`/`CommRecv`/`Retry`/`AllReduce`).
//! Spans of an inner layer nest inside the spans of the layer above, and
//! the recorder attributes each nanosecond to exactly one phase (the
//! innermost open span), so per-phase *self* times sum to at most the
//! wall time.

/// Number of distinct phases; arrays indexed by [`Phase::index`] have
/// this length.
pub const PHASE_COUNT: usize = 26;

/// One phase of a traced solve. `Copy` and dense-indexable so per-rank
/// aggregation is a fixed-size array, not a hash map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Enqueueing one message into a peer's mailbox (`Communicator::send`).
    CommSend,
    /// Blocking wait for one matched message (`Communicator::recv`).
    CommRecv,
    /// One expired retry tick inside a blocking receive.
    Retry,
    /// A collective (gather + broadcast allreduce, or barrier).
    AllReduce,
    /// Lockstep-sanitizer bookkeeping inside a collective: fingerprint
    /// encoding on the leaves, cross-rank comparison on the root.
    Lockstep,
    /// Packing a time-slice face into the wire format.
    Gather,
    /// Waiting for a face message from a neighbour rank.
    Wire,
    /// Unpacking a received face into the ghost zone.
    Scatter,
    /// Interior dslash while faces are in flight (`CommStrategy::Overlap`).
    Interior,
    /// Face-site dslash after ghosts arrive (`CommStrategy::Overlap`).
    Exterior,
    /// Full-volume dslash (no-overlap or unpartitioned path).
    Kernel,
    /// One whole operator application inside a solver iteration.
    Matvec,
    /// Local BLAS1 vector algebra inside a solver iteration.
    Blas,
    /// A solver global reduction (the local scalar's allreduce).
    Reduce,
    /// A mixed-precision reliable update (true-residual recompute).
    ReliableUpdate,
    /// Even/odd source preparation before the Krylov loop.
    Prepare,
    /// Full-solution reconstruction after the Krylov loop.
    Reconstruct,
    /// Waiting for an X-face message (4-d decomposition; the T axis keeps
    /// the original [`Phase::Wire`] so 1-d traces are unchanged).
    WireX,
    /// Waiting for a Y-face message.
    WireY,
    /// Waiting for a Z-face message.
    WireZ,
    /// X-boundary dslash after that direction's ghosts arrive (the T axis
    /// keeps [`Phase::Exterior`]).
    ExteriorX,
    /// Y-boundary dslash after that direction's ghosts arrive.
    ExteriorY,
    /// Z-boundary dslash after that direction's ghosts arrive.
    ExteriorZ,
    /// Capturing and depositing a solver checkpoint at a reliable-update
    /// boundary (elastic resilience, DESIGN.md §12).
    Checkpoint,
    /// Rank-side rehydration after a world rebuild: restoring the iterate
    /// and residual from the last globally consistent checkpoint.
    Recovery,
    /// One blocked multi-RHS Krylov solve: the span the inversion service
    /// opens around a batched solver call (DESIGN.md §14). Per-iteration
    /// phases (`Matvec`, `Blas`, …) nest inside it.
    Batch,
}

impl Phase {
    /// Every phase, in `index` order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::CommSend,
        Phase::CommRecv,
        Phase::Retry,
        Phase::AllReduce,
        Phase::Lockstep,
        Phase::Gather,
        Phase::Wire,
        Phase::Scatter,
        Phase::Interior,
        Phase::Exterior,
        Phase::Kernel,
        Phase::Matvec,
        Phase::Blas,
        Phase::Reduce,
        Phase::ReliableUpdate,
        Phase::Prepare,
        Phase::Reconstruct,
        Phase::WireX,
        Phase::WireY,
        Phase::WireZ,
        Phase::ExteriorX,
        Phase::ExteriorY,
        Phase::ExteriorZ,
        Phase::Checkpoint,
        Phase::Recovery,
        Phase::Batch,
    ];

    /// Dense index in `0..PHASE_COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The wire-wait phase for faces of lattice dimension `dim` (0..=3 =
    /// X,Y,Z,T). The T axis maps onto the original [`Phase::Wire`] so
    /// existing 1-d traces keep their phase labels.
    pub fn wire_dim(dim: usize) -> Phase {
        match dim {
            0 => Phase::WireX,
            1 => Phase::WireY,
            2 => Phase::WireZ,
            _ => Phase::Wire,
        }
    }

    /// The exterior-update phase for faces of lattice dimension `dim`; T
    /// maps onto the original [`Phase::Exterior`].
    pub fn exterior_dim(dim: usize) -> Phase {
        match dim {
            0 => Phase::ExteriorX,
            1 => Phase::ExteriorY,
            2 => Phase::ExteriorZ,
            _ => Phase::Exterior,
        }
    }

    /// Stable lowercase name used in exports and reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::CommSend => "comm_send",
            Phase::CommRecv => "comm_recv",
            Phase::Retry => "retry",
            Phase::AllReduce => "allreduce",
            Phase::Lockstep => "lockstep",
            Phase::Gather => "gather",
            Phase::Wire => "wire",
            Phase::Scatter => "scatter",
            Phase::Interior => "interior",
            Phase::Exterior => "exterior",
            Phase::Kernel => "kernel",
            Phase::Matvec => "matvec",
            Phase::Blas => "blas",
            Phase::Reduce => "reduce",
            Phase::ReliableUpdate => "reliable_update",
            Phase::Prepare => "prepare",
            Phase::Reconstruct => "reconstruct",
            Phase::WireX => "wire_x",
            Phase::WireY => "wire_y",
            Phase::WireZ => "wire_z",
            Phase::ExteriorX => "exterior_x",
            Phase::ExteriorY => "exterior_y",
            Phase::ExteriorZ => "exterior_z",
            Phase::Checkpoint => "checkpoint",
            Phase::Recovery => "recovery",
            Phase::Batch => "batch",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn per_dimension_helpers_map_t_onto_legacy_phases() {
        assert_eq!(Phase::wire_dim(3), Phase::Wire);
        assert_eq!(Phase::exterior_dim(3), Phase::Exterior);
        let wires: Vec<Phase> = (0..4).map(Phase::wire_dim).collect();
        let exts: Vec<Phase> = (0..4).map(Phase::exterior_dim).collect();
        for (i, a) in wires.iter().enumerate() {
            for b in &wires[i + 1..] {
                assert_ne!(a, b);
            }
        }
        for (i, a) in exts.iter().enumerate() {
            for b in &exts[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn names_are_unique() {
        for a in Phase::ALL {
            for b in Phase::ALL {
                if a != b {
                    assert_ne!(a.name(), b.name());
                }
            }
        }
    }
}
