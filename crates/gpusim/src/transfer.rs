//! PCI-Express transfer-time model (Fig. 7) and InfiniBand message model.

use crate::calib::{NetworkCalib, TransferCalib};

/// Synchronous (`cudaMemcpy`) or asynchronous (`cudaMemcpyAsync` +
/// synchronize) copy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CopyKind {
    /// Blocking copy: low latency (≈ 11 µs on the 9g nodes).
    Sync,
    /// Streamed copy: overlappable, but ≈ 48 µs latency on the early
    /// Tylersburg revision (Section VII-D) — the reason overlapping can
    /// *lose* on small local volumes (Fig. 5(b)).
    Async,
}

/// Transfer direction over the PCI-E bus.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Host to device.
    H2D,
    /// Device to host.
    D2H,
}

/// Process-to-socket binding quality (Section VII-D: OpenMPI processor
/// affinity; Fig. 5(a)'s maroon curve is `Bad`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum NumaPlacement {
    /// Process bound to the socket its GPU hangs off.
    Good,
    /// Process bound to the opposite socket: traffic crosses QPI.
    Bad,
}

/// Time for one PCI-E copy of `bytes`.
pub fn pcie_time(
    calib: &TransferCalib,
    kind: CopyKind,
    dir: Direction,
    numa: NumaPlacement,
    bytes: usize,
) -> f64 {
    let latency = match kind {
        CopyKind::Sync => calib.sync_latency_s,
        CopyKind::Async => calib.async_latency_s,
    };
    let mut bw = match dir {
        Direction::H2D => calib.h2d_bw,
        Direction::D2H => calib.d2h_bw,
    };
    if numa == NumaPlacement::Bad {
        bw *= calib.bad_numa_factor;
    }
    latency + bytes as f64 / bw
}

/// Time for one point-to-point InfiniBand message of `bytes`.
pub fn network_time(calib: &NetworkCalib, bytes: usize) -> f64 {
    calib.latency_s + bytes as f64 / calib.bw
}

/// Time for one allreduce over `ranks` ranks of a tiny payload (the solver's
/// scalar reductions): a log-depth latency term dominates.
pub fn allreduce_time(calib: &NetworkCalib, ranks: usize) -> f64 {
    if ranks <= 1 {
        return 0.0;
    }
    let hops = (ranks as f64).log2().ceil();
    hops * calib.allreduce_latency_s
}

/// One row of the Fig. 7 microbenchmark: transfer times in microseconds for
/// all four (kind, direction) combinations at a message size.
#[derive(Copy, Clone, Debug)]
pub struct LatencyRow {
    /// Message size in bytes.
    pub bytes: usize,
    /// `cudaMemcpy` D2H (µs).
    pub sync_d2h_us: f64,
    /// `cudaMemcpy` H2D (µs).
    pub sync_h2d_us: f64,
    /// `cudaMemcpyAsync` D2H (µs).
    pub async_d2h_us: f64,
    /// `cudaMemcpyAsync` H2D (µs).
    pub async_h2d_us: f64,
}

/// Generate the Fig. 7 sweep (1 KiB – 256 KiB by powers of two).
pub fn latency_microbenchmark(calib: &TransferCalib) -> Vec<LatencyRow> {
    let mut rows = Vec::new();
    let mut bytes = 1024usize;
    while bytes <= 256 * 1024 {
        rows.push(LatencyRow {
            bytes,
            sync_d2h_us: pcie_time(
                calib,
                CopyKind::Sync,
                Direction::D2H,
                NumaPlacement::Good,
                bytes,
            ) * 1e6,
            sync_h2d_us: pcie_time(
                calib,
                CopyKind::Sync,
                Direction::H2D,
                NumaPlacement::Good,
                bytes,
            ) * 1e6,
            async_d2h_us: pcie_time(
                calib,
                CopyKind::Async,
                Direction::D2H,
                NumaPlacement::Good,
                bytes,
            ) * 1e6,
            async_h2d_us: pcie_time(
                calib,
                CopyKind::Async,
                Direction::H2D,
                NumaPlacement::Good,
                bytes,
            ) * 1e6,
        });
        bytes *= 2;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::TransferCalib;

    fn calib() -> TransferCalib {
        TransferCalib::default()
    }

    #[test]
    fn latency_limited_region_matches_fig7() {
        // At 1 KiB, sync ≈ 11 µs, async ≈ just under 50 µs.
        let c = calib();
        let sync = pcie_time(&c, CopyKind::Sync, Direction::D2H, NumaPlacement::Good, 1024) * 1e6;
        let asyn = pcie_time(&c, CopyKind::Async, Direction::D2H, NumaPlacement::Good, 1024) * 1e6;
        assert!((sync - 11.0).abs() < 1.0, "sync {sync}");
        assert!(asyn > 45.0 && asyn < 52.0, "async {asyn}");
    }

    #[test]
    fn gradients_differ_by_direction() {
        // Out of the latency region the two directions show different
        // slopes (Fig. 7's diverging lines).
        let c = calib();
        let big = 256 * 1024;
        let d2h = pcie_time(&c, CopyKind::Sync, Direction::D2H, NumaPlacement::Good, big);
        let h2d = pcie_time(&c, CopyKind::Sync, Direction::H2D, NumaPlacement::Good, big);
        assert!(d2h > h2d, "D2H must be slower");
    }

    #[test]
    fn async_beats_sync_only_for_large_messages_if_ever() {
        // Async never wins on raw time (same bandwidth, more latency) — its
        // value is overlap, which the stream model captures.
        let c = calib();
        for bytes in [1024usize, 65536, 262144] {
            let s = pcie_time(&c, CopyKind::Sync, Direction::H2D, NumaPlacement::Good, bytes);
            let a = pcie_time(&c, CopyKind::Async, Direction::H2D, NumaPlacement::Good, bytes);
            assert!(a > s);
            assert!((a - s - (c.async_latency_s - c.sync_latency_s)).abs() < 1e-12);
        }
    }

    #[test]
    fn bad_numa_slows_transfers() {
        let c = calib();
        let good = pcie_time(&c, CopyKind::Sync, Direction::H2D, NumaPlacement::Good, 1 << 20);
        let bad = pcie_time(&c, CopyKind::Sync, Direction::H2D, NumaPlacement::Bad, 1 << 20);
        assert!(bad > good * 1.3);
    }

    #[test]
    fn microbenchmark_covers_fig7_range() {
        let rows = latency_microbenchmark(&calib());
        assert_eq!(rows.first().unwrap().bytes, 1024);
        assert_eq!(rows.last().unwrap().bytes, 256 * 1024);
        assert_eq!(rows.len(), 9);
        // Monotone in size.
        for w in rows.windows(2) {
            assert!(w[1].sync_d2h_us > w[0].sync_d2h_us);
        }
    }

    #[test]
    fn network_and_allreduce() {
        let n = NetworkCalib::default();
        let t = network_time(&n, 1 << 20);
        assert!(t > n.latency_s);
        assert_eq!(allreduce_time(&n, 1), 0.0);
        assert!(allreduce_time(&n, 32) > allreduce_time(&n, 2));
        assert_eq!(allreduce_time(&n, 32), 5.0 * n.allreduce_latency_s);
    }
}
