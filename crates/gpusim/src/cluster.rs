//! The CPU-cluster baseline: the Jefferson Lab "9q" partition.
//!
//! Section VII-C: "On a 16-node partition of the '9q' cluster we obtained
//! 255 Gflops in single precision using highly optimized SSE routines, which
//! corresponds to approximately 2 Gflops per CPU core." The GPU run on the
//! same node count sustained over 3 Tflops — "over a factor of 10 faster".

/// A CPU cluster model for the baseline comparison.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CpuClusterModel {
    /// Nodes in the partition.
    pub nodes: usize,
    /// Cores per node (dual quad-core Nehalem E5530).
    pub cores_per_node: usize,
    /// Sustained solver Gflops per core with SSE (single precision).
    pub gflops_per_core_sp: f64,
    /// Parallel efficiency at this partition size.
    pub parallel_efficiency: f64,
}

impl CpuClusterModel {
    /// The 9q 16-node partition as measured in the paper.
    pub fn jlab_9q(nodes: usize) -> Self {
        CpuClusterModel {
            nodes,
            cores_per_node: 8,
            gflops_per_core_sp: 2.0,
            parallel_efficiency: 0.996,
        }
    }

    /// Total cores.
    pub fn cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Sustained single-precision solver Gflops.
    pub fn sustained_gflops_sp(&self) -> f64 {
        self.cores() as f64 * self.gflops_per_core_sp * self.parallel_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_nodes_give_255_gflops() {
        let c = CpuClusterModel::jlab_9q(16);
        assert_eq!(c.cores(), 128);
        let g = c.sustained_gflops_sp();
        assert!((g - 255.0).abs() < 1.0, "expected ≈255 Gflops, got {g}");
    }

    #[test]
    fn scales_with_nodes() {
        let a = CpuClusterModel::jlab_9q(8).sustained_gflops_sp();
        let b = CpuClusterModel::jlab_9q(16).sustained_gflops_sp();
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}
