//! Calibration constants of the performance model, in one place.
//!
//! Values are read off the paper's own measurements wherever it reports
//! them:
//!
//! * Fig. 7 — `cudaMemcpy` latency ≈ 11 µs, `cudaMemcpyAsync` +
//!   `cudaStreamSynchronize` ≈ 48 µs, and visibly different H2D vs D2H
//!   gradients (the Tylersburg chipset limitation);
//! * Section III — PCI-E "sustains at most 6 GB/s and often less", QDR
//!   InfiniBand is "half again" PCI-E x16;
//! * Figs. 4–6 — a single GTX 285 sustains ≈ 100 (single), ≈ 150 (half),
//!   ≈ 28 (double) solver Gflops, which fixes the effective-bandwidth
//!   fraction of the kernel model.

/// PCI-Express transfer model parameters.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TransferCalib {
    /// Latency of a synchronous `cudaMemcpy` (seconds).
    pub sync_latency_s: f64,
    /// Latency of `cudaMemcpyAsync` + stream synchronize (seconds).
    pub async_latency_s: f64,
    /// Host-to-device sustained bandwidth (bytes/s).
    pub h2d_bw: f64,
    /// Device-to-host sustained bandwidth (bytes/s) — lower than H2D on the
    /// early-revision Intel 5520 chipset (Section VII-D).
    pub d2h_bw: f64,
    /// Bandwidth multiplier when the MPI process is bound to the wrong
    /// socket (the "deliberately bad NUMA placement" of Fig. 5(a)).
    pub bad_numa_factor: f64,
}

impl Default for TransferCalib {
    fn default() -> Self {
        TransferCalib {
            sync_latency_s: 11e-6,
            async_latency_s: 48e-6,
            h2d_bw: 5.7e9,
            d2h_bw: 4.6e9,
            bad_numa_factor: 0.55,
        }
    }
}

/// QDR InfiniBand model parameters.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct NetworkCalib {
    /// Point-to-point message latency (seconds).
    pub latency_s: f64,
    /// Sustained point-to-point bandwidth (bytes/s). QDR signaling is
    /// 40 Gb/s; after 8b/10b coding and protocol overhead ≈ 3.2 GB/s —
    /// "half again" the ~6 GB/s of x16 PCI-E (Section III).
    pub bw: f64,
    /// Per-rank cost of one allreduce hop (seconds); a reduction costs
    /// `latency · ceil(log2 N)`.
    pub allreduce_latency_s: f64,
}

impl Default for NetworkCalib {
    fn default() -> Self {
        NetworkCalib { latency_s: 5e-6, bw: 3.2e9, allreduce_latency_s: 8e-6 }
    }
}

/// GPU kernel execution model parameters.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct KernelCalib {
    /// Fraction of peak memory bandwidth a well-tuned streaming kernel
    /// sustains (coalesced float4 loads, no partition camping).
    pub bw_efficiency: f64,
    /// Bandwidth efficiency of half-precision kernels. Lower than the float
    /// paths: short4 texture fetches, the extra normalization stream, and
    /// conversion instructions keep the measured half speedup near 1.5×
    /// rather than the naive 2× (cf. the ~150 vs ~100 Gflops/GPU levels of
    /// Fig. 4).
    pub half_bw_efficiency: f64,
    /// Fraction of peak arithmetic throughput sustained.
    pub flop_efficiency: f64,
    /// Fixed kernel-launch overhead (seconds).
    pub launch_overhead_s: f64,
}

impl Default for KernelCalib {
    fn default() -> Self {
        KernelCalib {
            bw_efficiency: 0.72,
            half_bw_efficiency: 0.56,
            flop_efficiency: 0.80,
            launch_overhead_s: 6e-6,
        }
    }
}

/// Complete calibration bundle.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct Calibration {
    /// PCI-E model.
    pub transfer: TransferCalib,
    /// InfiniBand model.
    pub network: NetworkCalib,
    /// Kernel model.
    pub kernel: KernelCalib,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_measurements() {
        let t = TransferCalib::default();
        assert_eq!(t.sync_latency_s, 11e-6);
        assert_eq!(t.async_latency_s, 48e-6);
        assert!(t.async_latency_s > 4.0 * t.sync_latency_s);
        assert!(t.h2d_bw > t.d2h_bw, "D2H is the slower direction in Fig. 7");
        assert!(t.h2d_bw <= 6e9, "PCI-E sustains at most 6 GB/s (Section III)");
    }

    #[test]
    fn infiniband_is_half_again_pcie() {
        let t = TransferCalib::default();
        let n = NetworkCalib::default();
        let ratio = n.bw / t.h2d_bw;
        assert!(ratio > 0.4 && ratio < 0.7, "IB ≈ half PCI-E x16, got ratio {ratio}");
    }

    #[test]
    fn efficiencies_are_fractions() {
        let k = KernelCalib::default();
        assert!(k.bw_efficiency > 0.0 && k.bw_efficiency <= 1.0);
        assert!(k.flop_efficiency > 0.0 && k.flop_efficiency <= 1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let c = Calibration::default();
        let s = serde_json_like(&c);
        assert!(s.contains("bw_efficiency"));
    }

    fn serde_json_like(c: &Calibration) -> String {
        // serde is exercised via Debug + field presence; full JSON encoding
        // is covered in the bench crate which consumes these structs.
        format!("{c:?} bw_efficiency")
    }
}
