//! Device-memory accounting with real out-of-memory behavior.
//!
//! "Memory constraints on current GPU devices limit the problem sizes that
//! can be tackled" (abstract) — and in Fig. 5(a) the mixed-precision solver
//! "must store data for both the single and half precision solves, and this
//! increase in memory footprint means that at least 8 GPUs are needed".
//! This allocator makes those statements checkable: every field allocation
//! is charged against the card's RAM, and exceeding it fails exactly the
//! way a `cudaMalloc` would.

use std::collections::HashMap;

/// Error returned when an allocation exceeds device memory.
#[derive(Clone, Debug, PartialEq)]
pub struct OutOfMemory {
    /// What was being allocated.
    pub label: String,
    /// Requested size in bytes.
    pub requested: usize,
    /// Bytes still free.
    pub available: usize,
    /// Device capacity.
    pub capacity: usize,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of device memory allocating {} ({} B requested, {} B free of {} B)",
            self.label, self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Handle to a live allocation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct AllocId(u64);

/// A device-memory arena with capacity enforcement and peak tracking.
#[derive(Clone, Debug)]
pub struct DeviceMemory {
    capacity: usize,
    used: usize,
    peak: usize,
    next_id: u64,
    live: HashMap<u64, (String, usize)>,
}

impl DeviceMemory {
    /// A device with `capacity` bytes of RAM. A small driver/runtime reserve
    /// (64 MiB, roughly what the CUDA runtime held on GT200 parts) is
    /// subtracted up front.
    pub fn new(capacity: usize) -> Self {
        let reserve = 64 * 1024 * 1024;
        DeviceMemory {
            capacity: capacity.saturating_sub(reserve),
            used: 0,
            peak: 0,
            next_id: 0,
            live: HashMap::new(),
        }
    }

    /// Attempt an allocation.
    pub fn alloc(&mut self, label: &str, bytes: usize) -> Result<AllocId, OutOfMemory> {
        if self.used + bytes > self.capacity {
            return Err(OutOfMemory {
                label: label.to_string(),
                requested: bytes,
                available: self.capacity - self.used,
                capacity: self.capacity,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, (label.to_string(), bytes));
        Ok(AllocId(id))
    }

    /// Free an allocation (double frees panic — they are library bugs).
    pub fn free(&mut self, id: AllocId) {
        let (_, bytes) = self.live.remove(&id.0).expect("double free or unknown allocation");
        self.used -= bytes;
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// High-water mark.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Usable capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes free.
    pub fn available(&self) -> usize {
        self.capacity - self.used
    }

    /// Live allocations as (label, bytes), largest first — for OOM reports.
    pub fn report(&self) -> Vec<(String, usize)> {
        let mut v: Vec<_> = self.live.values().cloned().collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut m = DeviceMemory::new(200 * 1024 * 1024);
        let a = m.alloc("gauge", 50 * 1024 * 1024).unwrap();
        let b = m.alloc("spinor", 30 * 1024 * 1024).unwrap();
        assert_eq!(m.used(), 80 * 1024 * 1024);
        m.free(a);
        assert_eq!(m.used(), 30 * 1024 * 1024);
        m.free(b);
        assert_eq!(m.used(), 0);
        assert_eq!(m.peak(), 80 * 1024 * 1024);
    }

    #[test]
    fn oom_when_exceeding_capacity() {
        let mut m = DeviceMemory::new(100 * 1024 * 1024);
        let cap = m.capacity();
        let _a = m.alloc("big", cap - 10).unwrap();
        let err = m.alloc("extra", 100).unwrap_err();
        assert_eq!(err.available, 10);
        assert!(err.to_string().contains("extra"));
    }

    #[test]
    fn runtime_reserve_subtracted() {
        let m = DeviceMemory::new(2 * 1024 * 1024 * 1024);
        assert_eq!(m.capacity(), 2 * 1024 * 1024 * 1024 - 64 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut m = DeviceMemory::new(1024 * 1024 * 1024);
        let a = m.alloc("x", 1024).unwrap();
        m.free(a);
        m.free(a);
    }

    #[test]
    fn report_sorts_by_size() {
        let mut m = DeviceMemory::new(1024 * 1024 * 1024);
        m.alloc("small", 10).unwrap();
        m.alloc("large", 1000).unwrap();
        let r = m.report();
        assert_eq!(r[0].0, "large");
        assert_eq!(r[1].0, "small");
    }
}
