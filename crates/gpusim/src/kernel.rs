//! Kernel execution-time model: launch overhead + the slower of the
//! bandwidth and arithmetic roofs.
//!
//! The Wilson-clover matvec is strongly bandwidth bound in single and half
//! precision (1.24 flop/byte against the GTX 285's ≈ 6.7, Section V-C); in
//! double precision the 88-Gflop DP peak also matters — which is exactly why
//! "uniform double precision exhibits the best strong scaling of all"
//! (Fig. 6): its kernels are longer relative to the fixed communication
//! cost.

use crate::calib::KernelCalib;
use crate::cards::GpuSpec;

/// A kernel workload description.
#[derive(Copy, Clone, Debug)]
pub struct KernelWork {
    /// Bytes read + written from device memory.
    pub bytes: u64,
    /// Floating-point operations (the *executed* count, including any
    /// reconstruction arithmetic).
    pub flops: u64,
    /// Storage width in bytes (selects the arithmetic peak).
    pub storage_bytes: usize,
}

/// Execution time of one kernel launch.
pub fn kernel_time(calib: &KernelCalib, gpu: &GpuSpec, work: &KernelWork) -> f64 {
    let eff = if work.storage_bytes == 2 { calib.half_bw_efficiency } else { calib.bw_efficiency };
    let bw = gpu.bandwidth_bytes() * eff;
    let t_mem = work.bytes as f64 / bw;
    let peak = gpu.peak_flops(work.storage_bytes);
    let t_flop =
        if peak > 0.0 { work.flops as f64 / (peak * calib.flop_efficiency) } else { f64::INFINITY };
    calib.launch_overhead_s + t_mem.max(t_flop)
}

/// Sustained effective Gflops of a kernel given its *effective* flop count
/// (which may be smaller than the executed one — gauge-row reconstruction is
/// excluded from effective flops, Section VII-A).
pub fn effective_gflops(effective_flops: u64, seconds: f64) -> f64 {
    effective_flops as f64 / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calib::KernelCalib;
    use crate::cards::gtx285;

    #[test]
    fn single_precision_matvec_is_bandwidth_bound() {
        let gpu = gtx285();
        let k = KernelCalib::default();
        // One 24^3x32 half-volume of fused matvec work in single precision.
        let sites = 24 * 24 * 24 * 32 / 2u64;
        let work = KernelWork { bytes: sites * 2976, flops: sites * 4500, storage_bytes: 4 };
        let t = kernel_time(&k, &gpu, &work);
        let t_mem = work.bytes as f64 / (gpu.bandwidth_bytes() * k.bw_efficiency);
        assert!((t - k.launch_overhead_s - t_mem).abs() < 1e-12, "memory roof must bind");
    }

    #[test]
    fn double_precision_hits_the_flop_roof() {
        let gpu = gtx285();
        let k = KernelCalib::default();
        let sites = 24 * 24 * 24 * 32 / 2u64;
        // Executed flops (incl. reconstruction) at double storage width.
        let work = KernelWork { bytes: sites * 2976 * 2, flops: sites * 4500, storage_bytes: 8 };
        let t = kernel_time(&k, &gpu, &work);
        let t_flop = work.flops as f64 / (gpu.peak_flops(8) * k.flop_efficiency);
        let t_mem = work.bytes as f64 / (gpu.bandwidth_bytes() * k.bw_efficiency);
        assert!(t_flop > t_mem, "on GTX 285 double matvec is flop bound");
        assert!((t - k.launch_overhead_s - t_flop).abs() < 1e-12);
    }

    #[test]
    fn no_dp_hardware_cannot_run_doubles() {
        let cards = crate::cards::card_table();
        let g80 = &cards[0];
        let k = KernelCalib::default();
        let work = KernelWork { bytes: 1000, flops: 1000, storage_bytes: 8 };
        assert!(kernel_time(&k, g80, &work).is_infinite());
    }

    #[test]
    fn single_gpu_solver_rate_lands_near_paper() {
        // Sanity-check the calibration: the fused single-precision matvec on
        // a GTX 285 should sustain roughly 130-150 effective Gflops, so the
        // full solver (with blas overhead) lands near the ~100 Gflops/GPU
        // the figures imply.
        let gpu = gtx285();
        let k = KernelCalib::default();
        let sites = 32u64.pow(4) / 2;
        let work = KernelWork { bytes: sites * 2976, flops: sites * 4500, storage_bytes: 4 };
        let t = kernel_time(&k, &gpu, &work);
        let g = effective_gflops(sites * 3696, t);
        assert!(g > 110.0 && g < 160.0, "matvec effective Gflops {g}");
    }

    #[test]
    fn half_precision_roughly_one_point_five_times_single() {
        let gpu = gtx285();
        let k = KernelCalib::default();
        let sites = 32u64.pow(4) / 2;
        let w_single = KernelWork { bytes: sites * 2976, flops: sites * 4500, storage_bytes: 4 };
        // Half traffic: 2-byte reals plus f32 norms (≈ 1/24 of spinor reals).
        let w_half =
            KernelWork { bytes: sites * (2976 / 2 + 60), flops: sites * 4500, storage_bytes: 2 };
        let t_s = kernel_time(&k, &gpu, &w_single);
        let t_h = kernel_time(&k, &gpu, &w_half);
        // Calibrated to the ~1.5x advantage the paper's figures imply
        // (≈150 vs ≈100 Gflops/GPU in Fig. 4).
        let ratio = t_s / t_h;
        assert!(ratio > 1.3 && ratio < 1.7, "half speedup {ratio}");
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let gpu = gtx285();
        let k = KernelCalib::default();
        let work = KernelWork { bytes: 100, flops: 100, storage_bytes: 4 };
        let t = kernel_time(&k, &gpu, &work);
        assert!(t < k.launch_overhead_s * 1.01);
    }
}
