//! # quda-gpusim
//!
//! The hardware substitute (see DESIGN.md §2): a simulated GPU cluster node
//! calibrated to the paper's "9g" testbed.
//!
//! * [`cards`] — the Table I card catalog (GTX 285 is the testbed);
//! * [`calib`] — every model constant, traceable to a paper measurement;
//! * [`memory`] — device-memory accounting with real OOM failures;
//! * [`transfer`] — the PCI-E (`cudaMemcpy` vs `cudaMemcpyAsync`, H2D vs
//!   D2H, NUMA) and InfiniBand time models (Fig. 7);
//! * [`kernel`] — launch overhead + bandwidth/arithmetic roofline;
//! * [`stream`] — CUDA-stream-like discrete-event timelines for overlap
//!   analysis (Section VI-D2);
//! * [`autotune`] — the launch-parameter auto-tuner (Section V-E);
//! * [`camping`] — the partition-camping bandwidth model (Section V-B);
//! * [`cluster`] — the "9q" CPU baseline (255 Gflops on 128 cores).

#![warn(missing_docs)]

pub mod autotune;
pub mod calib;
pub mod camping;
pub mod cards;
pub mod cluster;
pub mod kernel;
pub mod memory;
pub mod stream;
pub mod transfer;

pub use autotune::{AutoTuner, KernelProfile, LaunchConfig};
pub use calib::{Calibration, KernelCalib, NetworkCalib, TransferCalib};
pub use camping::{camping_factor, camps, minimal_decamping_pad, PARTITIONS, PARTITION_WIDTH};
pub use cards::{card_table, gtx285, GpuSpec};
pub use cluster::CpuClusterModel;
pub use kernel::{effective_gflops, kernel_time, KernelWork};
pub use memory::{AllocId, DeviceMemory, OutOfMemory};
pub use stream::{EventId, Timeline};
pub use transfer::{
    allreduce_time, latency_microbenchmark, network_time, pcie_time, CopyKind, Direction,
    LatencyRow, NumaPlacement,
};
