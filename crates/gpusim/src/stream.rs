//! A minimal discrete-event timeline with CUDA-like streams.
//!
//! The overlapped communication strategy of Section VI-D2 uses "three CUDA
//! streams: one to execute the kernel on the internal volume, one for the
//! face send backward / receive forward, and one for the face send forward /
//! receive backward". This module provides exactly the machinery needed to
//! reason about such schedules: operations are enqueued on streams, each
//! starts when both its stream and its dependencies are ready, and the
//! timeline's makespan is the simulated elapsed time.

/// Identifier of an enqueued operation (used as a dependency handle).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct EventId(usize);

/// A recorded operation, for inspection and debugging.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// Label for traces.
    pub label: String,
    /// Stream the op ran on.
    pub stream: usize,
    /// Start time (s).
    pub start: f64,
    /// End time (s).
    pub end: f64,
}

/// A simulated multi-stream device timeline.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    stream_ready: Vec<f64>,
    ops: Vec<OpRecord>,
}

impl Timeline {
    /// Create a timeline with `streams` streams, all idle at t = 0.
    pub fn new(streams: usize) -> Self {
        Timeline { stream_ready: vec![0.0; streams], ops: Vec::new() }
    }

    /// Enqueue an operation of `duration` seconds on `stream`, starting no
    /// earlier than every dependency's completion. Returns its event id.
    pub fn enqueue(
        &mut self,
        stream: usize,
        label: &str,
        duration: f64,
        deps: &[EventId],
    ) -> EventId {
        assert!(duration >= 0.0, "negative duration");
        let dep_ready = deps.iter().map(|d| self.ops[d.0].end).fold(0.0f64, f64::max);
        let start = self.stream_ready[stream].max(dep_ready);
        let end = start + duration;
        self.stream_ready[stream] = end;
        self.ops.push(OpRecord { label: label.to_string(), stream, start, end });
        EventId(self.ops.len() - 1)
    }

    /// Completion time of an event.
    pub fn end_of(&self, e: EventId) -> f64 {
        self.ops[e.0].end
    }

    /// Advance a stream to at least `t` (models an external wait, e.g. an
    /// MPI receive completing on the host).
    pub fn wait_until(&mut self, stream: usize, t: f64) {
        if self.stream_ready[stream] < t {
            self.stream_ready[stream] = t;
        }
    }

    /// Total makespan: when the last operation finishes.
    pub fn makespan(&self) -> f64 {
        self.ops.iter().map(|o| o.end).fold(0.0, f64::max)
    }

    /// All recorded operations (chronological by insertion).
    pub fn ops(&self) -> &[OpRecord] {
        &self.ops
    }

    /// Busy time of one stream (sum of op durations on it).
    pub fn busy(&self, stream: usize) -> f64 {
        self.ops.iter().filter(|o| o.stream == stream).map(|o| o.end - o.start).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_ops_on_one_stream_accumulate() {
        let mut t = Timeline::new(1);
        t.enqueue(0, "a", 1.0, &[]);
        t.enqueue(0, "b", 2.0, &[]);
        assert_eq!(t.makespan(), 3.0);
    }

    #[test]
    fn independent_streams_overlap() {
        let mut t = Timeline::new(2);
        t.enqueue(0, "kernel", 5.0, &[]);
        t.enqueue(1, "copy", 3.0, &[]);
        assert_eq!(t.makespan(), 5.0);
        assert_eq!(t.busy(0), 5.0);
        assert_eq!(t.busy(1), 3.0);
    }

    #[test]
    fn dependencies_serialize_across_streams() {
        let mut t = Timeline::new(3);
        let gather = t.enqueue(1, "d2h", 2.0, &[]);
        let send = t.enqueue(1, "mpi", 1.5, &[gather]);
        let h2d = t.enqueue(1, "h2d", 2.0, &[send]);
        let interior = t.enqueue(0, "interior", 4.0, &[]);
        let faces = t.enqueue(0, "faces", 1.0, &[h2d, interior]);
        // Faces start at max(interior end = 4.0, h2d end = 5.5) = 5.5.
        assert_eq!(t.end_of(faces), 6.5);
        assert_eq!(t.makespan(), 6.5);
    }

    #[test]
    fn overlap_beats_serialization() {
        // The shape of Fig. 5(a): with a large interior, the comm chain
        // hides entirely.
        let interior = 10.0;
        let comm_chain = 6.0;
        let faces = 1.0;
        // No overlap: everything serial.
        let mut no = Timeline::new(1);
        no.enqueue(0, "comm", comm_chain, &[]);
        no.enqueue(0, "all", interior + faces, &[]);
        // Overlap: interior ∥ comm.
        let mut ov = Timeline::new(2);
        let k = ov.enqueue(0, "interior", interior, &[]);
        let c = ov.enqueue(1, "comm", comm_chain, &[]);
        ov.enqueue(0, "faces", faces, &[k, c]);
        assert!(ov.makespan() < no.makespan());
        assert_eq!(ov.makespan(), 11.0);
        assert_eq!(no.makespan(), 17.0);
    }

    #[test]
    fn wait_until_models_external_events() {
        let mut t = Timeline::new(1);
        t.wait_until(0, 3.0);
        let e = t.enqueue(0, "after-wait", 1.0, &[]);
        assert_eq!(t.end_of(e), 4.0);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_duration_rejected() {
        let mut t = Timeline::new(1);
        t.enqueue(0, "bad", -1.0, &[]);
    }
}
