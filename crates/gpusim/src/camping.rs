//! Partition-camping model (Sections III and V-B).
//!
//! GT200 device memory is split into 8 partitions of 256 bytes, assigned
//! round-robin: "if memory is accessed with a stride that results in
//! traffic to only a subset of the partitions, performance will be lower
//! than if all partitions were stressed equally". In the blocked field
//! layout of Fig. 2, the streaming kernels walk several *blocks* of one
//! field concurrently (one per short-vector slot of the internal index), so
//! what matters is how the block *start addresses* distribute over
//! partitions: when the block size in bytes is a multiple of
//! `partitions × width`, every block begins in the same partition and the
//! concurrent streams camp on it.
//!
//! QUDA's fix is to pad each block by one spatial volume — chosen both to
//! break the alignment *for the volumes it affected* and because the pad
//! doubles as gauge ghost storage (Section VI-B). This module provides the
//! model, the diagnosis, and a pad recommender; the `ablation_padding`
//! bench binary applies it to concrete volumes.

/// Number of memory partitions (GTX 285: 8 × 64-bit channels).
pub const PARTITIONS: usize = 8;
/// Bytes per partition unit (256-byte round-robin granularity).
pub const PARTITION_WIDTH: usize = 256;

/// Fraction of peak bandwidth sustained by `n_blocks` concurrent streams
/// whose block starts are `block_bytes` apart: the number of distinct
/// partitions the starts land in, over the partition count (floored at
/// `1/PARTITIONS`, the fully camped case).
pub fn camping_factor(block_bytes: usize, n_blocks: usize) -> f64 {
    if n_blocks <= 1 {
        return 1.0;
    }
    let mut hit = [false; PARTITIONS];
    for k in 0..n_blocks {
        let partition = (k * block_bytes / PARTITION_WIDTH) % PARTITIONS;
        hit[partition] = true;
    }
    let distinct = hit.iter().filter(|&&h| h).count();
    // With fewer concurrent streams than partitions, full speed only needs
    // every stream on its own partition.
    let needed = n_blocks.min(PARTITIONS);
    (distinct as f64 / needed as f64).max(1.0 / PARTITIONS as f64)
}

/// Whether a layout of `sites` sites (each contributing `n_vec` reals of
/// `storage_bytes` to a block) camps when padded by `pad` sites.
pub fn camps(
    sites: usize,
    pad: usize,
    n_vec: usize,
    storage_bytes: usize,
    n_blocks: usize,
) -> bool {
    let block_bytes = (sites + pad) * n_vec * storage_bytes;
    camping_factor(block_bytes, n_blocks) < 0.99
}

/// Smallest pad (in sites) that removes camping for the given shape, tried
/// up to `max_pad`. Returns `None` when no pad in range helps (or none is
/// needed — check with [`camps`] first).
pub fn minimal_decamping_pad(
    sites: usize,
    n_vec: usize,
    storage_bytes: usize,
    n_blocks: usize,
    max_pad: usize,
) -> Option<usize> {
    (0..=max_pad).find(|&pad| !camps(sites, pad, n_vec, storage_bytes, n_blocks))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_blocks_camp_fully() {
        // Block size a multiple of 2048 bytes: every block starts in
        // partition 0.
        let f = camping_factor(2048 * 17, 6);
        assert!(f <= 1.0 / 6.0 + 1e-12, "factor {f} should be fully camped");
    }

    #[test]
    fn odd_alignment_spreads_partitions() {
        // Block size ≡ 256 (mod 2048): starts walk all partitions.
        let f = camping_factor(2048 * 9 + 256, 8);
        assert_eq!(f, 1.0);
    }

    #[test]
    fn single_block_never_camps() {
        assert_eq!(camping_factor(2048, 1), 1.0);
    }

    #[test]
    fn pathological_volume_is_fixed_by_a_small_pad() {
        // A single-parity volume whose unpadded spinor block is
        // 2048-aligned: 16^3x32 / 2 = 65536 sites; block bytes =
        // 65536·4·4 = 1 MiB — fully camped.
        let sites = 16 * 16 * 16 * 32 / 2;
        assert!(camps(sites, 0, 4, 4, 6));
        let pad = minimal_decamping_pad(sites, 4, 4, 6, 20_000).expect("pad exists");
        assert!(pad > 0);
        assert!(!camps(sites, pad, 4, 4, 6));
        // One half spatial volume (the paper's choice) also decamps it:
        // 16^3/2 = 2048 sites -> 32 KiB ≡ 0 mod 2048... check honestly:
        let half_vs = 16 * 16 * 16 / 2;
        let paper_choice_ok = !camps(sites, half_vs, 4, 4, 6);
        // For this volume the Vs pad is itself 2048-aligned, so it does NOT
        // decamp under this model — the paper notes camping affected only
        // "certain lattice volumes", and the Vs pad primarily doubles as
        // ghost storage (Section VI-B). Document the distinction:
        assert!(!paper_choice_ok);
        assert_eq!(pad % 2, 0);
    }

    #[test]
    fn double_precision_alignment_differs_from_single() {
        let sites = 24 * 24 * 24 * 32 / 2;
        let single = camping_factor(sites * 4 * 4, 6);
        let double = camping_factor(sites * 2 * 8, 12);
        // Same (2048-aligned) byte count per block: both fully camp.
        assert!(single < 0.2 && double < 0.2, "{single} {double}");
    }

    #[test]
    fn factor_bounded() {
        for b in (256..8192).step_by(256) {
            for n in 1..12 {
                let f = camping_factor(b, n);
                assert!((1.0 / PARTITIONS as f64..=1.0).contains(&f));
            }
        }
    }
}
