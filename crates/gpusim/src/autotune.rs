//! Launch-parameter auto-tuning (Section V-E).
//!
//! QUDA tries "all possible combinations of parameters ... for each kernel,
//! and the optimal values are written out to a header file". We reproduce
//! the mechanism against the simulated device: a simple occupancy model maps
//! (block size, register pressure) to a sustained-bandwidth fraction, every
//! candidate is "timed", and the winner is cached per kernel. The exported
//! table plays the role of the generated header.

use crate::cards::GpuSpec;
use std::collections::HashMap;

/// Candidate thread-block sizes (multiples of 64, as required by the
/// hardware described in Section III).
pub const BLOCK_CANDIDATES: [u32; 5] = [64, 128, 192, 256, 512];

/// A tunable kernel's resource profile.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct KernelProfile {
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Shared memory per thread (bytes).
    pub shared_per_thread: u32,
}

/// Chosen launch configuration.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LaunchConfig {
    /// Threads per block.
    pub block: u32,
    /// Modeled efficiency (fraction of peak bandwidth achieved).
    pub efficiency: f64,
}

/// Occupancy-driven efficiency model for one candidate block size.
///
/// GT200: 16384 registers and 16 KiB shared memory per multiprocessor, at
/// most 1024 resident threads. Efficiency rises with occupancy (latency
/// hiding) but dips when a block size cannot tile the SM's thread budget.
pub fn model_efficiency(gpu: &GpuSpec, profile: &KernelProfile, block: u32) -> f64 {
    let regs_per_sm = 16384u32;
    let shared_per_sm = 16 * 1024u32;
    let max_threads: u32 = if gpu.cores >= 400 { 1536 } else { 1024 };
    let blocks_by_regs = if profile.regs_per_thread > 0 {
        regs_per_sm / (profile.regs_per_thread * block)
    } else {
        u32::MAX
    };
    let blocks_by_shared = if profile.shared_per_thread > 0 {
        shared_per_sm / (profile.shared_per_thread * block)
    } else {
        u32::MAX
    };
    let blocks_by_threads = max_threads / block;
    let resident_blocks = blocks_by_regs.min(blocks_by_shared).min(blocks_by_threads);
    if resident_blocks == 0 {
        return 0.0;
    }
    let occupancy = (resident_blocks * block) as f64 / max_threads as f64;
    // Latency hiding saturates: efficiency = base + gain·min(1, occ/0.5);
    // larger blocks additionally amortize per-block scheduling overhead,
    // so the optimum balances occupancy against block granularity — the
    // trade-off the exhaustive sweep of Section V-E resolves per kernel.
    let hide = (occupancy / 0.5).min(1.0);
    let sched = 1.0 - 8.0 / block as f64;
    (0.35 + 0.65 * hide) * sched
}

/// The auto-tuner: caches the best launch configuration per kernel name.
#[derive(Clone, Debug, Default)]
pub struct AutoTuner {
    cache: HashMap<String, LaunchConfig>,
}

impl AutoTuner {
    /// Create an empty tuner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tune (or fetch the cached tuning for) a kernel.
    pub fn tune(&mut self, name: &str, gpu: &GpuSpec, profile: &KernelProfile) -> LaunchConfig {
        if let Some(cfg) = self.cache.get(name) {
            return *cfg;
        }
        let mut best = LaunchConfig { block: BLOCK_CANDIDATES[0], efficiency: -1.0 };
        for &block in &BLOCK_CANDIDATES {
            let eff = model_efficiency(gpu, profile, block);
            if eff > best.efficiency {
                best = LaunchConfig { block, efficiency: eff };
            }
        }
        self.cache.insert(name.to_string(), best);
        best
    }

    /// Export the tuned table as the text of a generated header — the
    /// moral equivalent of QUDA's `blas_param.h`.
    pub fn export_header(&self) -> String {
        let mut lines: Vec<String> = self
            .cache
            .iter()
            .map(|(k, v)| {
                format!("#define {}_BLOCK {} // eff {:.2}", k.to_uppercase(), v.block, v.efficiency)
            })
            .collect();
        lines.sort();
        lines.join("\n")
    }

    /// Number of tuned kernels.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether nothing has been tuned yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cards::gtx285;

    fn light_kernel() -> KernelProfile {
        KernelProfile { regs_per_thread: 16, shared_per_thread: 0 }
    }

    fn heavy_kernel() -> KernelProfile {
        // The Wilson-clover matvec is register hungry.
        KernelProfile { regs_per_thread: 60, shared_per_thread: 16 }
    }

    #[test]
    fn tuner_picks_best_candidate() {
        let gpu = gtx285();
        let mut tuner = AutoTuner::new();
        let cfg = tuner.tune("dslash_single", &gpu, &heavy_kernel());
        // Exhaustiveness: no candidate beats the winner.
        for &b in &BLOCK_CANDIDATES {
            assert!(model_efficiency(&gpu, &heavy_kernel(), b) <= cfg.efficiency + 1e-12);
        }
    }

    #[test]
    fn heavy_kernels_prefer_smaller_blocks() {
        let gpu = gtx285();
        // With 60 regs/thread, a 512-thread block needs 30720 registers —
        // more than the SM has — so big blocks are infeasible.
        assert_eq!(model_efficiency(&gpu, &heavy_kernel(), 512), 0.0);
        assert!(model_efficiency(&gpu, &heavy_kernel(), 128) > 0.0);
    }

    #[test]
    fn light_kernels_reach_full_efficiency() {
        let gpu = gtx285();
        let mut tuner = AutoTuner::new();
        let cfg = tuner.tune("axpy_single", &gpu, &light_kernel());
        assert!(
            cfg.efficiency >= 0.95,
            "light streaming kernel should saturate, got {}",
            cfg.efficiency
        );
        // And it should pick a large block (scheduling amortization wins
        // when registers are no constraint).
        assert!(cfg.block >= 256, "expected a large block, got {}", cfg.block);
    }

    #[test]
    fn cache_returns_same_config() {
        let gpu = gtx285();
        let mut tuner = AutoTuner::new();
        let a = tuner.tune("k", &gpu, &heavy_kernel());
        let b = tuner.tune("k", &gpu, &light_kernel()); // ignored: cached
        assert_eq!(a, b);
        assert_eq!(tuner.len(), 1);
    }

    #[test]
    fn header_export_contains_tuned_kernels() {
        let gpu = gtx285();
        let mut tuner = AutoTuner::new();
        tuner.tune("dslash_half", &gpu, &heavy_kernel());
        tuner.tune("caxpy_half", &gpu, &light_kernel());
        let header = tuner.export_header();
        assert!(header.contains("DSLASH_HALF_BLOCK"));
        assert!(header.contains("CAXPY_HALF_BLOCK"));
    }
}
