//! The NVIDIA card catalog of Table I.

/// Specifications of one GPU model (Table I of the paper).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// CUDA cores.
    pub cores: u32,
    /// Device-memory bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Peak single-precision Gflops.
    pub gflops_sp: f64,
    /// Peak double-precision Gflops (None for pre-GT200 parts).
    pub gflops_dp: Option<f64>,
    /// Device memory in GiB (maximum configuration).
    pub ram_gib: f64,
    /// Independent PCI-E copy engines: 1 on G80/GT200; 2 on Fermi, which
    /// "allows for bidirectional transfers over the PCI-E bus"
    /// (Section VI-D2, footnote 4).
    pub copy_engines: u32,
}

impl GpuSpec {
    /// Bandwidth in bytes/second.
    pub fn bandwidth_bytes(&self) -> f64 {
        self.bandwidth_gbs * 1e9
    }

    /// Peak flops/second at a storage width (half precision computes at
    /// single-precision rate; the win is bandwidth).
    pub fn peak_flops(&self, storage_bytes: usize) -> f64 {
        match storage_bytes {
            8 => self.gflops_dp.unwrap_or(0.0) * 1e9,
            _ => self.gflops_sp * 1e9,
        }
    }

    /// Device memory in bytes.
    pub fn ram_bytes(&self) -> usize {
        (self.ram_gib * 1024.0 * 1024.0 * 1024.0) as usize
    }
}

/// Table I, row by row.
pub fn card_table() -> Vec<GpuSpec> {
    vec![
        GpuSpec {
            name: "GeForce 8800 GTX",
            cores: 128,
            bandwidth_gbs: 86.4,
            gflops_sp: 518.0,
            gflops_dp: None,
            ram_gib: 0.75,
            copy_engines: 1,
        },
        GpuSpec {
            name: "Tesla C870",
            cores: 128,
            bandwidth_gbs: 76.8,
            gflops_sp: 518.0,
            gflops_dp: None,
            ram_gib: 1.5,
            copy_engines: 1,
        },
        GpuSpec {
            name: "GeForce GTX 285",
            cores: 240,
            bandwidth_gbs: 159.0,
            gflops_sp: 1062.0,
            gflops_dp: Some(88.0),
            ram_gib: 2.0,
            copy_engines: 1,
        },
        GpuSpec {
            name: "Tesla C1060",
            cores: 240,
            bandwidth_gbs: 102.0,
            gflops_sp: 933.0,
            gflops_dp: Some(78.0),
            ram_gib: 4.0,
            copy_engines: 1,
        },
        GpuSpec {
            name: "GeForce GTX 480",
            cores: 480,
            bandwidth_gbs: 177.0,
            gflops_sp: 1345.0,
            gflops_dp: Some(168.0),
            ram_gib: 1.5,
            copy_engines: 2,
        },
        GpuSpec {
            name: "Tesla C2050",
            cores: 448,
            bandwidth_gbs: 144.0,
            gflops_sp: 1030.0,
            gflops_dp: Some(515.0),
            ram_gib: 3.0,
            copy_engines: 2,
        },
    ]
}

/// The test-bed card of the paper's "9g" cluster: GeForce GTX 285 with 2 GiB.
pub fn gtx285() -> GpuSpec {
    card_table().into_iter().find(|c| c.name == "GeForce GTX 285").unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_six_cards() {
        assert_eq!(card_table().len(), 6);
    }

    #[test]
    fn gtx285_matches_table_i() {
        let c = gtx285();
        assert_eq!(c.cores, 240);
        assert_eq!(c.bandwidth_gbs, 159.0);
        assert_eq!(c.gflops_sp, 1062.0);
        assert_eq!(c.gflops_dp, Some(88.0));
        assert_eq!(c.ram_gib, 2.0);
    }

    #[test]
    fn peak_flops_by_precision() {
        let c = gtx285();
        assert_eq!(c.peak_flops(4), 1062.0e9);
        assert_eq!(c.peak_flops(2), 1062.0e9); // half computes at SP rate
        assert_eq!(c.peak_flops(8), 88.0e9);
        // Pre-GT200 cards have no DP.
        let old = &card_table()[0];
        assert_eq!(old.peak_flops(8), 0.0);
    }

    #[test]
    fn fermi_cards_have_dual_copy_engines() {
        for c in card_table() {
            let is_fermi = c.name.contains("480") || c.name.contains("2050");
            assert_eq!(c.copy_engines, if is_fermi { 2 } else { 1 }, "{}", c.name);
        }
    }

    #[test]
    fn ram_bytes() {
        assert_eq!(gtx285().ram_bytes(), 2 * 1024 * 1024 * 1024);
    }
}
