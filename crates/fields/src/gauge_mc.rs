//! Pure-gauge Monte Carlo: heatbath + overrelaxation for the Wilson
//! plaquette action.
//!
//! Section VIII lists gauge generation as future work: "Parallelization
//! onto multiple GPUs may make gauge generation on GPU clusters an
//! interesting and desirable possibility." This module implements the
//! algorithmic core — Cabibbo-Marinari pseudo-heatbath over the three
//! SU(2) subgroups with Kennedy-Pendleton sampling, plus microcanonical
//! overrelaxation — so the library can *produce* thermalized
//! configurations rather than only analyze them. (The long-chain Monte
//! Carlo of Section I is exactly repeated application of these sweeps.)

use crate::host::GaugeConfig;
use quda_lattice::geometry::{Coord, LatticeDims};
use quda_math::complex::C64;
use quda_math::su3::Su3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The sum of the six staples around link `U_μ(x)`: the quantity `A` such
/// that the Wilson action's link dependence is `−(β/3) Re Tr(U_μ(x) A)`.
pub fn staple_sum(cfg: &GaugeConfig, c: Coord, mu: usize) -> Su3<f64> {
    let d = &cfg.dims;
    let fwd = |c: Coord, dir: usize| d.neighbor(c, dir, true).0;
    let bwd = |c: Coord, dir: usize| d.neighbor(c, dir, false).0;
    let mut acc = Su3::zero();
    let c_mu = fwd(c, mu);
    for nu in 0..4 {
        if nu == mu {
            continue;
        }
        // Forward staple: U_ν(x+μ) U_μ†(x+ν) U_ν†(x).
        let up =
            *cfg.link(c_mu, nu) * cfg.link(fwd(c, nu), mu).adjoint() * cfg.link(c, nu).adjoint();
        // Backward staple: U_ν†(x+μ−ν) U_μ†(x−ν) U_ν(x−ν).
        let c_bnu = bwd(c, nu);
        let down = cfg.link(bwd(c_mu, nu), nu).adjoint()
            * cfg.link(c_bnu, mu).adjoint()
            * *cfg.link(c_bnu, nu);
        acc = acc + up + down;
    }
    acc
}

/// The three SU(2) subgroups of SU(3) used by Cabibbo-Marinari.
const SUBGROUPS: [(usize, usize); 3] = [(0, 1), (0, 2), (1, 2)];

/// Extract the SU(2)-like part of the `(i, j)` submatrix of `m` as a
/// quaternion `(a0, a1, a2, a3)` with `sub = a0 + i aₖ σₖ` — the standard
/// projection `½(v − v† + Tr(v†) 1)` restricted to the subgroup.
fn project_su2(m: &Su3<f64>, i: usize, j: usize) -> [f64; 4] {
    let v00 = m.m[i][i];
    let v01 = m.m[i][j];
    let v10 = m.m[j][i];
    let v11 = m.m[j][j];
    [
        0.5 * (v00.re + v11.re),
        0.5 * (v01.im + v10.im),
        0.5 * (v01.re - v10.re),
        0.5 * (v00.im - v11.im),
    ]
}

/// Embed a quaternion SU(2) element into the `(i, j)` subgroup of SU(3).
fn embed_su2(q: [f64; 4], i: usize, j: usize) -> Su3<f64> {
    let mut g = Su3::identity();
    g.m[i][i] = C64::new(q[0], q[3]);
    g.m[i][j] = C64::new(q[2], q[1]);
    g.m[j][i] = C64::new(-q[2], q[1]);
    g.m[j][j] = C64::new(q[0], -q[3]);
    g
}

fn quat_norm(q: [f64; 4]) -> f64 {
    (q[0] * q[0] + q[1] * q[1] + q[2] * q[2] + q[3] * q[3]).sqrt()
}

fn quat_conj(q: [f64; 4]) -> [f64; 4] {
    [q[0], -q[1], -q[2], -q[3]]
}

fn quat_mul(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
    [
        a[0] * b[0] - a[1] * b[1] - a[2] * b[2] - a[3] * b[3],
        a[0] * b[1] + a[1] * b[0] + a[2] * b[3] - a[3] * b[2],
        a[0] * b[2] - a[1] * b[3] + a[2] * b[0] + a[3] * b[1],
        a[0] * b[3] + a[1] * b[2] - a[2] * b[1] + a[3] * b[0],
    ]
}

/// Kennedy-Pendleton sampling of `a0` with weight
/// `√(1−a0²) exp(β_eff a0)`, returning a random SU(2) element distributed
/// for the heatbath with effective coupling `k = β_eff`.
fn kp_sample(rng: &mut SmallRng, k: f64) -> [f64; 4] {
    // Sample a0.
    let mut a0;
    loop {
        let r1: f64 = 1.0 - rng.gen::<f64>();
        let r2: f64 = 1.0 - rng.gen::<f64>();
        let r3: f64 = 1.0 - rng.gen::<f64>();
        let lambda2 =
            -(r1.ln() + (2.0 * std::f64::consts::PI * r2).cos().powi(2) * r3.ln()) / (2.0 * k);
        a0 = 1.0 - 2.0 * lambda2;
        let accept: f64 = rng.gen();
        if accept * accept <= 1.0 - lambda2 && a0.abs() <= 1.0 {
            break;
        }
    }
    // Uniform direction on the 2-sphere for the vector part.
    let norm = (1.0 - a0 * a0).max(0.0).sqrt();
    let cos_theta: f64 = rng.gen_range(-1.0..=1.0);
    let sin_theta = (1.0 - cos_theta * cos_theta).sqrt();
    let phi: f64 = rng.gen_range(0.0..2.0 * std::f64::consts::PI);
    [a0, norm * sin_theta * phi.cos(), norm * sin_theta * phi.sin(), norm * cos_theta]
}

/// One Cabibbo-Marinari heatbath update of a single link.
fn heatbath_link(rng: &mut SmallRng, u: &mut Su3<f64>, staple: &Su3<f64>, beta: f64) {
    for &(i, j) in &SUBGROUPS {
        let w = *u * *staple;
        let v = project_su2(&w, i, j);
        let vnorm = quat_norm(v);
        if vnorm < 1e-12 {
            continue;
        }
        // Action restricted to the subgroup: Re Tr(g v) with k = (β/3)·‖v‖
        // (the SU(2) trace is 2a0, absorbed into the KP weight).
        let k = 2.0 * beta / 3.0 * vnorm;
        let new = kp_sample(rng, k);
        // g = new · (v/‖v‖)⁻¹ so that g v ∝ new.
        let vinv = quat_conj([v[0] / vnorm, v[1] / vnorm, v[2] / vnorm, v[3] / vnorm]);
        let g = quat_mul(new, vinv);
        *u = embed_su2(g, i, j) * *u;
    }
    *u = u.reunitarize();
}

/// One microcanonical overrelaxation update of a single link (action
/// preserving per subgroup; decorrelates without rejections).
fn overrelax_link(u: &mut Su3<f64>, staple: &Su3<f64>) {
    for &(i, j) in &SUBGROUPS {
        let w = *u * *staple;
        let v = project_su2(&w, i, j);
        let vnorm = quat_norm(v);
        if vnorm < 1e-12 {
            continue;
        }
        let vu = [v[0] / vnorm, v[1] / vnorm, v[2] / vnorm, v[3] / vnorm];
        // g = v̄ u†... the reflection g = v̄² within the subgroup: the
        // update u → v̄ v̄ u flips the subgroup component about the staple
        // direction while Re Tr(g v) is conserved.
        let g = quat_mul(quat_conj(vu), quat_conj(vu));
        *u = embed_su2(g, i, j) * *u;
    }
    *u = u.reunitarize();
}

/// A pure-gauge Monte Carlo driver for the Wilson action at coupling `β`.
pub struct GaugeMonteCarlo {
    /// Gauge coupling β = 6/g².
    pub beta: f64,
    rng: SmallRng,
}

impl GaugeMonteCarlo {
    /// Create a sampler.
    pub fn new(beta: f64, seed: u64) -> Self {
        GaugeMonteCarlo { beta, rng: SmallRng::seed_from_u64(seed) }
    }

    /// One heatbath sweep over every link.
    pub fn heatbath_sweep(&mut self, cfg: &mut GaugeConfig) {
        for c in cfg.dims.coords().collect::<Vec<_>>() {
            for mu in 0..4 {
                let staple = staple_sum(cfg, c, mu);
                let mut u = *cfg.link(c, mu);
                heatbath_link(&mut self.rng, &mut u, &staple, self.beta);
                *cfg.link_mut(c, mu) = u;
            }
        }
    }

    /// One overrelaxation sweep over every link.
    pub fn overrelax_sweep(&mut self, cfg: &mut GaugeConfig) {
        for c in cfg.dims.coords().collect::<Vec<_>>() {
            for mu in 0..4 {
                let staple = staple_sum(cfg, c, mu);
                let mut u = *cfg.link(c, mu);
                overrelax_link(&mut u, &staple);
                *cfg.link_mut(c, mu) = u;
            }
        }
    }

    /// Generate a thermalized configuration: `n_therm` compound sweeps
    /// (1 heatbath + `n_or` overrelaxations each) from a cold start.
    pub fn generate(&mut self, dims: LatticeDims, n_therm: usize, n_or: usize) -> GaugeConfig {
        let mut cfg = GaugeConfig::unit(dims);
        for _ in 0..n_therm {
            self.heatbath_sweep(&mut cfg);
            for _ in 0..n_or {
                self.overrelax_sweep(&mut cfg);
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LatticeDims {
        LatticeDims::new(4, 4, 4, 4)
    }

    #[test]
    fn staples_of_unit_field_are_six_identities() {
        let cfg = GaugeConfig::unit(small());
        let s = staple_sum(&cfg, Coord::new(1, 2, 3, 0), 2);
        let expect = Su3::identity().scale_re(6.0);
        assert!((s - expect).norm_sqr() < 1e-24);
    }

    #[test]
    fn su2_project_embed_roundtrip() {
        // Embedding a unit quaternion gives a special-unitary matrix whose
        // projection returns the quaternion.
        let q = {
            let raw = [0.4, -0.3, 0.7, 0.2];
            let n = quat_norm(raw);
            [raw[0] / n, raw[1] / n, raw[2] / n, raw[3] / n]
        };
        for &(i, j) in &SUBGROUPS {
            let g = embed_su2(q, i, j);
            assert!(g.is_special_unitary(1e-12), "({i},{j})");
            let back = project_su2(&g, i, j);
            for k in 0..4 {
                assert!((back[k] - q[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn sweeps_preserve_unitarity() {
        let mut mc = GaugeMonteCarlo::new(5.5, 11);
        let mut cfg = GaugeConfig::unit(small());
        mc.heatbath_sweep(&mut cfg);
        mc.overrelax_sweep(&mut cfg);
        assert!(cfg.is_unitary(1e-9));
    }

    #[test]
    fn plaquette_increases_with_beta() {
        // Weak coupling orders the field; strong coupling disorders it.
        let mut mc_weak = GaugeMonteCarlo::new(9.0, 21);
        let hot = |mc: &mut GaugeMonteCarlo| {
            let mut cfg = GaugeConfig::unit(small());
            for _ in 0..12 {
                mc.heatbath_sweep(&mut cfg);
                mc.overrelax_sweep(&mut cfg);
            }
            cfg.average_plaquette()
        };
        let p_weak = hot(&mut mc_weak);
        let mut mc_strong = GaugeMonteCarlo::new(1.0, 21);
        let p_strong = hot(&mut mc_strong);
        assert!(
            p_weak > p_strong + 0.2,
            "plaquette must grow with beta: β=9 → {p_weak:.3}, β=1 → {p_strong:.3}"
        );
        assert!(p_weak > 0.7, "β=9 should be well ordered, got {p_weak:.3}");
        assert!(p_strong < 0.4, "β=1 should be disordered, got {p_strong:.3}");
    }

    #[test]
    fn strong_coupling_plaquette_matches_leading_order() {
        // Leading strong-coupling expansion for SU(3): ⟨P⟩ ≈ β/18.
        let mut mc = GaugeMonteCarlo::new(0.9, 33);
        let mut cfg = GaugeConfig::unit(small());
        for _ in 0..10 {
            mc.heatbath_sweep(&mut cfg);
        }
        // Average over a few more sweeps to tame fluctuations.
        let mut acc = 0.0;
        let n = 6;
        for _ in 0..n {
            mc.heatbath_sweep(&mut cfg);
            acc += cfg.average_plaquette();
        }
        let p = acc / n as f64;
        let expect = 0.9 / 18.0;
        assert!(
            (p - expect).abs() < 0.025,
            "strong-coupling plaquette {p:.4} vs leading order {expect:.4}"
        );
    }

    #[test]
    fn overrelaxation_approximately_preserves_action() {
        // A full OR sweep should change the total action far less than a
        // heatbath sweep does (it is exactly microcanonical per link at
        // fixed staples; sweeping updates staples, so only approximately).
        let mut mc = GaugeMonteCarlo::new(5.5, 44);
        let mut cfg = GaugeConfig::unit(small());
        for _ in 0..8 {
            mc.heatbath_sweep(&mut cfg);
        }
        let p0 = cfg.average_plaquette();
        let mut cfg_or = cfg.clone();
        mc.overrelax_sweep(&mut cfg_or);
        let p_or = cfg_or.average_plaquette();
        assert!(
            (p_or - p0).abs() < 0.05,
            "overrelaxation moved plaquette too much: {p0:.4} → {p_or:.4}"
        );
    }

    #[test]
    fn generated_configuration_feeds_the_solver_pipeline() {
        // The produced configuration is a valid input for clover
        // construction (unitary, finite) — gauge generation and analysis
        // compose, closing the loop of Section I's two phases.
        let mut mc = GaugeMonteCarlo::new(6.0, 55);
        let cfg = mc.generate(LatticeDims::new(4, 4, 2, 2), 6, 1);
        assert!(cfg.is_unitary(1e-9));
        let sites =
            crate::clover_build::clover_sites_cb(&cfg, 1.0, quda_lattice::geometry::Parity::Even);
        assert!(sites.iter().all(|s| s.max_abs().is_finite()));
    }
}
