//! Host-side ("CPU") fields in natural ordering and full double precision.
//!
//! Mirrors how QUDA is used from Chroma: the application holds fields on the
//! host in a conventional layout (Eq. 3 — internal indices fastest), and the
//! library reorders/truncates them on upload to the device. Gauge
//! generation, source construction, and correctness references all operate
//! on these.

use quda_lattice::geometry::{Coord, LatticeDims, Parity};
use quda_math::spinor::Spinor;
use quda_math::su3::Su3;

/// A full-lattice gauge configuration: one `Su3<f64>` per site and
/// direction, natural (lexicographic) site ordering.
#[derive(Clone, Debug)]
pub struct GaugeConfig {
    /// Lattice extents.
    pub dims: LatticeDims,
    /// `links[site * 4 + mu]` with `site` lexicographic.
    pub links: Vec<Su3<f64>>,
}

impl GaugeConfig {
    /// The free-field (unit) configuration.
    pub fn unit(dims: LatticeDims) -> Self {
        GaugeConfig { dims, links: vec![Su3::identity(); dims.volume() * 4] }
    }

    /// Link `U_μ(x)`.
    #[inline(always)]
    pub fn link(&self, c: Coord, mu: usize) -> &Su3<f64> {
        &self.links[self.dims.lex_index(c) * 4 + mu]
    }

    /// Mutable link accessor.
    #[inline(always)]
    pub fn link_mut(&mut self, c: Coord, mu: usize) -> &mut Su3<f64> {
        &mut self.links[self.dims.lex_index(c) * 4 + mu]
    }

    /// Link by checkerboard address.
    #[inline(always)]
    pub fn link_cb(&self, parity: Parity, cb: usize, mu: usize) -> &Su3<f64> {
        self.link(self.dims.cb_coord(parity, cb), mu)
    }

    /// The product of links around the `μν` plaquette at `x`:
    /// `U_μ(x) U_ν(x+μ) U_μ†(x+ν) U_ν†(x)`.
    pub fn plaquette_matrix(&self, c: Coord, mu: usize, nu: usize) -> Su3<f64> {
        let d = &self.dims;
        let (c_mu, _) = d.neighbor(c, mu, true);
        let (c_nu, _) = d.neighbor(c, nu, true);
        *self.link(c, mu)
            * *self.link(c_mu, nu)
            * self.link(c_nu, mu).adjoint()
            * self.link(c, nu).adjoint()
    }

    /// Average plaquette `⟨(1/3) Re Tr P_{μν}⟩` over all sites and the six
    /// planes. Equals 1 for the unit configuration and decreases with the
    /// noise amplitude of a weak-field configuration.
    pub fn average_plaquette(&self) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for c in self.dims.coords() {
            for mu in 0..4 {
                for nu in (mu + 1)..4 {
                    sum += self.plaquette_matrix(c, mu, nu).trace().re / 3.0;
                    count += 1;
                }
            }
        }
        sum / count as f64
    }

    /// Check that every link is special-unitary to tolerance.
    pub fn is_unitary(&self, tol: f64) -> bool {
        self.links.iter().all(|u| u.is_special_unitary(tol))
    }
}

/// A full-lattice spinor field on the host, natural ordering, f64.
#[derive(Clone, Debug)]
pub struct HostSpinorField {
    /// Lattice extents.
    pub dims: LatticeDims,
    /// One spinor per lexicographic site.
    pub data: Vec<Spinor<f64>>,
}

impl HostSpinorField {
    /// All-zero field.
    pub fn zero(dims: LatticeDims) -> Self {
        HostSpinorField { dims, data: vec![Spinor::zero(); dims.volume()] }
    }

    /// A point source at coordinate `c` with unit weight in `(spin, color)` —
    /// the sources used by the Chroma propagator driver (Section VII-A).
    pub fn point_source(dims: LatticeDims, c: Coord, spin: usize, color: usize) -> Self {
        let mut f = Self::zero(dims);
        f.data[dims.lex_index(c)] = Spinor::point(spin, color);
        f
    }

    /// Access by coordinate.
    #[inline(always)]
    pub fn get(&self, c: Coord) -> &Spinor<f64> {
        &self.data[self.dims.lex_index(c)]
    }

    /// Mutable access by coordinate.
    #[inline(always)]
    pub fn get_mut(&mut self, c: Coord) -> &mut Spinor<f64> {
        let i = self.dims.lex_index(c);
        &mut self.data[i]
    }

    /// Access by checkerboard address.
    #[inline(always)]
    pub fn get_cb(&self, parity: Parity, cb: usize) -> &Spinor<f64> {
        self.get(self.dims.cb_coord(parity, cb))
    }

    /// Mutable access by checkerboard address.
    #[inline(always)]
    pub fn get_cb_mut(&mut self, parity: Parity, cb: usize) -> &mut Spinor<f64> {
        self.get_mut(self.dims.cb_coord(parity, cb))
    }

    /// Squared 2-norm over the whole lattice.
    pub fn norm_sqr(&self) -> f64 {
        self.data.iter().map(Spinor::norm_sqr).sum()
    }

    /// Maximum site-spinor distance to another field.
    pub fn max_site_dist(&self, other: &Self) -> f64 {
        assert_eq!(self.dims, other.dims);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm_sqr().sqrt())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quda_lattice::geometry::DIR_X;

    #[test]
    fn unit_gauge_has_plaquette_one() {
        let g = GaugeConfig::unit(LatticeDims::new(4, 4, 4, 4));
        assert!((g.average_plaquette() - 1.0).abs() < 1e-14);
        assert!(g.is_unitary(1e-14));
    }

    #[test]
    fn plaquette_matrix_is_unitary() {
        let g = GaugeConfig::unit(LatticeDims::new(2, 2, 2, 2));
        let p = g.plaquette_matrix(Coord::new(0, 0, 0, 0), DIR_X, 3);
        assert!(p.is_special_unitary(1e-14));
    }

    #[test]
    fn point_source_norm() {
        let d = LatticeDims::new(4, 4, 4, 8);
        let f = HostSpinorField::point_source(d, Coord::new(1, 2, 3, 4), 2, 1);
        assert_eq!(f.norm_sqr(), 1.0);
        assert_eq!(f.get(Coord::new(1, 2, 3, 4)).s[2].c[1].re, 1.0);
    }

    #[test]
    fn cb_access_consistent_with_coord_access() {
        let d = LatticeDims::new(4, 4, 2, 2);
        let mut f = HostSpinorField::zero(d);
        for (i, sp) in f.data.iter_mut().enumerate() {
            sp.s[0].c[0].re = i as f64;
        }
        for p in [Parity::Even, Parity::Odd] {
            for cb in 0..d.half_volume() {
                let c = d.cb_coord(p, cb);
                assert_eq!(f.get_cb(p, cb).s[0].c[0].re, d.lex_index(c) as f64);
            }
        }
    }

    #[test]
    fn max_site_dist_detects_difference() {
        let d = LatticeDims::new(2, 2, 2, 2);
        let a = HostSpinorField::zero(d);
        let mut b = HostSpinorField::zero(d);
        b.data[3].s[1].c[2].im = 2.0;
        assert_eq!(a.max_site_dist(&b), 2.0);
        assert_eq!(a.max_site_dist(&a), 0.0);
    }
}
