//! Gauge configuration I/O.
//!
//! A minimal binary format in the spirit of the NERSC archive format used
//! throughout lattice QCD: an ASCII-ish header carrying the dimensions and
//! a plaquette/trace checksum, followed by the raw little-endian f64 link
//! data in lexicographic site order, direction fastest. Loads validate the
//! checksum and (optionally) re-unitarize — the ingest path a production
//! analysis campaign would use for its thousands of configurations.

use crate::host::GaugeConfig;
use quda_lattice::geometry::LatticeDims;
use std::io::{self, Read, Write};

/// File magic.
const MAGIC: &[u8; 8] = b"QUDARS01";

/// Errors while reading a configuration.
#[derive(Debug)]
pub enum GaugeIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a quda-rs gauge file.
    BadMagic,
    /// Header metadata malformed.
    BadHeader(String),
    /// Plaquette or link-trace checksum mismatch — corrupt data.
    ChecksumMismatch {
        /// Expected value from the header.
        expected: f64,
        /// Value recomputed from the payload.
        actual: f64,
    },
}

impl From<io::Error> for GaugeIoError {
    fn from(e: io::Error) -> Self {
        GaugeIoError::Io(e)
    }
}

impl std::fmt::Display for GaugeIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GaugeIoError::Io(e) => write!(f, "i/o error: {e}"),
            GaugeIoError::BadMagic => write!(f, "not a quda-rs gauge file"),
            GaugeIoError::BadHeader(s) => write!(f, "bad header: {s}"),
            GaugeIoError::ChecksumMismatch { expected, actual } => {
                write!(f, "checksum mismatch: header {expected}, payload {actual}")
            }
        }
    }
}

impl std::error::Error for GaugeIoError {}

/// Serialize a configuration.
pub fn write_gauge<W: Write>(cfg: &GaugeConfig, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    for ext in [cfg.dims.x, cfg.dims.y, cfg.dims.z, cfg.dims.t] {
        w.write_all(&(ext as u32).to_le_bytes())?;
    }
    // Checksums: average plaquette and the global sum of link traces.
    w.write_all(&cfg.average_plaquette().to_le_bytes())?;
    let trace_sum: f64 = cfg.links.iter().map(|u| u.trace().re).sum();
    w.write_all(&trace_sum.to_le_bytes())?;
    for u in &cfg.links {
        for i in 0..3 {
            for j in 0..3 {
                w.write_all(&u.m[i][j].re.to_le_bytes())?;
                w.write_all(&u.m[i][j].im.to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Deserialize and validate a configuration.
pub fn read_gauge<R: Read>(mut r: R) -> Result<GaugeConfig, GaugeIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GaugeIoError::BadMagic);
    }
    let mut ext = [0usize; 4];
    for e in ext.iter_mut() {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        *e = u32::from_le_bytes(b) as usize;
        if *e < 2 || *e % 2 != 0 || *e > 1 << 16 {
            return Err(GaugeIoError::BadHeader(format!("extent {e}")));
        }
    }
    let dims = LatticeDims::new(ext[0], ext[1], ext[2], ext[3]);
    let mut f64buf = [0u8; 8];
    r.read_exact(&mut f64buf)?;
    let plaq_expected = f64::from_le_bytes(f64buf);
    r.read_exact(&mut f64buf)?;
    let trace_expected = f64::from_le_bytes(f64buf);
    let mut cfg = GaugeConfig::unit(dims);
    for u in cfg.links.iter_mut() {
        for i in 0..3 {
            for j in 0..3 {
                r.read_exact(&mut f64buf)?;
                let re = f64::from_le_bytes(f64buf);
                r.read_exact(&mut f64buf)?;
                let im = f64::from_le_bytes(f64buf);
                if !re.is_finite() || !im.is_finite() {
                    return Err(GaugeIoError::BadHeader("non-finite link data".into()));
                }
                u.m[i][j] = quda_math::complex::C64::new(re, im);
            }
        }
    }
    let trace_actual: f64 = cfg.links.iter().map(|u| u.trace().re).sum();
    if (trace_actual - trace_expected).abs() > 1e-8 * trace_expected.abs().max(1.0) {
        return Err(GaugeIoError::ChecksumMismatch {
            expected: trace_expected,
            actual: trace_actual,
        });
    }
    let plaq_actual = cfg.average_plaquette();
    if (plaq_actual - plaq_expected).abs() > 1e-10 {
        return Err(GaugeIoError::ChecksumMismatch {
            expected: plaq_expected,
            actual: plaq_actual,
        });
    }
    Ok(cfg)
}

/// Convenience: round-trip through a file path.
pub fn save_gauge_file(cfg: &GaugeConfig, path: &std::path::Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_gauge(cfg, io::BufWriter::new(f))
}

/// Convenience: load from a file path.
pub fn load_gauge_file(path: &std::path::Path) -> Result<GaugeConfig, GaugeIoError> {
    let f = std::fs::File::open(path)?;
    read_gauge(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauge_gen::weak_field;

    fn sample() -> GaugeConfig {
        weak_field(LatticeDims::new(4, 4, 2, 4), 0.12, 99)
    }

    #[test]
    fn roundtrip_through_memory() {
        let cfg = sample();
        let mut buf = Vec::new();
        write_gauge(&cfg, &mut buf).unwrap();
        let back = read_gauge(buf.as_slice()).unwrap();
        assert_eq!(back.dims, cfg.dims);
        for (a, b) in back.links.iter().zip(&cfg.links) {
            assert_eq!(a, b, "links must round-trip bit-exactly");
        }
    }

    #[test]
    fn roundtrip_through_file() {
        let cfg = sample();
        let path = std::env::temp_dir().join("quda_rs_io_test.cfg");
        save_gauge_file(&cfg, &path).unwrap();
        let back = load_gauge_file(&path).unwrap();
        assert_eq!(back.links, cfg.links);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_gauge(&b"NOTQUDA0restoffile"[..]).unwrap_err();
        assert!(matches!(err, GaugeIoError::BadMagic));
    }

    #[test]
    fn corrupt_payload_fails_checksum() {
        let cfg = sample();
        let mut buf = Vec::new();
        write_gauge(&cfg, &mut buf).unwrap();
        // Overwrite the last link element with a large finite value.
        let k = buf.len() - 8;
        buf[k..].copy_from_slice(&1e10f64.to_le_bytes());
        let err = read_gauge(buf.as_slice()).unwrap_err();
        assert!(
            matches!(err, GaugeIoError::ChecksumMismatch { .. }),
            "expected checksum failure, got {err}"
        );
    }

    #[test]
    fn truncated_file_is_io_error() {
        let cfg = sample();
        let mut buf = Vec::new();
        write_gauge(&cfg, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let err = read_gauge(buf.as_slice()).unwrap_err();
        assert!(matches!(err, GaugeIoError::Io(_)));
    }

    #[test]
    fn non_finite_data_rejected() {
        let cfg = sample();
        let mut buf = Vec::new();
        write_gauge(&cfg, &mut buf).unwrap();
        let k = buf.len() - 8;
        buf[k..].copy_from_slice(&f64::NAN.to_le_bytes());
        let err = read_gauge(buf.as_slice()).unwrap_err();
        assert!(matches!(err, GaugeIoError::BadHeader(_)), "got {err}");
    }

    #[test]
    fn bad_extent_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        for e in [3u32, 4, 4, 4] {
            buf.extend_from_slice(&e.to_le_bytes());
        }
        buf.extend_from_slice(&0.0f64.to_le_bytes());
        buf.extend_from_slice(&0.0f64.to_le_bytes());
        let err = read_gauge(buf.as_slice()).unwrap_err();
        assert!(matches!(err, GaugeIoError::BadHeader(_)));
    }
}
