//! Single-parity clover fields (72 packed reals per site) in the device
//! layout, with half-precision normalization.

use crate::precision::Precision;
use quda_lattice::geometry::LatticeDims;
use quda_lattice::layout::{species, FieldLayout, NVec};
use quda_math::clover::{CloverSite, CLOVER_REALS};
use quda_math::real::Real;

/// A single-parity clover field with precision-`P` device storage.
///
/// The even-odd preconditioned operator keeps two of these per parity: the
/// shifted term `T = (4+m) + A` and (on the inner parity) its inverse.
#[derive(Clone, Debug)]
pub struct CloverFieldCb<P: Precision> {
    /// Lattice extents.
    pub dims: LatticeDims,
    /// Memory layout.
    pub layout: FieldLayout,
    /// Packed element storage.
    pub data: Vec<P::Elem>,
    /// Per-site normalization (half precision only).
    pub norm: Vec<f32>,
}

impl<P: Precision> CloverFieldCb<P> {
    /// Allocate with every site set to the identity clover term.
    pub fn new(dims: LatticeDims) -> Self {
        let n_vec = NVec::optimal_for_bytes(P::STORAGE_BYTES);
        let layout = species::clover_cb(&dims, n_vec);
        let data = vec![P::Elem::default(); layout.total_len()];
        let norm = if P::NEEDS_NORM { vec![1.0; layout.sites] } else { Vec::new() };
        let mut f = CloverFieldCb { dims, layout, data, norm };
        let id = CloverSite::<f64>::identity();
        for cb in 0..f.sites() {
            f.set(cb, &id);
        }
        f
    }

    /// Number of sites (half volume).
    #[inline(always)]
    pub fn sites(&self) -> usize {
        self.layout.sites
    }

    /// Store the clover term at site `cb` (given in f64; truncated to `P`).
    pub fn set(&mut self, cb: usize, site: &CloverSite<f64>) {
        let mut stored = *site;
        if P::NEEDS_NORM {
            let norm = site.max_abs();
            let norm = if norm == 0.0 { 1.0 } else { norm };
            self.norm[cb] = norm as f32;
            let inv = 1.0 / norm;
            for b in stored.block.iter_mut() {
                for d in b.diag.iter_mut() {
                    *d *= inv;
                }
                for z in b.offdiag.iter_mut() {
                    *z = z.scale(inv);
                }
            }
        }
        let reals = stored.to_reals();
        for (n, &r) in reals.iter().enumerate() {
            self.data[self.layout.index(cb, n)] = P::store(P::Arith::from_f64(r));
        }
    }

    /// Load the clover term at site `cb`.
    pub fn get(&self, cb: usize) -> CloverSite<P::Arith> {
        let mut reals = [P::Arith::ZERO; CLOVER_REALS];
        for (n, r) in reals.iter_mut().enumerate() {
            *r = P::load(self.data[self.layout.index(cb, n)]);
        }
        let mut site = CloverSite::from_reals(&reals);
        if P::NEEDS_NORM {
            let norm = P::Arith::from_f64(self.norm[cb] as f64);
            for b in site.block.iter_mut() {
                for d in b.diag.iter_mut() {
                    *d *= norm;
                }
                for z in b.offdiag.iter_mut() {
                    *z = z.scale(norm);
                }
            }
        }
        site
    }

    /// Device bytes occupied.
    pub fn device_bytes(&self) -> usize {
        self.layout.device_bytes(P::STORAGE_BYTES) + self.norm.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::{Double, Half};
    use quda_math::complex::C64;

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 2, 2)
    }

    fn sample_site(seed: usize) -> CloverSite<f64> {
        let mut s = CloverSite::identity();
        for (bi, b) in s.block.iter_mut().enumerate() {
            for i in 0..6 {
                b.diag[i] = 1.0 + 0.1 * ((seed + i + bi) as f64 * 0.41).sin();
            }
            for k in 0..15 {
                b.offdiag[k] = C64::new(
                    0.1 * ((seed * 3 + k) as f64 * 0.7).sin(),
                    0.1 * ((seed * 5 + k) as f64 * 0.3).cos(),
                );
            }
        }
        s
    }

    #[test]
    fn roundtrip_double_exact() {
        let mut f = CloverFieldCb::<Double>::new(dims());
        for cb in 0..f.sites() {
            f.set(cb, &sample_site(cb));
        }
        for cb in 0..f.sites() {
            assert_eq!(f.get(cb), sample_site(cb));
        }
    }

    #[test]
    fn new_field_is_identity() {
        let f = CloverFieldCb::<Double>::new(dims());
        let id = CloverSite::<f64>::identity();
        for cb in 0..f.sites() {
            assert_eq!(f.get(cb), id);
        }
    }

    #[test]
    fn half_roundtrip_bounded_error() {
        let mut f = CloverFieldCb::<Half>::new(dims());
        for cb in 0..f.sites() {
            f.set(cb, &sample_site(cb));
        }
        for cb in 0..f.sites() {
            let expect = sample_site(cb);
            let got = f.get(cb);
            let bound = expect.max_abs() / 32767.0 + 1e-5;
            for b in 0..2 {
                for i in 0..6 {
                    assert!((got.block[b].diag[i] as f64 - expect.block[b].diag[i]).abs() <= bound);
                }
                for k in 0..15 {
                    assert!(
                        (got.block[b].offdiag[k].re as f64 - expect.block[b].offdiag[k].re).abs()
                            <= bound
                    );
                }
            }
        }
    }

    #[test]
    fn layout_has_72_reals_per_site() {
        let f = CloverFieldCb::<Double>::new(dims());
        assert_eq!(f.layout.n_int, 72);
    }
}
