//! Gauge (link) fields in the QUDA device layout, with 2-row compression
//! and the pad-resident ghost slice of Section VI-B.
//!
//! Storage is per parity and per direction: `data[parity][mu]` is one
//! Eq. 5-blocked array of 12 (compressed) or 18 (full) reals per site. The
//! pad of every block is one half spatial volume — exactly the size of one
//! time-slice of links — so the ghost copy of `U_μ(x−T̂)` from the backward
//! neighbor is written into the pad at the face index of the site
//! ("the ghost zone of link matrices can be hidden entirely in the padding",
//! Fig. 2).

use crate::host::GaugeConfig;
use crate::precision::Precision;
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::layout::{species, FieldLayout, NVec};
use quda_math::complex::Complex;
use quda_math::real::Real;
use quda_math::su3::{Su3, Su3Compressed};

/// A both-parity gauge field with precision-`P` device storage.
#[derive(Clone, Debug)]
pub struct GaugeFieldCb<P: Precision> {
    /// Lattice extents.
    pub dims: LatticeDims,
    /// Per-direction layout (identical for all directions).
    pub layout: FieldLayout,
    /// Whether 2-row compression is active.
    pub compressed: bool,
    /// `data[parity][mu]`.
    pub data: [[Vec<P::Elem>; 4]; 2],
    /// Ghost links for X/Y/Z decompositions: `side_ghost[parity][dir]` holds
    /// the backward neighbor's boundary slice of `U_dir`, one link per face
    /// site, allocated lazily on first write. The temporal ghost slice stays
    /// in the pad of `data[parity][DIR_T]` (Section VI-B) — only X/Y/Z need
    /// dedicated storage, because their faces are not block pads.
    pub side_ghost: [[Vec<P::Elem>; 3]; 2],
}

impl<P: Precision> GaugeFieldCb<P> {
    /// Allocate a unit (identity-link) field.
    pub fn new(dims: LatticeDims, compressed: bool) -> Self {
        let n_vec = NVec::optimal_for_bytes(P::STORAGE_BYTES);
        let layout = species::gauge_cb(&dims, n_vec, compressed);
        let make = || vec![P::Elem::default(); layout.total_len()];
        let mut field = GaugeFieldCb {
            dims,
            layout,
            compressed,
            data: [[make(), make(), make(), make()], [make(), make(), make(), make()]],
            side_ghost: [
                [Vec::new(), Vec::new(), Vec::new()],
                [Vec::new(), Vec::new(), Vec::new()],
            ],
        };
        let id = Su3::<f64>::identity();
        for parity in [Parity::Even, Parity::Odd] {
            for mu in 0..4 {
                for cb in 0..layout.sites {
                    field.set_link(parity, mu, cb, &id);
                }
            }
        }
        field
    }

    /// Number of sites per parity.
    #[inline(always)]
    pub fn sites(&self) -> usize {
        self.layout.sites
    }

    /// Reals stored per link.
    #[inline(always)]
    pub fn link_reals(&self) -> usize {
        self.layout.n_int
    }

    fn write_reals(
        buf: &mut [P::Elem],
        layout: &FieldLayout,
        site_or_pad: (bool, usize),
        reals: &[f64],
    ) {
        for (n, &r) in reals.iter().enumerate() {
            let i = match site_or_pad {
                (false, site) => layout.index(site, n),
                (true, slot) => layout.pad_index(slot, n),
            };
            buf[i] = P::store(P::Arith::from_f64(r));
        }
    }

    fn read_reals(
        buf: &[P::Elem],
        layout: &FieldLayout,
        site_or_pad: (bool, usize),
        out: &mut [f64],
    ) {
        for (n, r) in out.iter_mut().enumerate() {
            let i = match site_or_pad {
                (false, site) => layout.index(site, n),
                (true, slot) => layout.pad_index(slot, n),
            };
            *r = P::load(buf[i]).to_f64();
        }
    }

    /// Serialize `u` into `out` (stack scratch — link reads and writes sit
    /// on the per-iteration dslash path and must not touch the heap);
    /// returns the number of reals filled (12 compressed, 18 full).
    fn link_to_reals(&self, u: &Su3<f64>, out: &mut [f64; 18]) -> usize {
        let rows = if self.compressed { 2 } else { 3 };
        let mut k = 0;
        for i in 0..rows {
            for j in 0..3 {
                out[k] = u.m[i][j].re;
                out[k + 1] = u.m[i][j].im;
                k += 2;
            }
        }
        k
    }

    fn reals_to_link(&self, reals: &[f64]) -> Su3<P::Arith> {
        if self.compressed {
            let mut c = Su3Compressed::<P::Arith>::default();
            let mut k = 0;
            for i in 0..2 {
                for j in 0..3 {
                    c.rows[i][j] = Complex::new(
                        P::Arith::from_f64(reals[k]),
                        P::Arith::from_f64(reals[k + 1]),
                    );
                    k += 2;
                }
            }
            c.reconstruct()
        } else {
            let mut u = Su3::zero();
            let mut k = 0;
            for i in 0..3 {
                for j in 0..3 {
                    u.m[i][j] = Complex::new(
                        P::Arith::from_f64(reals[k]),
                        P::Arith::from_f64(reals[k + 1]),
                    );
                    k += 2;
                }
            }
            u
        }
    }

    /// Store the link `U_μ` at checkerboard site `cb` of `parity`.
    pub fn set_link(&mut self, parity: Parity, mu: usize, cb: usize, u: &Su3<f64>) {
        let mut reals = [0.0f64; 18];
        let n = self.link_to_reals(u, &mut reals);
        let layout = self.layout;
        Self::write_reals(&mut self.data[parity.as_usize()][mu], &layout, (false, cb), &reals[..n]);
    }

    /// Load (and, if compressed, reconstruct) the link `U_μ` at `cb`.
    pub fn link(&self, parity: Parity, mu: usize, cb: usize) -> Su3<P::Arith> {
        let mut reals = [0.0f64; 18];
        let n = self.link_reals();
        Self::read_reals(
            &self.data[parity.as_usize()][mu],
            &self.layout,
            (false, cb),
            &mut reals[..n],
        );
        self.reals_to_link(&reals[..n])
    }

    /// Store a ghost link into the pad region at `face` (Section VI-B).
    pub fn set_ghost_link(&mut self, parity: Parity, mu: usize, face: usize, u: &Su3<f64>) {
        let mut reals = [0.0f64; 18];
        let n = self.link_to_reals(u, &mut reals);
        let layout = self.layout;
        Self::write_reals(
            &mut self.data[parity.as_usize()][mu],
            &layout,
            (true, face),
            &reals[..n],
        );
    }

    /// Load a ghost link from the pad region.
    pub fn ghost_link(&self, parity: Parity, mu: usize, face: usize) -> Su3<P::Arith> {
        let mut reals = [0.0f64; 18];
        let n = self.link_reals();
        Self::read_reals(
            &self.data[parity.as_usize()][mu],
            &self.layout,
            (true, face),
            &mut reals[..n],
        );
        self.reals_to_link(&reals[..n])
    }

    /// Face sites per parity of a `dir`-boundary slice.
    #[inline(always)]
    pub fn face_sites_dim(&self, dir: usize) -> usize {
        self.dims.volume() / self.dims.extent(dir) / 2
    }

    /// Store the ghost copy of `U_dir` at face site `face` of the backward
    /// `dir`-boundary. For `dir = 3` this is the legacy pad slice; for X/Y/Z
    /// the side store is allocated lazily on first write.
    pub fn set_ghost_link_dim(&mut self, parity: Parity, dir: usize, face: usize, u: &Su3<f64>) {
        if dir == 3 {
            return self.set_ghost_link(parity, 3, face, u);
        }
        let mut reals = [0.0f64; 18];
        let n = self.link_to_reals(u, &mut reals);
        let fs = self.face_sites_dim(dir);
        let buf = &mut self.side_ghost[parity.as_usize()][dir];
        if buf.is_empty() {
            buf.resize(fs * n, P::Elem::default());
        }
        for (k, &r) in reals[..n].iter().enumerate() {
            buf[face * n + k] = P::store(P::Arith::from_f64(r));
        }
    }

    /// Load the ghost copy of `U_dir` at face site `face` of the backward
    /// `dir`-boundary (the counterpart of [`GaugeFieldCb::set_ghost_link_dim`]).
    pub fn ghost_link_dim(&self, parity: Parity, dir: usize, face: usize) -> Su3<P::Arith> {
        if dir == 3 {
            return self.ghost_link(parity, 3, face);
        }
        let n = self.link_reals();
        let buf = &self.side_ghost[parity.as_usize()][dir];
        if buf.is_empty() {
            // Never written (lazy store): identity, matching a fresh field.
            return Su3::identity();
        }
        let mut reals = [0.0f64; 18];
        for (k, r) in reals[..n].iter_mut().enumerate() {
            *r = P::load(buf[face * n + k]).to_f64();
        }
        self.reals_to_link(&reals[..n])
    }

    /// Upload an entire host configuration (both parities, all directions).
    pub fn upload(&mut self, config: &GaugeConfig) {
        assert_eq!(config.dims, self.dims);
        for parity in [Parity::Even, Parity::Odd] {
            for cb in 0..self.sites() {
                let c = self.dims.cb_coord(parity, cb);
                for mu in 0..4 {
                    let u = *config.link(c, mu);
                    self.set_link(parity, mu, cb, &u);
                }
            }
        }
    }

    /// Device bytes occupied by all 8 arrays.
    pub fn device_bytes(&self) -> usize {
        8 * self.layout.device_bytes(P::STORAGE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::{Double, Half, Single};
    use quda_math::complex::C64;

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 2, 4)
    }

    fn sample_link(seed: usize) -> Su3<f64> {
        let mut u = Su3::identity();
        let k = seed as f64;
        u.m[0][1] = C64::new(0.1 * (k * 0.7).sin(), 0.2 * (k * 0.3).cos());
        u.m[1][2] = C64::new(-0.15, 0.1 * (k * 0.9).sin());
        u.m[2][0] = C64::new(0.05 * (k).cos(), -0.12);
        u.reunitarize()
    }

    #[test]
    fn new_field_is_unit() {
        let g = GaugeFieldCb::<Double>::new(dims(), true);
        for p in [Parity::Even, Parity::Odd] {
            for mu in 0..4 {
                let u = g.link(p, mu, 5);
                assert!((u - Su3::identity()).norm_sqr() < 1e-24);
            }
        }
    }

    #[test]
    fn compressed_roundtrip_reconstructs_third_row() {
        let mut g = GaugeFieldCb::<Double>::new(dims(), true);
        for cb in 0..g.sites() {
            g.set_link(Parity::Odd, 2, cb, &sample_link(cb));
        }
        for cb in 0..g.sites() {
            let expect = sample_link(cb);
            let got = g.link(Parity::Odd, 2, cb);
            assert!((got - expect).norm_sqr() < 1e-20, "cb={cb}");
        }
    }

    #[test]
    fn full_storage_roundtrip() {
        let mut g = GaugeFieldCb::<Double>::new(dims(), false);
        assert_eq!(g.link_reals(), 18);
        g.set_link(Parity::Even, 0, 3, &sample_link(9));
        let got = g.link(Parity::Even, 0, 3);
        assert!((got - sample_link(9)).norm_sqr() < 1e-28);
    }

    #[test]
    fn half_precision_links_stay_unitary_enough() {
        // Unitarity bounds elements to [-1,1], so direct quantization works
        // (Section V-C3) and the reconstructed link is near-unitary.
        let mut g = GaugeFieldCb::<Half>::new(dims(), true);
        for cb in 0..g.sites() {
            g.set_link(Parity::Even, 3, cb, &sample_link(cb));
        }
        for cb in 0..g.sites() {
            let u: Su3<f64> = g.link(Parity::Even, 3, cb).cast();
            assert!(u.is_special_unitary(1e-3), "cb={cb}");
            assert!((u - sample_link(cb)).norm_sqr().sqrt() < 1e-3);
        }
    }

    #[test]
    fn ghost_links_live_in_pad_and_do_not_clobber_sites() {
        let mut g = GaugeFieldCb::<Single>::new(dims(), true);
        for cb in 0..g.sites() {
            g.set_link(Parity::Odd, 3, cb, &sample_link(cb));
        }
        let faces = g.layout.pad;
        for f in 0..faces {
            g.set_ghost_link(Parity::Odd, 3, f, &sample_link(1000 + f));
        }
        for cb in 0..g.sites() {
            let got: Su3<f64> = g.link(Parity::Odd, 3, cb).cast();
            assert!((got - sample_link(cb)).norm_sqr() < 1e-10, "site clobbered at {cb}");
        }
        for f in 0..faces {
            let got: Su3<f64> = g.ghost_link(Parity::Odd, 3, f).cast();
            assert!((got - sample_link(1000 + f)).norm_sqr() < 1e-10);
        }
    }

    #[test]
    fn side_ghost_links_roundtrip_and_t_routes_to_pad() {
        let mut g = GaugeFieldCb::<Double>::new(dims(), true);
        for dir in 0..4 {
            for f in 0..g.face_sites_dim(dir) {
                g.set_ghost_link_dim(Parity::Even, dir, f, &sample_link(100 * dir + f));
            }
        }
        for dir in 0..4 {
            for f in 0..g.face_sites_dim(dir) {
                let got: Su3<f64> = g.ghost_link_dim(Parity::Even, dir, f).cast();
                assert!((got - sample_link(100 * dir + f)).norm_sqr() < 1e-20);
            }
        }
        // The T route is the pad: readable through the legacy accessor.
        let via_pad: Su3<f64> = g.ghost_link(Parity::Even, 3, 0).cast();
        assert!((via_pad - sample_link(300)).norm_sqr() < 1e-20);
        // Unwritten parities stay unallocated (lazy side store).
        assert!(g.side_ghost[Parity::Odd.as_usize()].iter().all(|v| v.is_empty()));
    }

    #[test]
    fn upload_matches_host_config() {
        let d = dims();
        let mut cfg = GaugeConfig::unit(d);
        for (i, u) in cfg.links.iter_mut().enumerate() {
            *u = sample_link(i);
        }
        let mut g = GaugeFieldCb::<Double>::new(d, true);
        g.upload(&cfg);
        for p in [Parity::Even, Parity::Odd] {
            for cb in 0..g.sites() {
                let c = d.cb_coord(p, cb);
                for mu in 0..4 {
                    let got = g.link(p, mu, cb);
                    assert!((got - *cfg.link(c, mu)).norm_sqr() < 1e-20);
                }
            }
        }
    }

    #[test]
    fn compression_halves_link_storage_not_quite() {
        // 12 vs 18 reals per link.
        let c = GaugeFieldCb::<Single>::new(dims(), true);
        let f = GaugeFieldCb::<Single>::new(dims(), false);
        assert_eq!(c.link_reals(), 12);
        assert_eq!(f.link_reals(), 18);
        assert!(c.device_bytes() < f.device_bytes());
    }
}
