//! Storage precisions: double, single, and 16-bit fixed-point half.
//!
//! QUDA's solvers are parameterized by a *storage* precision per field; half
//! precision stores normalized `i16` and computes in `f32` (Section V-C3).
//! The [`Precision`] trait carries both the storage element and the
//! arithmetic type so field containers and kernels can be written once.

use quda_math::half::{Fixed16, Fixed8};
use quda_math::real::Real;

/// A storage precision for device fields.
pub trait Precision: Copy + Clone + Send + Sync + 'static {
    /// The arithmetic type kernels compute in.
    type Arith: Real;
    /// The element actually stored per real component.
    type Elem: Copy + Clone + Default + Send + Sync + 'static;
    /// Bytes per stored real.
    const STORAGE_BYTES: usize;
    /// Whether fields of this precision carry a normalization array.
    const NEEDS_NORM: bool;
    /// Name as the paper uses it ("double", "single", "half").
    const NAME: &'static str;

    /// Runtime tag for this precision.
    const TAG: PrecisionTag;

    /// Store a value already normalized to the representable range
    /// (for half: `[-1, 1]`; for float types: any value).
    fn store(x: Self::Arith) -> Self::Elem;
    /// Load a stored element back to the arithmetic type.
    fn load(e: Self::Elem) -> Self::Arith;

    /// View a stored-element slice as arithmetic values, when storage *is*
    /// the arithmetic type (the float precisions). `None` for the
    /// normalized fixed-point precisions, whose elements are meaningless
    /// without the per-site norm. This is the escape hatch that lets the
    /// blas fast paths stream blocked storage directly instead of going
    /// through per-site `get`/`set`.
    fn arith_view(e: &[Self::Elem]) -> Option<&[Self::Arith]> {
        let _ = e;
        None
    }
    /// Mutable counterpart of [`Precision::arith_view`].
    fn arith_view_mut(e: &mut [Self::Elem]) -> Option<&mut [Self::Arith]> {
        let _ = e;
        None
    }

    /// Append the *raw storage bytes* of `e` (little-endian) to `out`.
    ///
    /// This is a bit-exact serialization of the stored element — no
    /// quantization or dequantization happens, so a
    /// `elem_to_le_bytes`/`elem_from_le_bytes` round trip reproduces the
    /// element exactly for every precision (the checkpoint layer depends
    /// on this).
    fn elem_to_le_bytes(e: Self::Elem, out: &mut Vec<u8>);
    /// Decode one element from exactly [`Self::STORAGE_BYTES`]
    /// little-endian bytes. Returns `None` if `bytes` is too short.
    fn elem_from_le_bytes(bytes: &[u8]) -> Option<Self::Elem>;
}

/// IEEE double precision storage (`f64`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Double;

/// IEEE single precision storage (`f32`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Single;

/// 16-bit fixed-point storage with shared normalization, computing in `f32`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Half;

/// 8-bit fixed-point storage with shared normalization — the "(or even
/// 8-bit)" texture mode of Section V-C3, provided as an extension.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Quarter;

impl Precision for Double {
    type Arith = f64;
    type Elem = f64;
    const STORAGE_BYTES: usize = 8;
    const NEEDS_NORM: bool = false;
    const NAME: &'static str = "double";
    const TAG: PrecisionTag = PrecisionTag::Double;

    #[inline(always)]
    fn store(x: f64) -> f64 {
        x
    }
    #[inline(always)]
    fn load(e: f64) -> f64 {
        e
    }

    #[inline(always)]
    fn arith_view(e: &[f64]) -> Option<&[f64]> {
        Some(e)
    }
    #[inline(always)]
    fn arith_view_mut(e: &mut [f64]) -> Option<&mut [f64]> {
        Some(e)
    }

    fn elem_to_le_bytes(e: f64, out: &mut Vec<u8>) {
        out.extend_from_slice(&e.to_le_bytes());
    }
    fn elem_from_le_bytes(bytes: &[u8]) -> Option<f64> {
        Some(f64::from_le_bytes(bytes.get(..8)?.try_into().ok()?))
    }
}

impl Precision for Single {
    type Arith = f32;
    type Elem = f32;
    const STORAGE_BYTES: usize = 4;
    const NEEDS_NORM: bool = false;
    const NAME: &'static str = "single";
    const TAG: PrecisionTag = PrecisionTag::Single;

    #[inline(always)]
    fn store(x: f32) -> f32 {
        x
    }
    #[inline(always)]
    fn load(e: f32) -> f32 {
        e
    }

    #[inline(always)]
    fn arith_view(e: &[f32]) -> Option<&[f32]> {
        Some(e)
    }
    #[inline(always)]
    fn arith_view_mut(e: &mut [f32]) -> Option<&mut [f32]> {
        Some(e)
    }

    fn elem_to_le_bytes(e: f32, out: &mut Vec<u8>) {
        out.extend_from_slice(&e.to_le_bytes());
    }
    fn elem_from_le_bytes(bytes: &[u8]) -> Option<f32> {
        Some(f32::from_le_bytes(bytes.get(..4)?.try_into().ok()?))
    }
}

impl Precision for Half {
    type Arith = f32;
    type Elem = Fixed16;
    const STORAGE_BYTES: usize = 2;
    const NEEDS_NORM: bool = true;
    const NAME: &'static str = "half";
    const TAG: PrecisionTag = PrecisionTag::Half;

    #[inline(always)]
    fn store(x: f32) -> Fixed16 {
        // The field layer divides by the per-site norm before calling
        // `store` — this trait is the sanctioned raw-conversion boundary.
        // quda-lint: allow(half-normalization)
        Fixed16::quantize(x)
    }
    #[inline(always)]
    fn load(e: Fixed16) -> f32 {
        e.dequantize()
    }

    fn elem_to_le_bytes(e: Fixed16, out: &mut Vec<u8>) {
        out.extend_from_slice(&e.0.to_le_bytes());
    }
    fn elem_from_le_bytes(bytes: &[u8]) -> Option<Fixed16> {
        // Re-materializes an element already normalized when serialized.
        // quda-lint: allow(half-normalization)
        Some(Fixed16(i16::from_le_bytes(bytes.get(..2)?.try_into().ok()?)))
    }
}

impl Precision for Quarter {
    type Arith = f32;
    type Elem = Fixed8;
    const STORAGE_BYTES: usize = 1;
    const NEEDS_NORM: bool = true;
    const NAME: &'static str = "quarter";
    const TAG: PrecisionTag = PrecisionTag::Quarter;

    #[inline(always)]
    fn store(x: f32) -> Fixed8 {
        // Same sanctioned boundary as `Half::store` above.
        // quda-lint: allow(half-normalization)
        Fixed8::quantize(x)
    }
    #[inline(always)]
    fn load(e: Fixed8) -> f32 {
        e.dequantize()
    }

    fn elem_to_le_bytes(e: Fixed8, out: &mut Vec<u8>) {
        out.extend_from_slice(&e.0.to_le_bytes());
    }
    fn elem_from_le_bytes(bytes: &[u8]) -> Option<Fixed8> {
        // Re-materializes an element already normalized when serialized.
        // quda-lint: allow(half-normalization)
        Some(Fixed8(i8::from_le_bytes(bytes.get(..1)?.try_into().ok()?)))
    }
}

/// Runtime tag for a precision, used by solver parameters and the
/// performance model (which needs byte counts without generics).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PrecisionTag {
    /// 8-byte storage.
    Double,
    /// 4-byte storage.
    Single,
    /// 2-byte storage + normalization array.
    Half,
    /// 1-byte storage + normalization array (extension).
    Quarter,
}

impl PrecisionTag {
    /// Bytes per stored real.
    pub fn storage_bytes(self) -> usize {
        match self {
            PrecisionTag::Double => 8,
            PrecisionTag::Single => 4,
            PrecisionTag::Half => 2,
            PrecisionTag::Quarter => 1,
        }
    }

    /// Paper-style name.
    pub fn name(self) -> &'static str {
        match self {
            PrecisionTag::Double => "double",
            PrecisionTag::Single => "single",
            PrecisionTag::Half => "half",
            PrecisionTag::Quarter => "quarter",
        }
    }

    /// Whether a normalization array accompanies the data.
    pub fn needs_norm(self) -> bool {
        matches!(self, PrecisionTag::Half | PrecisionTag::Quarter)
    }

    /// Stable one-byte encoding used by the checkpoint wire format.
    pub fn to_byte(self) -> u8 {
        match self {
            PrecisionTag::Double => 0,
            PrecisionTag::Single => 1,
            PrecisionTag::Half => 2,
            PrecisionTag::Quarter => 3,
        }
    }

    /// Inverse of [`PrecisionTag::to_byte`].
    pub fn from_byte(b: u8) -> Option<PrecisionTag> {
        match b {
            0 => Some(PrecisionTag::Double),
            1 => Some(PrecisionTag::Single),
            2 => Some(PrecisionTag::Half),
            3 => Some(PrecisionTag::Quarter),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_match_generics() {
        assert_eq!(PrecisionTag::Double.storage_bytes(), Double::STORAGE_BYTES);
        assert_eq!(PrecisionTag::Single.storage_bytes(), Single::STORAGE_BYTES);
        assert_eq!(PrecisionTag::Half.storage_bytes(), Half::STORAGE_BYTES);
        assert_eq!(PrecisionTag::Double.name(), Double::NAME);
        assert_eq!(PrecisionTag::Half.needs_norm(), Half::NEEDS_NORM);
        assert!(!PrecisionTag::Single.needs_norm());
    }

    #[test]
    fn tag_byte_encoding_round_trips() {
        for tag in
            [PrecisionTag::Double, PrecisionTag::Single, PrecisionTag::Half, PrecisionTag::Quarter]
        {
            assert_eq!(PrecisionTag::from_byte(tag.to_byte()), Some(tag));
        }
        assert_eq!(PrecisionTag::from_byte(4), None);
        assert_eq!(Double::TAG, PrecisionTag::Double);
        assert_eq!(Quarter::TAG, PrecisionTag::Quarter);
    }

    #[test]
    fn le_byte_round_trip_is_bit_exact() {
        let mut buf = Vec::new();
        Double::elem_to_le_bytes(-0.1, &mut buf);
        assert_eq!(buf.len(), Double::STORAGE_BYTES);
        assert_eq!(Double::elem_from_le_bytes(&buf), Some(-0.1));
        buf.clear();
        Single::elem_to_le_bytes(f32::NAN, &mut buf);
        let back = Single::elem_from_le_bytes(&buf).unwrap();
        assert_eq!(back.to_bits(), f32::NAN.to_bits());
        buf.clear();
        Half::elem_to_le_bytes(Fixed16(-12345), &mut buf);
        assert_eq!(Half::elem_from_le_bytes(&buf), Some(Fixed16(-12345)));
        buf.clear();
        Quarter::elem_to_le_bytes(Fixed8(-7), &mut buf);
        assert_eq!(Quarter::elem_from_le_bytes(&buf), Some(Fixed8(-7)));
        assert_eq!(Quarter::elem_from_le_bytes(&[]), None);
    }

    #[test]
    fn float_precisions_store_exactly() {
        assert_eq!(Double::load(Double::store(0.1)), 0.1);
        assert_eq!(Single::load(Single::store(0.25f32)), 0.25);
    }

    #[test]
    fn arith_view_is_identity_for_floats_only() {
        let mut d = [1.0f64, -2.0];
        assert_eq!(Double::arith_view(&d), Some(&[1.0f64, -2.0][..]));
        assert!(Double::arith_view_mut(&mut d).is_some());
        let mut s = [0.5f32];
        assert_eq!(Single::arith_view(&s), Some(&[0.5f32][..]));
        assert!(Single::arith_view_mut(&mut s).is_some());
        let mut h = [Fixed16(100)];
        assert!(Half::arith_view(&h).is_none());
        assert!(Half::arith_view_mut(&mut h).is_none());
        let mut q = [Fixed8(-3)];
        assert!(Quarter::arith_view(&q).is_none());
        assert!(Quarter::arith_view_mut(&mut q).is_none());
    }

    #[test]
    fn quarter_stores_with_bounded_error() {
        for &x in &[0.0f32, 0.5, -0.99, 1.0] {
            let err = (Quarter::load(Quarter::store(x)) - x).abs();
            assert!(err <= 0.5 / 127.0 + f32::EPSILON);
        }
        assert_eq!(PrecisionTag::Quarter.storage_bytes(), Quarter::STORAGE_BYTES);
        assert!(PrecisionTag::Quarter.needs_norm());
    }

    #[test]
    fn half_stores_with_bounded_error() {
        for &x in &[0.0f32, 0.5, -0.999, 1.0] {
            let err = (Half::load(Half::store(x)) - x).abs();
            assert!(err <= 0.5 / 32767.0 + f32::EPSILON);
        }
    }
}
