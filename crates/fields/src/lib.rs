//! # quda-fields
//!
//! Field containers for `quda-rs`:
//!
//! * [`precision`] — the double / single / half storage precisions;
//! * [`host`] — host-side (application) fields in natural ordering;
//! * [`spinor_cb`], [`gauge_cb`], [`clover_cb`] — device fields in the QUDA
//!   layout of Fig. 2, with ghost zones and half-precision normalization;
//! * [`gauge_gen`] — weak-field / random configuration generators
//!   (Section VII-A);
//! * [`clover_build`] — the Sheikholeslami-Wohlert term from clover leaves,
//!   packed into the 72-real chiral-block format;
//! * [`io`] — checksummed binary gauge-configuration files;
//! * [`gauge_mc`] — pure-gauge heatbath/overrelaxation Monte Carlo (the
//!   gauge-generation future work of Section VIII).

#![warn(missing_docs)]

pub mod clover_build;
pub mod clover_cb;
pub mod gauge_cb;
pub mod gauge_gen;
pub mod gauge_mc;
pub mod host;
pub mod io;
pub mod precision;
pub mod spinor_cb;

pub use clover_cb::CloverFieldCb;
pub use gauge_cb::GaugeFieldCb;
pub use gauge_mc::GaugeMonteCarlo;
pub use host::{GaugeConfig, HostSpinorField};
pub use io::{load_gauge_file, read_gauge, save_gauge_file, write_gauge, GaugeIoError};
pub use precision::{Double, Half, Precision, PrecisionTag, Single};
pub use spinor_cb::SpinorFieldCb;
