//! Single-parity ("checkerboard") spinor fields in the QUDA device layout.
//!
//! The even-odd preconditioned solver works entirely on one parity, so this
//! is the workhorse vector type. Storage follows Fig. 2: `24 / N_vec` blocks
//! of `stride = V/2 + pad` short vectors, with the optional ghost end zone of
//! Section VI-C appended after the blocks (`2 × Vs/2` half spinors, backward
//! half first). In half precision a per-site `f32` normalization array rides
//! along, extended by `2 × Vs/2` entries for the ghost half spinors.

use crate::host::HostSpinorField;
use crate::precision::Precision;
use quda_lattice::geometry::{LatticeDims, Parity};
use quda_lattice::layout::{species, FieldLayout, NVec};
use quda_math::real::Real;
use quda_math::spinor::{HalfSpinor, Spinor, HALF_SPINOR_REALS, SPINOR_REALS};

/// A single-parity spinor field with precision-`P` device storage.
#[derive(Clone, Debug)]
pub struct SpinorFieldCb<P: Precision> {
    /// Lattice extents (of the full lattice; the field covers one parity).
    pub dims: LatticeDims,
    /// Memory layout (Eq. 5).
    pub layout: FieldLayout,
    /// Blocked, padded element storage (plus ghost end zone when present).
    pub data: Vec<P::Elem>,
    /// Per-site normalization constants (half precision only; otherwise
    /// empty). Ghost entries follow the site entries: backward face first.
    pub norm: Vec<f32>,
    /// Which lattice dimensions carry ghost zones. The temporal ghost lives
    /// in the end zone of `data` (Fig. 2); X/Y/Z ghosts — whose faces are
    /// not contiguous in the checkerboard layout — live in the side arrays.
    pub open: [bool; 4],
    /// Side ghost storage for X/Y/Z (indexed `dir = 0..3`): `2 × face_sites`
    /// half spinors, backward face first, matching the end-zone convention.
    pub side_ghost: [Vec<P::Elem>; 3],
    /// Side ghost normalization constants (half precision only), same order.
    pub side_norm: [Vec<f32>; 3],
}

impl<P: Precision> SpinorFieldCb<P> {
    /// Allocate a zero field; `with_ghost` reserves the temporal end zone
    /// needed by a time-sliced multi-GPU operand.
    pub fn new(dims: LatticeDims, with_ghost: bool) -> Self {
        Self::new_open(dims, [false, false, false, with_ghost])
    }

    /// Allocate a zero field with ghost zones for every open dimension of a
    /// 4-d process-grid decomposition.
    pub fn new_open(dims: LatticeDims, open: [bool; 4]) -> Self {
        let n_vec = NVec::optimal_for_bytes(P::STORAGE_BYTES);
        let layout = species::spinor_cb(&dims, n_vec, open[3]);
        let data = vec![P::Elem::default(); layout.total_len()];
        let norm =
            if P::NEEDS_NORM { vec![1.0; layout.sites + layout.ghost_sites] } else { Vec::new() };
        let side_ghost = std::array::from_fn(|dir| {
            if open[dir] {
                let fs = dims.volume() / dims.extent(dir) / 2;
                vec![P::Elem::default(); 2 * fs * HALF_SPINOR_REALS]
            } else {
                Vec::new()
            }
        });
        let side_norm = std::array::from_fn(|dir| {
            if P::NEEDS_NORM && open[dir] {
                vec![1.0; 2 * (dims.volume() / dims.extent(dir) / 2)]
            } else {
                Vec::new()
            }
        });
        SpinorFieldCb { dims, layout, data, norm, open, side_ghost, side_norm }
    }

    /// Number of data sites (half volume).
    #[inline(always)]
    pub fn sites(&self) -> usize {
        self.layout.sites
    }

    /// Whether the field carries a ghost end zone.
    #[inline(always)]
    pub fn has_ghost(&self) -> bool {
        self.layout.ghost_sites > 0
    }

    /// Face sites per temporal ghost (Vs/2).
    #[inline(always)]
    pub fn face_sites(&self) -> usize {
        self.layout.ghost_sites / 2
    }

    /// Read the spinor at checkerboard site `cb`.
    #[inline]
    pub fn get(&self, cb: usize) -> Spinor<P::Arith> {
        let mut reals = [P::Arith::ZERO; SPINOR_REALS];
        for (n, r) in reals.iter_mut().enumerate() {
            *r = P::load(self.data[self.layout.index(cb, n)]);
        }
        let mut sp = Spinor::from_reals(&reals);
        if P::NEEDS_NORM {
            sp = sp.scale_re(P::Arith::from_f64(self.norm[cb] as f64));
        }
        sp
    }

    /// Write the spinor at checkerboard site `cb` (quantizing in half
    /// precision with a freshly computed per-site normalization).
    #[inline]
    pub fn set(&mut self, cb: usize, sp: &Spinor<P::Arith>) {
        let mut stored = *sp;
        if P::NEEDS_NORM {
            let norm = sp.max_abs();
            let norm = if norm == 0.0 { 1.0 } else { norm };
            self.norm[cb] = norm as f32;
            stored = sp.scale_re(P::Arith::from_f64(1.0 / norm));
        }
        let reals = stored.to_reals();
        for (n, &r) in reals.iter().enumerate() {
            self.data[self.layout.index(cb, n)] = P::store(r);
        }
    }

    /// Read a ghost half spinor (`backward` selects which face's data).
    #[inline]
    pub fn get_ghost(&self, backward: bool, face: usize) -> HalfSpinor<P::Arith> {
        let mut reals = [P::Arith::ZERO; HALF_SPINOR_REALS];
        for (n, r) in reals.iter_mut().enumerate() {
            *r = P::load(self.data[self.layout.ghost_index(backward, face, n)]);
        }
        let mut h = HalfSpinor::from_reals(&reals);
        if P::NEEDS_NORM {
            let ni = self.ghost_norm_index(backward, face);
            let norm = P::Arith::from_f64(self.norm[ni] as f64);
            h.h[0] = h.h[0].scale_re(norm);
            h.h[1] = h.h[1].scale_re(norm);
        }
        h
    }

    /// Write a ghost half spinor.
    #[inline]
    pub fn set_ghost(&mut self, backward: bool, face: usize, h: &HalfSpinor<P::Arith>) {
        let mut stored = *h;
        if P::NEEDS_NORM {
            let norm = h.h[0].max_abs().max(h.h[1].max_abs());
            let norm = if norm == 0.0 { 1.0 } else { norm };
            let ni = self.ghost_norm_index(backward, face);
            self.norm[ni] = norm as f32;
            let inv = P::Arith::from_f64(1.0 / norm);
            stored.h[0] = stored.h[0].scale_re(inv);
            stored.h[1] = stored.h[1].scale_re(inv);
        }
        let reals = stored.to_reals();
        for (n, &r) in reals.iter().enumerate() {
            self.data[self.layout.ghost_index(backward, face, n)] = P::store(r);
        }
    }

    #[inline(always)]
    fn ghost_norm_index(&self, backward: bool, face: usize) -> usize {
        self.layout.sites + if backward { 0 } else { self.face_sites() } + face
    }

    /// Face sites per parity of a `dir`-boundary slice (`V / L_dir / 2`).
    /// For `dir = 3` this is the temporal face size `Vs/2`.
    #[inline(always)]
    pub fn face_sites_dim(&self, dir: usize) -> usize {
        self.dims.volume() / self.dims.extent(dir) / 2
    }

    /// Whether the field carries a ghost zone for dimension `dir`.
    #[inline(always)]
    pub fn has_ghost_dim(&self, dir: usize) -> bool {
        if dir == 3 {
            self.has_ghost()
        } else {
            !self.side_ghost[dir].is_empty()
        }
    }

    /// Read the ghost half spinor of dimension `dir` (`backward` selects
    /// which face's data). `dir = 3` reads the legacy temporal end zone.
    #[inline]
    pub fn get_ghost_dim(&self, dir: usize, backward: bool, face: usize) -> HalfSpinor<P::Arith> {
        if dir == 3 {
            return self.get_ghost(backward, face);
        }
        let slot = if backward { 0 } else { self.face_sites_dim(dir) } + face;
        let base = slot * HALF_SPINOR_REALS;
        let mut reals = [P::Arith::ZERO; HALF_SPINOR_REALS];
        for (n, r) in reals.iter_mut().enumerate() {
            *r = P::load(self.side_ghost[dir][base + n]);
        }
        let mut h = HalfSpinor::from_reals(&reals);
        if P::NEEDS_NORM {
            let norm = P::Arith::from_f64(self.side_norm[dir][slot] as f64);
            h.h[0] = h.h[0].scale_re(norm);
            h.h[1] = h.h[1].scale_re(norm);
        }
        h
    }

    /// Write the ghost half spinor of dimension `dir`.
    #[inline]
    pub fn set_ghost_dim(
        &mut self,
        dir: usize,
        backward: bool,
        face: usize,
        h: &HalfSpinor<P::Arith>,
    ) {
        if dir == 3 {
            return self.set_ghost(backward, face, h);
        }
        let slot = if backward { 0 } else { self.face_sites_dim(dir) } + face;
        let base = slot * HALF_SPINOR_REALS;
        let mut stored = *h;
        if P::NEEDS_NORM {
            let norm = h.h[0].max_abs().max(h.h[1].max_abs());
            let norm = if norm == 0.0 { 1.0 } else { norm };
            self.side_norm[dir][slot] = norm as f32;
            let inv = P::Arith::from_f64(1.0 / norm);
            stored.h[0] = stored.h[0].scale_re(inv);
            stored.h[1] = stored.h[1].scale_re(inv);
        }
        let reals = stored.to_reals();
        for (n, &r) in reals.iter().enumerate() {
            self.side_ghost[dir][base + n] = P::store(r);
        }
    }

    /// Per-block contiguous site storage as arithmetic values — `Some`
    /// only for the float precisions, where the stored element *is* the
    /// arithmetic type. Each item is one block's `n_vec × sites` live
    /// reals; pads and the ghost end zone are excluded by construction, so
    /// streaming kernels can consume the items directly (site `x` owns the
    /// `n_vec` reals at `n_vec·x`, Eq. 5 with the block offset removed).
    pub fn arith_blocks(&self) -> Option<impl Iterator<Item = &[P::Arith]>> {
        let body = P::arith_view(&self.data[..self.layout.body_len()])?;
        let row = self.layout.n_vec * self.layout.stride();
        let live = self.layout.n_vec * self.layout.sites;
        Some(body.chunks_exact(row).map(move |r| &r[..live]))
    }

    /// Mutable counterpart of [`SpinorFieldCb::arith_blocks`].
    pub fn arith_blocks_mut(&mut self) -> Option<impl Iterator<Item = &mut [P::Arith]>> {
        let row = self.layout.n_vec * self.layout.stride();
        let live = self.layout.n_vec * self.layout.sites;
        let body_len = self.layout.body_len();
        let body = P::arith_view_mut(&mut self.data[..body_len])?;
        Some(body.chunks_exact_mut(row).map(move |r| &mut r[..live]))
    }

    /// Sanctioned per-site write combinator: set every site to `f(cb)`.
    /// The site loop lives here, next to the layout that defines it, so
    /// kernel modules stay free of element-wise indexing.
    pub fn fill_sites(&mut self, mut f: impl FnMut(usize) -> Spinor<P::Arith>) {
        for cb in 0..self.sites() {
            let v = f(cb);
            self.set(cb, &v);
        }
    }

    /// Sanctioned read-only fold over sites, in ascending site order (the
    /// order every reduction kernel is defined to accumulate in).
    pub fn fold_sites<A>(&self, init: A, mut f: impl FnMut(A, usize, Spinor<P::Arith>) -> A) -> A {
        let mut acc = init;
        for cb in 0..self.sites() {
            acc = f(acc, cb, self.get(cb));
        }
        acc
    }

    /// Sanctioned read-modify-write over sites that threads an accumulator:
    /// `f` maps `(acc, cb, old)` to `(new, acc)`; the new spinor is stored
    /// back. This is the shape of the fused update+norm kernels.
    pub fn update_fold_sites<A>(
        &mut self,
        init: A,
        mut f: impl FnMut(A, usize, Spinor<P::Arith>) -> (Spinor<P::Arith>, A),
    ) -> A {
        let mut acc = init;
        for cb in 0..self.sites() {
            let (v, a) = f(acc, cb, self.get(cb));
            self.set(cb, &v);
            acc = a;
        }
        acc
    }

    /// Sanctioned read-modify-write over sites without an accumulator.
    pub fn update_sites(&mut self, mut f: impl FnMut(usize, Spinor<P::Arith>) -> Spinor<P::Arith>) {
        self.update_fold_sites((), |(), cb, v| (f(cb, v), ()));
    }

    /// Zero all site data (leaves ghosts untouched).
    pub fn zero_sites(&mut self) {
        let zero = Spinor::zero();
        for cb in 0..self.sites() {
            self.set(cb, &zero);
        }
    }

    /// Squared 2-norm over data sites only — the end zone is excluded, which
    /// is the whole point of storing ghosts outside the blocks (Section
    /// VI-C: "when doing reductions, this end zone can be simply excluded").
    pub fn norm_sqr(&self) -> f64 {
        (0..self.sites()).map(|cb| self.get(cb).norm_sqr()).sum()
    }

    /// Upload one parity of a host field.
    pub fn upload(&mut self, host: &HostSpinorField, parity: Parity) {
        assert_eq!(host.dims, self.dims);
        for cb in 0..self.sites() {
            let sp = host.get_cb(parity, cb).cast::<P::Arith>();
            self.set(cb, &sp);
        }
    }

    /// Download into one parity of a host field.
    pub fn download(&self, host: &mut HostSpinorField, parity: Parity) {
        assert_eq!(host.dims, self.dims);
        for cb in 0..self.sites() {
            *host.get_cb_mut(parity, cb) = self.get(cb).cast::<f64>();
        }
    }

    /// Copy (with precision conversion) from a field of another precision —
    /// the transfer the mixed-precision solver performs at reliable updates.
    pub fn convert_from<Q: Precision>(&mut self, other: &SpinorFieldCb<Q>) {
        assert_eq!(self.dims, other.dims);
        for cb in 0..self.sites() {
            let sp = other.get(cb).cast::<P::Arith>();
            self.set(cb, &sp);
        }
    }

    /// Device bytes occupied (data + normalization array + side ghosts).
    pub fn device_bytes(&self) -> usize {
        let side: usize = self
            .side_ghost
            .iter()
            .map(|g| g.len() * P::STORAGE_BYTES)
            .chain(self.side_norm.iter().map(|n| n.len() * 4))
            .sum();
        self.layout.device_bytes(P::STORAGE_BYTES) + self.norm.len() * 4 + side
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precision::{Double, Half, Single};
    use quda_math::complex::C64;

    fn dims() -> LatticeDims {
        LatticeDims::new(4, 4, 4, 6)
    }

    fn sample_spinor(seed: usize) -> Spinor<f64> {
        let mut sp = Spinor::zero();
        for s in 0..4 {
            for c in 0..3 {
                let k = (seed * 12 + s * 3 + c) as f64;
                sp.s[s].c[c] = C64::new((k * 0.37).sin(), (k * 0.61).cos() * 0.5);
            }
        }
        sp
    }

    #[test]
    fn set_get_roundtrip_double_exact() {
        let mut f = SpinorFieldCb::<Double>::new(dims(), false);
        for cb in 0..f.sites() {
            f.set(cb, &sample_spinor(cb));
        }
        for cb in 0..f.sites() {
            assert_eq!(f.get(cb), sample_spinor(cb));
        }
    }

    #[test]
    fn set_get_roundtrip_half_within_tolerance() {
        let mut f = SpinorFieldCb::<Half>::new(dims(), false);
        for cb in 0..f.sites() {
            f.set(cb, &sample_spinor(cb).cast());
        }
        for cb in 0..f.sites() {
            let expect = sample_spinor(cb).cast::<f32>();
            let got = f.get(cb);
            let bound = expect.max_abs() as f32 / 32767.0 + 1e-6;
            for s in 0..4 {
                for c in 0..3 {
                    assert!((got.s[s].c[c].re - expect.s[s].c[c].re).abs() <= bound);
                    assert!((got.s[s].c[c].im - expect.s[s].c[c].im).abs() <= bound);
                }
            }
        }
    }

    #[test]
    fn half_norm_array_tracks_sup_norm() {
        let mut f = SpinorFieldCb::<Half>::new(dims(), false);
        let mut sp = Spinor::<f32>::zero();
        sp.s[2].c[1].im = -5.0;
        f.set(7, &sp);
        assert_eq!(f.norm[7], 5.0);
        let got = f.get(7);
        assert!((got.s[2].c[1].im + 5.0).abs() < 1e-3);
    }

    #[test]
    fn ghost_roundtrip_and_isolation() {
        let mut f = SpinorFieldCb::<Single>::new(dims(), true);
        // Fill sites, then ghosts; neither disturbs the other.
        for cb in 0..f.sites() {
            f.set(cb, &sample_spinor(cb).cast());
        }
        let h =
            HalfSpinor { h: [sample_spinor(3).cast::<f32>().s[0], sample_spinor(4).cast().s[1]] };
        for face in 0..f.face_sites() {
            f.set_ghost(true, face, &h);
            f.set_ghost(false, face, &h);
        }
        for cb in 0..f.sites() {
            let expect = sample_spinor(cb).cast::<f32>();
            assert_eq!(f.get(cb), expect);
        }
        assert_eq!(f.get_ghost(true, 0), h);
        assert_eq!(f.get_ghost(false, f.face_sites() - 1), h);
    }

    #[test]
    fn ghost_roundtrip_half_precision_with_norms() {
        let mut f = SpinorFieldCb::<Half>::new(dims(), true);
        let mut h = HalfSpinor::<f32>::zero();
        h.h[0].c[0].re = 3.0;
        h.h[1].c[2].im = -1.5;
        f.set_ghost(false, 2, &h);
        let got = f.get_ghost(false, 2);
        assert!((got.h[0].c[0].re - 3.0).abs() < 1e-3);
        assert!((got.h[1].c[2].im + 1.5).abs() < 1e-3);
        // The "end zone of size 2Vs elements added to the normalization
        // field" (Section VI-C).
        assert_eq!(f.norm.len(), f.sites() + 2 * f.face_sites());
    }

    #[test]
    fn norm_excludes_ghost_end_zone() {
        let mut f = SpinorFieldCb::<Double>::new(dims(), true);
        let mut sp = Spinor::zero();
        sp.s[0].c[0].re = 2.0;
        f.set(0, &sp);
        let mut h = HalfSpinor::zero();
        h.h[0].c[0].re = 100.0;
        f.set_ghost(true, 0, &h);
        f.set_ghost(false, 0, &h);
        assert_eq!(f.norm_sqr(), 4.0); // ghosts not double counted
    }

    #[test]
    fn upload_download_roundtrip() {
        let d = dims();
        let mut host = HostSpinorField::zero(d);
        for (i, sp) in host.data.iter_mut().enumerate() {
            *sp = sample_spinor(i);
        }
        let mut dev = SpinorFieldCb::<Double>::new(d, false);
        dev.upload(&host, Parity::Odd);
        let mut back = HostSpinorField::zero(d);
        dev.download(&mut back, Parity::Odd);
        for cb in 0..dev.sites() {
            assert_eq!(back.get_cb(Parity::Odd, cb), host.get_cb(Parity::Odd, cb));
        }
        // Even parity untouched.
        for cb in 0..dev.sites() {
            assert_eq!(*back.get_cb(Parity::Even, cb), Spinor::zero());
        }
    }

    #[test]
    fn convert_between_precisions() {
        let d = dims();
        let mut hi = SpinorFieldCb::<Double>::new(d, false);
        for cb in 0..hi.sites() {
            hi.set(cb, &sample_spinor(cb));
        }
        let mut lo = SpinorFieldCb::<Half>::new(d, false);
        lo.convert_from(&hi);
        let mut back = SpinorFieldCb::<Double>::new(d, false);
        back.convert_from(&lo);
        for cb in 0..hi.sites() {
            let a = hi.get(cb);
            let b = back.get(cb);
            let bound = a.max_abs() / 32767.0 + 1e-6;
            assert!((a - b).max_abs() <= bound, "cb={cb}");
        }
    }

    #[test]
    fn side_ghost_roundtrip_all_dims_and_t_routes_to_end_zone() {
        let d = dims();
        let mut f = SpinorFieldCb::<Single>::new_open(d, [true, true, true, true]);
        let h =
            HalfSpinor { h: [sample_spinor(5).cast::<f32>().s[2], sample_spinor(6).cast().s[3]] };
        for dir in 0..4 {
            assert!(f.has_ghost_dim(dir));
            assert_eq!(f.face_sites_dim(dir), d.volume() / d.extent(dir) / 2);
            for backward in [true, false] {
                for face in 0..f.face_sites_dim(dir) {
                    f.set_ghost_dim(dir, backward, face, &h);
                    assert_eq!(f.get_ghost_dim(dir, backward, face), h);
                }
            }
        }
        // T side routes to the legacy end zone.
        assert_eq!(f.get_ghost(true, 0), h);
        assert_eq!(f.get_ghost(false, f.face_sites() - 1), h);
        // Sites are untouched by ghost writes.
        for cb in 0..f.sites() {
            assert_eq!(f.get(cb), Spinor::zero());
        }
    }

    #[test]
    fn side_ghost_half_precision_norms() {
        let d = dims();
        let mut f = SpinorFieldCb::<Half>::new_open(d, [false, true, false, false]);
        assert!(f.has_ghost_dim(1));
        assert!(!f.has_ghost_dim(0) && !f.has_ghost_dim(2) && !f.has_ghost_dim(3));
        let mut h = HalfSpinor::<f32>::zero();
        h.h[0].c[1].re = 7.0;
        h.h[1].c[0].im = -2.5;
        f.set_ghost_dim(1, false, 3, &h);
        let got = f.get_ghost_dim(1, false, 3);
        assert!((got.h[0].c[1].re - 7.0).abs() < 1e-3);
        assert!((got.h[1].c[0].im + 2.5).abs() < 1e-3);
        assert_eq!(f.side_norm[1].len(), 2 * f.face_sites_dim(1));
    }

    #[test]
    fn arith_blocks_cover_exactly_the_live_reals() {
        let mut f = SpinorFieldCb::<Double>::new(dims(), true);
        for cb in 0..f.sites() {
            f.set(cb, &sample_spinor(cb));
        }
        // Rebuild every site from the block view alone (Eq. 5: real n of
        // site x sits at offset n_vec·x + n%n_vec of block n/n_vec).
        let nv = f.layout.n_vec;
        let blocks: Vec<Vec<f64>> = f.arith_blocks().unwrap().map(|b| b.to_vec()).collect();
        assert_eq!(blocks.len(), f.layout.blocks());
        for cb in 0..f.sites() {
            let mut reals = [0.0; 24];
            for (n, r) in reals.iter_mut().enumerate() {
                *r = blocks[n / nv][nv * cb + n % nv];
            }
            assert_eq!(Spinor::from_reals(&reals), f.get(cb));
        }
        // Writes through the mutable view land where `get` reads.
        for b in f.arith_blocks_mut().unwrap() {
            for r in b.iter_mut() {
                *r *= 2.0;
            }
        }
        for cb in 0..f.sites() {
            assert_eq!(f.get(cb), sample_spinor(cb).scale_re(2.0));
        }
        // Normalized precisions have no direct view.
        let h = SpinorFieldCb::<Half>::new(dims(), false);
        assert!(h.arith_blocks().is_none());
    }

    #[test]
    fn combinators_match_explicit_loops() {
        let mut f = SpinorFieldCb::<Single>::new(dims(), false);
        f.fill_sites(|cb| sample_spinor(cb).cast());
        for cb in 0..f.sites() {
            assert_eq!(f.get(cb), sample_spinor(cb).cast::<f32>());
        }
        let n = f.fold_sites(0.0, |acc, _, v| acc + v.norm_sqr());
        assert_eq!(n, f.norm_sqr());
        let visited = f.update_fold_sites(0usize, |count, _, v| (v.scale_re(3.0), count + 1));
        assert_eq!(visited, f.sites());
        f.update_sites(|_, v| v.scale_re(1.0 / 3.0));
        for cb in 0..f.sites() {
            let expect = sample_spinor(cb).cast::<f32>().scale_re(3.0).scale_re(1.0 / 3.0);
            assert_eq!(f.get(cb), expect);
        }
    }

    #[test]
    fn device_bytes_ordering() {
        let d = dims();
        let dd = SpinorFieldCb::<Double>::new(d, true).device_bytes();
        let ss = SpinorFieldCb::<Single>::new(d, true).device_bytes();
        let hh = SpinorFieldCb::<Half>::new(d, true).device_bytes();
        assert!(dd > ss && ss > hh);
        assert_eq!(dd, ss * 2);
    }
}
