//! Gauge configuration generators.
//!
//! The paper's performance runs use *weak-field* configurations: "starting
//! with all link matrices set to the identity, mixing in a small amount of
//! random noise, and re-unitarizing the links to bring the links back to the
//! SU(3) manifold" (Section VII-A). We also provide fully random (strongly
//! disordered) configurations for stress-testing the solver.

use crate::host::GaugeConfig;
use quda_lattice::geometry::LatticeDims;
use quda_math::complex::C64;
use quda_math::su3::Su3;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Perturb a matrix with uniform noise of amplitude `eps` in every complex
/// component, then project back onto SU(3).
fn noisy_link(rng: &mut SmallRng, eps: f64) -> Su3<f64> {
    let mut u = Su3::identity();
    for i in 0..3 {
        for j in 0..3 {
            let dre: f64 = rng.gen_range(-eps..=eps);
            let dim: f64 = rng.gen_range(-eps..=eps);
            u.m[i][j] += C64::new(dre, dim);
        }
    }
    u.reunitarize()
}

/// A weak-field configuration as described in Section VII-A.
///
/// `eps` controls the noise amplitude; the paper's configurations are "not
/// physical" but exercise every code path of the solver with realistic
/// (near-1) plaquettes and a well-conditioned Dirac matrix.
pub fn weak_field(dims: LatticeDims, eps: f64, seed: u64) -> GaugeConfig {
    let mut cfg = GaugeConfig::unit(dims);
    let mut rng = SmallRng::seed_from_u64(seed);
    for u in cfg.links.iter_mut() {
        *u = noisy_link(&mut rng, eps);
    }
    cfg
}

/// A strongly disordered configuration: links drawn by re-unitarizing dense
/// uniform random matrices. Produces a much worse-conditioned Dirac matrix
/// than a weak field — useful for iteration-count stress tests.
pub fn random_field(dims: LatticeDims, seed: u64) -> GaugeConfig {
    let mut cfg = GaugeConfig::unit(dims);
    let mut rng = SmallRng::seed_from_u64(seed);
    for u in cfg.links.iter_mut() {
        let mut m = Su3::zero();
        for i in 0..3 {
            for j in 0..3 {
                m.m[i][j] = C64::new(rng.gen_range(-1.0..=1.0), rng.gen_range(-1.0..=1.0));
            }
        }
        *u = m.reunitarize();
    }
    cfg
}

/// Fill a host spinor field with uniform random components in `[-1, 1]` —
/// a generic right-hand side for solver tests.
pub fn random_spinor_field(dims: LatticeDims, seed: u64) -> crate::host::HostSpinorField {
    let mut f = crate::host::HostSpinorField::zero(dims);
    let mut rng = SmallRng::seed_from_u64(seed);
    for sp in f.data.iter_mut() {
        for s in 0..4 {
            for c in 0..3 {
                sp.s[s].c[c] = C64::new(rng.gen_range(-1.0..=1.0), rng.gen_range(-1.0..=1.0));
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_field_is_unitary() {
        let cfg = weak_field(LatticeDims::new(4, 4, 4, 4), 0.1, 7);
        assert!(cfg.is_unitary(1e-10));
    }

    #[test]
    fn weak_field_plaquette_near_one() {
        let cfg = weak_field(LatticeDims::new(4, 4, 4, 4), 0.05, 11);
        let p = cfg.average_plaquette();
        assert!(p > 0.98 && p < 1.0, "plaquette {p}");
    }

    #[test]
    fn plaquette_decreases_with_noise() {
        let d = LatticeDims::new(4, 4, 4, 4);
        let p_small = weak_field(d, 0.02, 3).average_plaquette();
        let p_big = weak_field(d, 0.3, 3).average_plaquette();
        assert!(p_small > p_big, "{p_small} vs {p_big}");
    }

    #[test]
    fn random_field_is_unitary_but_disordered() {
        let cfg = random_field(LatticeDims::new(4, 4, 4, 4), 19);
        assert!(cfg.is_unitary(1e-10));
        let p = cfg.average_plaquette();
        assert!(p.abs() < 0.5, "random field should have small plaquette, got {p}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let d = LatticeDims::new(4, 4, 2, 2);
        let a = weak_field(d, 0.1, 42);
        let b = weak_field(d, 0.1, 42);
        let c = weak_field(d, 0.1, 43);
        assert_eq!(a.links[5], b.links[5]);
        assert!((a.links[5] - c.links[5]).norm_sqr() > 0.0);
    }

    #[test]
    fn random_spinor_is_nonzero_everywhere() {
        let f = random_spinor_field(LatticeDims::new(2, 2, 2, 2), 5);
        assert!(f.data.iter().all(|sp| sp.norm_sqr() > 0.0));
    }
}
