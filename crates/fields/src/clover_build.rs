//! Construction of the clover term from the gauge field.
//!
//! The Sheikholeslami-Wohlert improvement term is
//! `A(x) = (c_sw / 2) Σ_{μ<ν} σ_μν ⊗ i F̂_μν(x)`, where `F̂_μν` is the
//! traceless anti-Hermitian clover-leaf average of the field strength —
//! the sum of the four plaquettes in the `μν` plane touching `x`:
//!
//! `F̂_μν = (Q_μν − Q†_μν)/8 − (trace part)`, with `Q_μν` the four-leaf sum.
//!
//! In the DeGrand-Rossi chiral basis every `σ_μν = (i/2)[γ_μ, γ_ν]` is block
//! diagonal in chirality, so `A` packs into the two Hermitian 6×6 blocks of
//! [`CloverSite`] — the 72-real representation of the paper's footnote 1.

use crate::host::GaugeConfig;
use quda_lattice::geometry::{Coord, LatticeDims, Parity};
use quda_math::clover::{CloverBlock, CloverSite, BLOCK_DIM};
use quda_math::complex::C64;
use quda_math::gamma::{mat4_mul, mat4_scale, mat4_zero, GammaBasis, Mat4, SpinBasis};
use quda_math::su3::Su3;

/// `σ_μν = (i/2)[γ_μ, γ_ν]` for all pairs, in the DeGrand-Rossi basis.
pub fn sigma_matrices() -> [[Mat4; 4]; 4] {
    let basis = SpinBasis::new(GammaBasis::DeGrandRossi);
    let mut sigma = [[mat4_zero(); 4]; 4];
    for mu in 0..4 {
        for nu in 0..4 {
            if mu == nu {
                continue;
            }
            let gg = mat4_mul(&basis.gamma[mu], &basis.gamma[nu]);
            let gg2 = mat4_mul(&basis.gamma[nu], &basis.gamma[mu]);
            let mut comm = mat4_zero();
            for i in 0..4 {
                for j in 0..4 {
                    comm[i][j] = gg[i][j] - gg2[i][j];
                }
            }
            sigma[mu][nu] = mat4_scale(&comm, C64::new(0.0, 0.5));
        }
    }
    sigma
}

/// The four-leaf clover sum `Q_μν(x)`.
pub fn clover_leaf_sum(cfg: &GaugeConfig, c: Coord, mu: usize, nu: usize) -> Su3<f64> {
    let d = &cfg.dims;
    let fwd = |c: Coord, dir: usize| d.neighbor(c, dir, true).0;
    let bwd = |c: Coord, dir: usize| d.neighbor(c, dir, false).0;

    // Leaf 1: forward μ, forward ν.
    let l1 = {
        let c_mu = fwd(c, mu);
        let c_nu = fwd(c, nu);
        *cfg.link(c, mu)
            * *cfg.link(c_mu, nu)
            * cfg.link(c_nu, mu).adjoint()
            * cfg.link(c, nu).adjoint()
    };
    // Leaf 2: forward ν, backward μ.
    let l2 = {
        let c_bmu = bwd(c, mu);
        let c_bmu_nu = fwd(c_bmu, nu);
        *cfg.link(c, nu)
            * cfg.link(c_bmu_nu, mu).adjoint()
            * cfg.link(c_bmu, nu).adjoint()
            * *cfg.link(c_bmu, mu)
    };
    // Leaf 3: backward μ, backward ν.
    let l3 = {
        let c_bmu = bwd(c, mu);
        let c_bnu = bwd(c, nu);
        let c_bmu_bnu = bwd(c_bmu, nu);
        cfg.link(c_bmu, mu).adjoint()
            * cfg.link(c_bmu_bnu, nu).adjoint()
            * *cfg.link(c_bmu_bnu, mu)
            * *cfg.link(c_bnu, nu)
    };
    // Leaf 4: backward ν, forward μ.
    let l4 = {
        let c_bnu = bwd(c, nu);
        let c_bnu_mu = fwd(c_bnu, mu);
        cfg.link(c_bnu, nu).adjoint()
            * *cfg.link(c_bnu, mu)
            * *cfg.link(c_bnu_mu, nu)
            * cfg.link(c, mu).adjoint()
    };
    l1 + l2 + l3 + l4
}

/// The traceless anti-Hermitian field strength `F̂_μν(x)` from the clover
/// leaves, multiplied by `i` so the result is Hermitian (and traceless).
pub fn field_strength_i(cfg: &GaugeConfig, c: Coord, mu: usize, nu: usize) -> Su3<f64> {
    let q = clover_leaf_sum(cfg, c, mu, nu);
    let anti = (q - q.adjoint()).scale_re(1.0 / 8.0);
    // Remove the trace part (anti is anti-Hermitian, trace is imaginary).
    let tr = anti.trace();
    let mut traceless = anti;
    for i in 0..3 {
        traceless.m[i][i] -= tr.scale(1.0 / 3.0);
    }
    // i * F is Hermitian.
    let mut out = Su3::zero();
    for i in 0..3 {
        for j in 0..3 {
            out.m[i][j] = traceless.m[i][j].mul_i();
        }
    }
    out
}

/// Build the clover term `A(x)` at one site, packed into chiral blocks.
pub fn clover_site(
    cfg: &GaugeConfig,
    sigma: &[[Mat4; 4]; 4],
    c: Coord,
    c_sw: f64,
) -> CloverSite<f64> {
    // Dense chiral blocks, indexed (spin_in_block * 3 + color).
    let mut dense = [[[C64::zero(); BLOCK_DIM]; BLOCK_DIM]; 2];
    for mu in 0..4 {
        for nu in (mu + 1)..4 {
            let f = field_strength_i(cfg, c, mu, nu);
            let s = &sigma[mu][nu];
            for b in 0..2 {
                let base = 2 * b;
                for sp1 in 0..2 {
                    for sp2 in 0..2 {
                        let coeff = s[base + sp1][base + sp2].scale(c_sw / 2.0);
                        if coeff.norm_sqr() == 0.0 {
                            continue;
                        }
                        for c1 in 0..3 {
                            for c2 in 0..3 {
                                dense[b][sp1 * 3 + c1][sp2 * 3 + c2] += coeff * f.m[c1][c2];
                            }
                        }
                    }
                }
            }
        }
    }
    CloverSite { block: [CloverBlock::from_dense(&dense[0]), CloverBlock::from_dense(&dense[1])] }
}

/// Build the clover term for every site of one parity, in checkerboard
/// order. `c_sw` is the Sheikholeslami-Wohlert coefficient.
pub fn clover_sites_cb(cfg: &GaugeConfig, c_sw: f64, parity: Parity) -> Vec<CloverSite<f64>> {
    let sigma = sigma_matrices();
    let d = cfg.dims;
    (0..d.half_volume()).map(|cb| clover_site(cfg, &sigma, d.cb_coord(parity, cb), c_sw)).collect()
}

/// Convenience: verify the clover term vanishes on a free (unit) field.
pub fn is_zero_clover(site: &CloverSite<f64>, tol: f64) -> bool {
    site.max_abs() <= tol
}

/// Check the σ matrices stay within chiral blocks — the structural fact the
/// 72-real packing relies on.
pub fn sigma_is_block_diagonal(sigma: &[[Mat4; 4]; 4]) -> bool {
    for mu in 0..4 {
        for nu in 0..4 {
            if mu == nu {
                continue;
            }
            let s = &sigma[mu][nu];
            for i in 0..4 {
                for j in 0..4 {
                    let same_block = (i / 2) == (j / 2);
                    if !same_block && s[i][j].norm_sqr() > 1e-24 {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Build both-parity clover vectors for a full lattice (helper used by the
/// operator constructors).
pub fn clover_both_parities(cfg: &GaugeConfig, c_sw: f64) -> [Vec<CloverSite<f64>>; 2] {
    [clover_sites_cb(cfg, c_sw, Parity::Even), clover_sites_cb(cfg, c_sw, Parity::Odd)]
}

/// Lattice dims accessor re-export for tests.
pub fn dims_of(cfg: &GaugeConfig) -> LatticeDims {
    cfg.dims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauge_gen::weak_field;
    use quda_math::gamma::mat4_adjoint;

    #[test]
    fn sigma_matrices_are_hermitian_and_block_diagonal() {
        let sigma = sigma_matrices();
        assert!(sigma_is_block_diagonal(&sigma));
        for mu in 0..4 {
            for nu in 0..4 {
                if mu == nu {
                    continue;
                }
                let s = &sigma[mu][nu];
                let sd = mat4_adjoint(s);
                for i in 0..4 {
                    for j in 0..4 {
                        assert!((s[i][j].re - sd[i][j].re).abs() < 1e-12);
                        assert!((s[i][j].im - sd[i][j].im).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn sigma_antisymmetric_in_indices() {
        let sigma = sigma_matrices();
        for mu in 0..4 {
            for nu in 0..4 {
                if mu == nu {
                    continue;
                }
                for i in 0..4 {
                    for j in 0..4 {
                        assert!((sigma[mu][nu][i][j].re + sigma[nu][mu][i][j].re).abs() < 1e-12);
                        assert!((sigma[mu][nu][i][j].im + sigma[nu][mu][i][j].im).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn free_field_clover_vanishes() {
        let cfg = GaugeConfig::unit(LatticeDims::new(4, 4, 4, 4));
        let sites = clover_sites_cb(&cfg, 1.0, Parity::Even);
        assert!(sites.iter().all(|s| is_zero_clover(s, 1e-13)));
    }

    #[test]
    fn weak_field_clover_is_small_and_nonzero() {
        let cfg = weak_field(LatticeDims::new(4, 4, 4, 4), 0.1, 21);
        let sites = clover_sites_cb(&cfg, 1.0, Parity::Odd);
        let max = sites.iter().map(|s| s.max_abs()).fold(0.0, f64::max);
        assert!(max > 1e-6, "clover should be nonzero on a noisy field");
        assert!(max < 1.0, "clover should be perturbatively small, got {max}");
    }

    #[test]
    fn clover_scales_linearly_with_csw() {
        let cfg = weak_field(LatticeDims::new(4, 4, 2, 2), 0.1, 9);
        let sigma = sigma_matrices();
        let c = Coord::new(1, 2, 0, 1);
        let a1 = clover_site(&cfg, &sigma, c, 1.0);
        let a2 = clover_site(&cfg, &sigma, c, 2.0);
        for b in 0..2 {
            for i in 0..6 {
                assert!((a2.block[b].diag[i] - 2.0 * a1.block[b].diag[i]).abs() < 1e-12);
            }
            for k in 0..15 {
                assert!(
                    (a2.block[b].offdiag[k].re - 2.0 * a1.block[b].offdiag[k].re).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn field_strength_is_hermitian_and_traceless() {
        let cfg = weak_field(LatticeDims::new(4, 4, 2, 2), 0.2, 33);
        let f = field_strength_i(&cfg, Coord::new(0, 1, 0, 1), 0, 3);
        // Hermitian.
        let fd = f.adjoint();
        assert!((f - fd).norm_sqr() < 1e-24);
        // Traceless.
        let tr = f.trace();
        assert!(tr.re.abs() < 1e-12 && tr.im.abs() < 1e-12);
    }

    #[test]
    fn leaf_sum_reduces_to_four_identities_on_free_field() {
        let cfg = GaugeConfig::unit(LatticeDims::new(2, 2, 2, 2));
        let q = clover_leaf_sum(&cfg, Coord::new(0, 0, 0, 0), 0, 1);
        let expect = Su3::identity().scale_re(4.0);
        assert!((q - expect).norm_sqr() < 1e-24);
    }
}
