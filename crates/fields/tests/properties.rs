//! Property-based tests of field storage: precision round-trips, ghost
//! isolation, upload/download fidelity, and gauge-generation invariants.

use proptest::prelude::*;
use quda_fields::gauge_gen::{random_spinor_field, weak_field};
use quda_fields::host::HostSpinorField;
use quda_fields::precision::{Double, Half, Single};
use quda_fields::{GaugeFieldCb, SpinorFieldCb};
use quda_lattice::geometry::{LatticeDims, Parity};

fn arb_dims() -> impl Strategy<Value = LatticeDims> {
    let even = prop_oneof![Just(2usize), Just(4)];
    (even.clone(), even.clone(), even.clone(), prop_oneof![Just(4usize), Just(6)])
        .prop_map(|(x, y, z, t)| LatticeDims::new(x, y, z, t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn upload_download_is_identity_in_double(d in arb_dims(), seed in 0u64..1000) {
        let host = random_spinor_field(d, seed);
        for parity in [Parity::Even, Parity::Odd] {
            let mut dev = SpinorFieldCb::<Double>::new(d, false);
            dev.upload(&host, parity);
            let mut back = HostSpinorField::zero(d);
            dev.download(&mut back, parity);
            for cb in 0..dev.sites() {
                prop_assert_eq!(back.get_cb(parity, cb), host.get_cb(parity, cb));
            }
        }
    }

    #[test]
    fn single_precision_roundtrip_is_f32_accurate(d in arb_dims(), seed in 0u64..1000) {
        let host = random_spinor_field(d, seed);
        let mut dev = SpinorFieldCb::<Single>::new(d, false);
        dev.upload(&host, Parity::Odd);
        let mut back = HostSpinorField::zero(d);
        dev.download(&mut back, Parity::Odd);
        for cb in 0..dev.sites() {
            let diff = (*back.get_cb(Parity::Odd, cb) - *host.get_cb(Parity::Odd, cb)).max_abs();
            prop_assert!(diff < 1e-6);
        }
    }

    #[test]
    fn half_precision_error_scales_with_site_norm(d in arb_dims(), seed in 0u64..1000) {
        let host = random_spinor_field(d, seed);
        let mut dev = SpinorFieldCb::<Half>::new(d, false);
        dev.upload(&host, Parity::Even);
        let mut back = HostSpinorField::zero(d);
        dev.download(&mut back, Parity::Even);
        for cb in 0..dev.sites() {
            let orig = host.get_cb(Parity::Even, cb);
            let diff = (*back.get_cb(Parity::Even, cb) - *orig).max_abs();
            let bound = orig.max_abs() / 32767.0 + 1e-7;
            prop_assert!(diff <= bound * 1.01, "diff {diff} bound {bound}");
        }
    }

    #[test]
    fn ghost_writes_never_leak_into_sites(d in arb_dims(), seed in 0u64..1000) {
        let host = random_spinor_field(d, seed);
        let mut dev = SpinorFieldCb::<Single>::new(d, true);
        dev.upload(&host, Parity::Odd);
        let before: Vec<_> = (0..dev.sites()).map(|cb| dev.get(cb)).collect();
        let mut ghost = quda_math::spinor::HalfSpinor::zero();
        ghost.h[0].c[0].re = 1e6;
        for backward in [true, false] {
            for f in 0..dev.face_sites() {
                dev.set_ghost(backward, f, &ghost);
            }
        }
        for cb in 0..dev.sites() {
            prop_assert_eq!(dev.get(cb), before[cb]);
        }
    }

    #[test]
    fn gauge_upload_preserves_links_to_precision(d in arb_dims(), seed in 0u64..1000) {
        let cfg = weak_field(d, 0.15, seed);
        let mut g = GaugeFieldCb::<Single>::new(d, true);
        g.upload(&cfg);
        for p in [Parity::Even, Parity::Odd] {
            for cb in (0..g.sites()).step_by(3) {
                let c = d.cb_coord(p, cb);
                for mu in 0..4 {
                    let got: quda_math::su3::Su3<f64> = g.link(p, mu, cb).cast();
                    let diff = (got - *cfg.link(c, mu)).norm_sqr().sqrt();
                    prop_assert!(diff < 1e-5, "link error {diff}");
                }
            }
        }
    }

    #[test]
    fn weak_field_plaquette_bounded(seed in 0u64..200, eps in 0.01f64..0.2) {
        let d = LatticeDims::new(4, 4, 2, 2);
        let cfg = weak_field(d, eps, seed);
        let p = cfg.average_plaquette();
        prop_assert!(p <= 1.0 + 1e-12);
        prop_assert!(p > 0.5, "plaquette {p} too disordered for eps {eps}");
        prop_assert!(cfg.is_unitary(1e-9));
    }

    #[test]
    fn norm_is_parity_sum(d in arb_dims(), seed in 0u64..1000) {
        // |ψ|² over the host field = |ψ_e|² + |ψ_o|² over device fields.
        let host = random_spinor_field(d, seed);
        let mut even = SpinorFieldCb::<Double>::new(d, false);
        even.upload(&host, Parity::Even);
        let mut odd = SpinorFieldCb::<Double>::new(d, false);
        odd.upload(&host, Parity::Odd);
        let total = even.norm_sqr() + odd.norm_sqr();
        prop_assert!((total - host.norm_sqr()).abs() < 1e-9 * host.norm_sqr().max(1.0));
    }
}
